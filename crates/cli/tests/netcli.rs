//! End-to-end networked serving through the real `tasq-cli` binary.
//!
//! These tests spawn the compiled CLI (via `CARGO_BIN_EXE_tasq-cli`) the
//! same way the CI smoke job and `loadgen --networked` do: a `serve
//! --listen 127.0.0.1:0` server process discovered through its
//! `listening on <addr>` handshake, driven by `netgen` client processes
//! over both wire framings, then drained over the wire.

use std::io::{BufRead, BufReader, Read};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

use tasq_net::HttpClient;
use tasq_obs::json::{self, JsonValue};

const EXE: &str = env!("CARGO_BIN_EXE_tasq-cli");

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tasq-netcli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run(args: &[&str]) -> String {
    let out = Command::new(EXE).args(args).output().expect("spawn tasq-cli");
    assert!(
        out.status.success(),
        "tasq-cli {args:?} failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn generate_workload(dir: &std::path::Path) -> String {
    let path = dir.join("workload.bin");
    let path = path.to_str().expect("utf8 path").to_string();
    run(&["generate", "--out", &path, "--jobs", "24", "--seed", "7"]);
    path
}

/// Spawn `serve --listen 127.0.0.1:0` (plus `extra` args) and read the
/// handshake line.
fn spawn_server_with(workload: &str, extra: &[&str]) -> (Child, BufReader<ChildStdout>, String) {
    let mut child = Command::new(EXE)
        .args([
            "serve", "--workload", workload, "--listen", "127.0.0.1:0", "--workers", "2",
            "--shards", "2",
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve --listen");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("read handshake");
        assert!(n > 0, "server exited before handshake");
        if let Some(addr) = line.trim().strip_prefix("listening on ") {
            break addr.to_string();
        }
    };
    (child, reader, addr)
}

fn spawn_server(workload: &str) -> (Child, BufReader<ChildStdout>, String) {
    spawn_server_with(workload, &[])
}

/// Every non-zero 32-hex trace id in a Chrome trace document (the
/// `"trace":"<32 hex>"` span args written by `FieldValue::TraceId`).
fn trace_ids(doc: &str) -> std::collections::BTreeSet<String> {
    let mut ids = std::collections::BTreeSet::new();
    let mut rest = doc;
    while let Some(at) = rest.find("\"trace\":\"") {
        rest = &rest[at + "\"trace\":\"".len()..];
        let candidate: String = rest.chars().take(32).collect();
        if candidate.len() == 32
            && candidate.chars().all(|c| c.is_ascii_hexdigit())
            && candidate.chars().any(|c| c != '0')
        {
            ids.insert(candidate);
        }
    }
    ids
}

fn parse_report(stdout: &str) -> JsonValue {
    let line = stdout
        .lines()
        .find(|l| l.trim_start().starts_with('{'))
        .unwrap_or_else(|| panic!("no JSON line in output:\n{stdout}"));
    json::parse(line).unwrap_or_else(|e| panic!("bad JSON `{line}`: {e}"))
}

fn f64_field(value: &JsonValue, key: &str) -> f64 {
    value
        .get(key)
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| panic!("missing numeric `{key}` in {value:?}"))
}

#[test]
fn serve_listen_netgen_both_framings_and_drain() {
    let dir = scratch_dir("e2e");
    let workload = generate_workload(&dir);
    let (mut server, mut reader, addr) = spawn_server(&workload);

    for mode in ["binary", "http"] {
        let stdout = run(&[
            "netgen", "--addr", &addr, "--workload", &workload, "--requests", "30", "--mode",
            mode, "--connections", "2", "--seed", "3",
        ]);
        let report = parse_report(&stdout);
        assert_eq!(report.get("mode").and_then(JsonValue::as_str), Some(mode));
        let ok = f64_field(&report, "ok");
        let rejected = f64_field(&report, "rejected");
        assert_eq!(ok + rejected, 30.0, "every request must resolve ({stdout})");
        assert!(ok > 0.0, "server under no load must answer most requests ({stdout})");
        assert!(f64_field(&report, "p99_us") >= f64_field(&report, "p50_us"));
        assert!(f64_field(&report, "achieved_rps") > 0.0);
    }

    // Drain over the wire; the server prints its final stats JSON and exits 0.
    let mut control = HttpClient::connect(&addr).expect("connect control");
    control.set_timeout(Duration::from_secs(30)).expect("timeout");
    let ack = control.request("POST", "/drain", b"").expect("drain");
    assert_eq!(ack.status, 200);

    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("read server stdout");
    let status = server.wait().expect("wait server");
    assert!(status.success(), "server exited {status}, stdout:\n{rest}");
    let stats = parse_report(&rest);
    let submitted = f64_field(&stats, "submitted");
    let resolved = f64_field(&stats, "resolved");
    assert!(submitted >= 60.0, "both netgen runs must reach the server ({rest})");
    assert_eq!(submitted, resolved, "drain must account for every request ({rest})");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cross_process_traces_share_a_trace_id() {
    let dir = scratch_dir("trace");
    let workload = generate_workload(&dir);
    let server_trace = dir.join("server_trace.json");
    let server_trace = server_trace.to_str().expect("utf8 path").to_string();
    let (mut server, mut reader, addr) =
        spawn_server_with(&workload, &["--trace-out", &server_trace]);

    // One traced netgen run per framing: the binary frame preamble and
    // the HTTP `traceparent` header both carry the context.
    let mut client_ids_by_mode = Vec::new();
    for mode in ["binary", "http"] {
        let client_trace = dir.join(format!("client_trace_{mode}.json"));
        let client_trace = client_trace.to_str().expect("utf8 path").to_string();
        let stdout = run(&[
            "netgen", "--trace-out", &client_trace, "--addr", &addr, "--workload", &workload,
            "--requests", "5", "--mode", mode, "--seed", "11",
        ]);
        let report = parse_report(&stdout);
        assert_eq!(f64_field(&report, "traced"), 5.0, "every request minted a context");
        assert_eq!(f64_field(&report, "ok"), 5.0);
        let doc = std::fs::read_to_string(&client_trace).expect("client trace written");
        tasq_obs::validate_chrome_trace(&doc).expect("client trace is valid Chrome JSON");
        let ids = trace_ids(&doc);
        assert!(!ids.is_empty(), "client spans must carry trace ids:\n{doc}");
        client_ids_by_mode.push((mode, ids));
    }

    // Drain; the server exports its trace on exit.
    let mut control = HttpClient::connect(&addr).expect("connect control");
    control.set_timeout(Duration::from_secs(30)).expect("timeout");
    let slowest = control.request("GET", "/debug/slowest", b"").expect("slowest");
    assert_eq!(slowest.status, 200);
    let parsed = json::parse(&String::from_utf8_lossy(&slowest.body)).expect("slowest json");
    let entries = parsed
        .get("slowest")
        .and_then(JsonValue::as_array)
        .unwrap_or_else(|| panic!("missing slowest array"));
    assert!(!entries.is_empty(), "/debug/slowest must retain the traced traffic");
    let slo = control.request("GET", "/slo", b"").expect("slo");
    assert_eq!(slo.status, 200);
    let ack = control.request("POST", "/drain", b"").expect("drain");
    assert_eq!(ack.status, 200);
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("read server stdout");
    assert!(server.wait().expect("wait server").success());

    let server_doc = std::fs::read_to_string(&server_trace).expect("server trace written");
    tasq_obs::validate_chrome_trace(&server_doc).expect("server trace is valid Chrome JSON");
    let server_ids = trace_ids(&server_doc);
    // The acceptance check: each client's minted trace ids reappear in
    // the server's exported spans, so one request forms one causally
    // linked cross-process trace.
    for (mode, client_ids) in &client_ids_by_mode {
        let shared: Vec<_> = client_ids.intersection(&server_ids).collect();
        assert!(
            !shared.is_empty(),
            "{mode}: no trace id shared between client {client_ids:?} and server \
             {server_ids:?}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn loadgen_networked_writes_bench_section() {
    let dir = scratch_dir("bench");
    let workload = generate_workload(&dir);
    let out = dir.join("BENCH_serve.json");
    let out = out.to_str().expect("utf8 path").to_string();

    run(&[
        "loadgen", "--workload", &workload, "--requests", "40", "--out", &out, "--networked",
        "on", "--server-procs", "1,2", "--clients", "2", "--qps", "400",
    ]);

    let report = std::fs::read_to_string(&out).expect("read bench json");
    let parsed = json::parse(&report).unwrap_or_else(|e| panic!("bad bench JSON: {e}\n{report}"));
    assert!(f64_field(&parsed, "qps_achieved") > 0.0);
    let attribution = parsed
        .get("latency_attribution")
        .unwrap_or_else(|| panic!("missing latency_attribution section:\n{report}"));
    assert_eq!(
        attribution.get("sum_check").and_then(JsonValue::as_str),
        Some("ok"),
        "segment sums must reproduce end-to-end time:\n{report}"
    );
    assert!(
        parsed.get("slo").and_then(|s| s.get("objectives")).is_some(),
        "missing slo section:\n{report}"
    );
    let rounds = parsed
        .get("networked")
        .and_then(JsonValue::as_array)
        .unwrap_or_else(|| panic!("missing networked section:\n{report}"));
    assert_eq!(rounds.len(), 2, "one round per --server-procs count");
    for (round, procs) in rounds.iter().zip([1.0, 2.0]) {
        assert_eq!(f64_field(round, "server_procs"), procs);
        assert!(f64_field(round, "aggregate_rps") > 0.0);
        assert!(f64_field(round, "p99_us") >= f64_field(round, "p50_us"));
        let total = f64_field(round, "requests");
        assert_eq!(f64_field(round, "ok") + f64_field(round, "rejected"), total);
        assert!(
            f64_field(round, "slowest_entries") > 0.0,
            "servers must retain slowest requests ({report})"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
