//! Global observability flags shared by every subcommand.
//!
//! `--log <level>` and `--trace-out <path>` may appear anywhere on the
//! command line, before or after the subcommand's own flags. They are
//! stripped here before dispatch, so individual subcommands never see
//! them:
//!
//! * `--log error|warn|info|debug|trace|off` — human-readable span/event
//!   lines on stderr at and above the given level.
//! * `--trace-out <path>` — collect spans in memory and, when the command
//!   finishes, write a Chrome trace-event JSON file loadable in Perfetto
//!   (<https://ui.perfetto.dev>) or `chrome://tracing`. Wall-clock spans
//!   land on one process row; commands that run the simulator add its
//!   virtual-time events as a second process row via [`stash_sim_trace`].

use crate::CliError;
use std::sync::{Mutex, OnceLock};

/// Parsed global observability flags.
pub struct ObsFlags {
    stderr: Option<tasq_obs::Level>,
    trace_out: Option<String>,
}

/// Strip `--log` / `--trace-out` (wherever they appear) from `args`,
/// returning the remaining arguments and the parsed flags.
pub fn extract(args: &[String]) -> Result<(Vec<String>, ObsFlags), CliError> {
    let mut rest = Vec::with_capacity(args.len());
    let mut stderr = None;
    let mut trace_out = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--log" => {
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::Usage("missing value for --log".into()))?;
                stderr = tasq_obs::Level::parse(value)
                    .map_err(|e| CliError::Usage(format!("invalid --log level: {e}")))?;
            }
            "--trace-out" => {
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::Usage("missing value for --trace-out".into()))?;
                trace_out = Some(value.clone());
            }
            _ => rest.push(arg.clone()),
        }
    }
    Ok((rest, ObsFlags { stderr, trace_out }))
}

impl ObsFlags {
    /// Whether either flag was given.
    fn active(&self) -> bool {
        self.stderr.is_some() || self.trace_out.is_some()
    }

    /// Configure the global subscriber. A run without observability flags
    /// leaves the subscriber untouched (normally *off*: one relaxed load
    /// per span site).
    pub fn install(&self) {
        if self.active() {
            tasq_obs::set_subscriber(self.stderr, self.trace_out.is_some());
        }
    }

    /// After the command: export the collected spans (and any stashed
    /// simulator traces) as Chrome trace JSON. Returns a human-readable
    /// note to append to the command's output, or `None` when
    /// `--trace-out` was not given.
    pub fn export(&self) -> Result<Option<String>, CliError> {
        let Some(path) = &self.trace_out else {
            return Ok(None);
        };
        tasq_obs::span::flush_current_thread();
        let mut chrome = tasq_obs::export::from_collected("tasq-cli");
        for trace in drain_sim_traces() {
            scope_sim::chrome_track(&trace, &mut chrome);
        }
        let dropped = tasq_obs::span::collected_dropped();
        std::fs::write(path, chrome.render())?;
        let mut note = format!(
            "wrote Chrome trace ({} events) to {path} — load in Perfetto or chrome://tracing\n",
            chrome.len()
        );
        if dropped > 0 {
            note.push_str(&format!("trace truncated: {dropped} spans dropped at capacity\n"));
        }
        Ok(Some(note))
    }
}

fn sim_traces() -> &'static Mutex<Vec<scope_sim::ExecTrace>> {
    static TRACES: OnceLock<Mutex<Vec<scope_sim::ExecTrace>>> = OnceLock::new();
    TRACES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Deposit a simulator execution trace for the end-of-run export. Called
/// by commands that run the executor while span collection is enabled;
/// the trace becomes a virtual-time process row in the Chrome trace.
pub fn stash_sim_trace(trace: scope_sim::ExecTrace) {
    let mut slot = sim_traces().lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    slot.push(trace);
}

fn drain_sim_traces() -> Vec<scope_sim::ExecTrace> {
    let mut slot = sim_traces().lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    std::mem::take(&mut *slot)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn extracts_flags_anywhere_on_the_line() {
        let (rest, flags) = extract(&strings(&[
            "generate", "--log", "info", "--out", "w.bin", "--trace-out", "t.json",
        ]))
        .unwrap();
        assert_eq!(rest, strings(&["generate", "--out", "w.bin"]));
        assert_eq!(flags.stderr, Some(tasq_obs::Level::Info));
        assert_eq!(flags.trace_out.as_deref(), Some("t.json"));
    }

    #[test]
    fn off_level_disables_stderr() {
        let (_, flags) = extract(&strings(&["--log", "off", "inspect"])).unwrap();
        assert_eq!(flags.stderr, None);
        assert!(flags.trace_out.is_none());
    }

    #[test]
    fn bad_level_and_missing_values_are_usage_errors() {
        assert!(extract(&strings(&["--log", "loud"])).is_err());
        assert!(extract(&strings(&["--log"])).is_err());
        assert!(extract(&strings(&["--trace-out"])).is_err());
    }

    #[test]
    fn no_flags_is_inert() {
        let (rest, flags) = extract(&strings(&["serve", "--workers", "2"])).unwrap();
        assert_eq!(rest, strings(&["serve", "--workers", "2"]));
        assert!(!flags.active());
        assert!(flags.export().unwrap().is_none());
    }
}
