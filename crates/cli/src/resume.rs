//! Crash-consistent, resumable offline training.
//!
//! `train --checkpoint-dir <dir>` runs the offline pipeline (flight →
//! featurize → GBDT → NN) through this engine instead of the
//! uninterruptible [`tasq::pipeline::TasqPipeline`]. Every phase commits
//! durable frames into a [`CheckpointStore`]:
//!
//! * `manifest` — one frame fingerprinting the workload and the training
//!   configuration, so a resume against a different run is refused
//!   instead of silently producing garbage.
//! * `flight`   — the flat (job × allocation × repetition) grid from
//!   [`scope_sim::flight_tasks`], committed in completed-prefix chunks.
//!   Each cell's seed is a pure function of its coordinates, so a resume
//!   replays exactly the missing suffix.
//! * `dataset`  — a digest frame marking the featurize phase complete
//!   (the dataset itself is a deterministic function of the workload and
//!   is rebuilt, then verified against the digest).
//! * `gbdt`     — one [`tasq_ml::gbdt::BoosterCheckpoint`] per boosting
//!   round; a resume restores the subsampling RNG mid-stream.
//! * `nn`       — one [`tasq::models::NnTrainCheckpoint`] per epoch,
//!   including the optimizer moments and the shuffle RNG.
//! * `done`     — the run's final fingerprint.
//!
//! The invariant the chaos harness enforces in CI: a run killed after
//! *any* checkpoint commit — even with a torn tail sheared off the
//! last-written log — and then resumed produces a bit-identical
//! fingerprint to a run that was never interrupted.

use crate::CliError;
use scope_sim::{
    flight_tasks, run_flight_cell, ExecScratch, ExecutionResult, Executor, FlightConfig, Job,
    NoiseModel, SimError, StageGraph,
};
use serde::{Deserialize, Serialize};
use tasq::codec;
use tasq::dataset::Dataset;
use tasq::models::{NnPcc, NnTrainCheckpoint, NnTrainConfig, XgbRuntime, XgbTrainConfig};
use tasq_ml::gbdt::{Booster, BoosterCheckpoint};
use tasq_resil::CheckpointStore;

/// Stage-log names, in pipeline order.
pub const STAGES: [&str; 6] = ["manifest", "flight", "dataset", "gbdt", "nn", "done"];

const STAGE_MANIFEST: &str = "manifest";
const STAGE_FLIGHT: &str = "flight";
const STAGE_DATASET: &str = "dataset";
const STAGE_GBDT: &str = "gbdt";
const STAGE_NN: &str = "nn";
const STAGE_DONE: &str = "done";

/// Mix `bits` into an order-sensitive digest (shared with `bench-train`).
pub fn fold_bits(fingerprint: &mut u64, bits: u64) {
    *fingerprint = fingerprint.rotate_left(7) ^ bits;
}

/// Order-sensitive digest of a byte string (u64-chunked SplitMix folds).
fn digest_bytes(bytes: &[u8]) -> u64 {
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        digest = tasq_resil::chaos::mix64(digest, u64::from_le_bytes(word));
    }
    digest
}

fn encode<T: Serialize>(value: &T) -> Result<Vec<u8>, CliError> {
    Ok(codec::to_bytes(value)?.to_vec())
}

fn decode<T: serde::de::DeserializeOwned>(payload: &[u8]) -> Result<T, CliError> {
    Ok(codec::from_bytes(payload)?)
}

/// Sizing knobs for one checkpointed training run.
#[derive(Debug, Clone)]
pub struct TrainEngineConfig {
    /// NN training epochs.
    pub nn_epochs: usize,
    /// GBDT boosting rounds.
    pub xgb_rounds: usize,
    /// Base seed for the flighting grid.
    pub seed: u64,
    /// Flight-grid cells per checkpoint frame.
    pub flight_chunk: usize,
    /// Work-stealing pool width for featurize and split search.
    pub threads: usize,
}

impl Default for TrainEngineConfig {
    fn default() -> Self {
        Self { nn_epochs: 30, xgb_rounds: 40, seed: 0, flight_chunk: 64, threads: 2 }
    }
}

/// What a completed run produced.
pub struct TrainSummary {
    /// Order-sensitive digest of every numeric output (flight cells,
    /// dataset examples, GBDT predictions, NN curve parameters). Equal
    /// fingerprints across killed-and-resumed and uninterrupted runs are
    /// the bit-identity proof.
    pub fingerprint: u64,
    /// Trainable examples in the dataset.
    pub examples: usize,
    /// Cells in the flighting grid.
    pub flight_cells: usize,
    /// Cells that exhausted their retry budget.
    pub flight_errors: usize,
    /// Frames recovered from the checkpoint directory (0 on a cold run).
    pub recovered_frames: usize,
    /// Torn tails trimmed during recovery.
    pub torn_tails_trimmed: usize,
    /// Frames durably committed by *this* run.
    pub commits: u64,
    /// Whether any prior frames were found (i.e. this run resumed).
    pub resumed: bool,
    /// The trained curve model.
    pub nn: NnPcc,
    /// The trained point-prediction model.
    pub xgb: XgbRuntime,
}

/// How a run ended: normally, or at the chaos plan's planted kill.
pub enum RunEnd {
    /// The pipeline ran to completion.
    Completed(Box<TrainSummary>),
    /// The injected process death fired after a checkpoint commit.
    Killed {
        /// Stage log that received the final commit.
        stage: String,
        /// Commits made before death.
        commits: u64,
    },
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ManifestRecord {
    workload_digest: u64,
    jobs: u64,
    seed: u64,
    nn_epochs: u64,
    xgb_rounds: u64,
    flight_chunk: u64,
}

/// One flight-grid cell's result. The vendored serde has no `Result`
/// impl, so success and the typed simulator error ride in two options.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CellOutcome {
    ok: Option<ExecutionResult>,
    err: Option<SimError>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct FlightChunkRecord {
    start: u64,
    outcomes: Vec<CellOutcome>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct DatasetRecord {
    examples: u64,
    digest: u64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct DoneRecord {
    fingerprint: u64,
}

/// Counted, killable checkpoint committer: every durable append runs
/// through here so the chaos plan's "die after N commits" is exact.
struct Committer<'a> {
    store: &'a CheckpointStore,
    commits: u64,
    kill_after: Option<u64>,
}

impl Committer<'_> {
    /// Append one frame; `Ok(false)` means the planted death fired (the
    /// frame itself is durable — death strikes *after* the commit).
    fn commit(&mut self, stage: &str, payload: &[u8]) -> Result<bool, CliError> {
        self.store.append(stage, payload)?;
        self.commits += 1;
        Ok(!matches!(self.kill_after, Some(k) if self.commits >= k))
    }
}

fn mismatch(stage: &str, dir: &std::path::Path, detail: &str) -> CliError {
    CliError::Usage(format!(
        "checkpoint directory {} does not match this run (stage `{stage}`: {detail}); \
         pass a fresh --checkpoint-dir or drop --resume",
        dir.display()
    ))
}

/// Run the checkpointed offline pipeline against `store`, resuming from
/// whatever frames it already holds. `kill_after` is the chaos plan's
/// planted process death: stop (without error) after that many durable
/// commits.
pub fn run_checkpointed_train(
    jobs: &[Job],
    store: &CheckpointStore,
    config: &TrainEngineConfig,
    kill_after: Option<u64>,
) -> Result<RunEnd, CliError> {
    let pool = tasq_par::Pool::new(config.threads.max(1));
    let mut fingerprint = 0u64;
    let mut recovered_frames = 0usize;
    let mut torn_tails = 0usize;
    let mut committer = Committer { store, commits: 0, kill_after };

    // --- manifest: refuse to resume someone else's run -----------------
    let manifest = ManifestRecord {
        workload_digest: digest_bytes(&encode(&jobs.to_vec())?),
        jobs: jobs.len() as u64,
        seed: config.seed,
        nn_epochs: config.nn_epochs as u64,
        xgb_rounds: config.xgb_rounds as u64,
        flight_chunk: config.flight_chunk.max(1) as u64,
    };
    let recovery = store.recover_stage(STAGE_MANIFEST)?;
    torn_tails += usize::from(recovery.torn.is_some());
    let resumed = recovery.last().is_some();
    match recovery.last() {
        Some(frame) => {
            let prior: ManifestRecord = decode(&frame.payload)?;
            if prior != manifest {
                return Err(mismatch(
                    STAGE_MANIFEST,
                    store.dir(),
                    "workload or training configuration changed",
                ));
            }
            recovered_frames += 1;
        }
        None => {
            if !committer.commit(STAGE_MANIFEST, &encode(&manifest)?)? {
                return Ok(RunEnd::Killed {
                    stage: STAGE_MANIFEST.to_string(),
                    commits: committer.commits,
                });
            }
        }
    }

    // --- flight: the grid, in completed-prefix chunks ------------------
    let refs: Vec<u32> = jobs.iter().map(|j| j.requested_tokens.max(4)).collect();
    let flight_cfg = FlightConfig {
        noise: NoiseModel::mild(),
        seed: config.seed,
        repetitions: 2,
        ..Default::default()
    };
    let tasks = flight_tasks(jobs, &refs, &flight_cfg);

    let recovery = store.recover_stage(STAGE_FLIGHT)?;
    torn_tails += usize::from(recovery.torn.is_some());
    recovered_frames += recovery.frames.len();
    let mut outcomes: Vec<CellOutcome> = Vec::with_capacity(tasks.len());
    for frame in &recovery.frames {
        let chunk: FlightChunkRecord = decode(&frame.payload)?;
        if chunk.start as usize != outcomes.len() {
            return Err(mismatch(STAGE_FLIGHT, store.dir(), "chunk sequence out of order"));
        }
        outcomes.extend(chunk.outcomes);
    }
    if outcomes.len() > tasks.len() {
        return Err(mismatch(STAGE_FLIGHT, store.dir(), "more cells than the grid holds"));
    }

    struct CachedExecutor {
        job_idx: usize,
        executor: Executor,
    }
    let mut cache: Option<CachedExecutor> = None;
    let mut scratch = ExecScratch::default();
    while outcomes.len() < tasks.len() {
        let start = outcomes.len();
        let end = (start + config.flight_chunk.max(1)).min(tasks.len());
        let mut chunk =
            FlightChunkRecord { start: start as u64, outcomes: Vec::with_capacity(end - start) };
        for &(job_idx, alloc, rep) in &tasks[start..end] {
            if cache.as_ref().map(|c| c.job_idx) != Some(job_idx) {
                let job = &jobs[job_idx];
                cache = Some(CachedExecutor {
                    job_idx,
                    executor: Executor::new(StageGraph::from_plan(&job.plan, job.seed)),
                });
            }
            if let Some(c) = cache.as_ref() {
                let outcome = match run_flight_cell(
                    &jobs[job_idx],
                    &c.executor,
                    alloc,
                    rep,
                    &flight_cfg,
                    &mut scratch,
                ) {
                    Ok(result) => CellOutcome { ok: Some(result), err: None },
                    Err(e) => CellOutcome { ok: None, err: Some(e) },
                };
                chunk.outcomes.push(outcome);
            }
        }
        let keep_going = committer.commit(STAGE_FLIGHT, &encode(&chunk)?)?;
        outcomes.append(&mut chunk.outcomes);
        if !keep_going {
            return Ok(RunEnd::Killed {
                stage: STAGE_FLIGHT.to_string(),
                commits: committer.commits,
            });
        }
    }
    let mut flight_errors = 0usize;
    for outcome in &outcomes {
        match &outcome.ok {
            Some(result) => {
                fold_bits(&mut fingerprint, result.runtime_secs.to_bits());
                fold_bits(&mut fingerprint, result.total_token_seconds.to_bits());
            }
            None => {
                flight_errors += 1;
                fold_bits(&mut fingerprint, 0x0BAD_C0DE_0BAD_C0DE);
            }
        }
    }

    // --- dataset: deterministic rebuild, digest-verified ----------------
    let dataset = Dataset::build_with_pool(jobs, &tasq::augment::AugmentConfig::default(), &pool);
    if dataset.is_empty() {
        return Err(CliError::Usage("workload yields no trainable examples".to_string()));
    }
    let mut dataset_digest = 0u64;
    for example in &dataset.examples {
        fold_bits(&mut dataset_digest, example.observed_runtime.to_bits());
        fold_bits(&mut dataset_digest, example.target_pcc.a.to_bits());
        fold_bits(&mut dataset_digest, example.target_pcc.b.to_bits());
    }
    fold_bits(&mut fingerprint, dataset_digest);
    let dataset_record =
        DatasetRecord { examples: dataset.len() as u64, digest: dataset_digest };
    let recovery = store.recover_stage(STAGE_DATASET)?;
    torn_tails += usize::from(recovery.torn.is_some());
    match recovery.last() {
        Some(frame) => {
            let prior: DatasetRecord = decode(&frame.payload)?;
            if prior != dataset_record {
                return Err(mismatch(STAGE_DATASET, store.dir(), "featurize digest diverged"));
            }
            recovered_frames += 1;
        }
        None => {
            if !committer.commit(STAGE_DATASET, &encode(&dataset_record)?)? {
                return Ok(RunEnd::Killed {
                    stage: STAGE_DATASET.to_string(),
                    commits: committer.commits,
                });
            }
        }
    }

    // --- gbdt: one checkpoint per boosting round ------------------------
    let (rows, targets) = dataset.xgb_rows();
    let xgb_config = XgbTrainConfig { num_rounds: config.xgb_rounds, ..Default::default() };
    let recovery = store.recover_stage(STAGE_GBDT)?;
    torn_tails += usize::from(recovery.torn.is_some());
    recovered_frames += recovery.frames.len();
    let gbdt_resume: Option<BoosterCheckpoint> =
        recovery.last().map(|frame| decode(&frame.payload)).transpose()?;
    let mut commit_err: Option<CliError> = None;
    let booster = {
        let committer = &mut committer;
        let commit_err = &mut commit_err;
        Booster::train_resumable_with_pool(
            &rows,
            &targets,
            &XgbRuntime::booster_config(&xgb_config),
            &pool,
            gbdt_resume,
            &mut |ckpt| match encode(ckpt).and_then(|b| committer.commit(STAGE_GBDT, &b)) {
                Ok(keep_going) => keep_going,
                Err(e) => {
                    *commit_err = Some(e);
                    false
                }
            },
        )
    };
    let booster = match booster {
        Some(booster) => booster,
        None => {
            if let Some(e) = commit_err {
                return Err(e);
            }
            return Ok(RunEnd::Killed { stage: STAGE_GBDT.to_string(), commits: committer.commits });
        }
    };
    for pred in booster.predict(&rows) {
        fold_bits(&mut fingerprint, pred.to_bits());
    }
    let xgb = XgbRuntime::from_booster(booster);

    // --- nn: one checkpoint per epoch -----------------------------------
    let nn_config = NnTrainConfig { epochs: config.nn_epochs, ..Default::default() };
    let recovery = store.recover_stage(STAGE_NN)?;
    torn_tails += usize::from(recovery.torn.is_some());
    recovered_frames += recovery.frames.len();
    let nn_resume: Option<NnTrainCheckpoint> =
        recovery.last().map(|frame| decode(&frame.payload)).transpose()?;
    let mut commit_err: Option<CliError> = None;
    let nn = {
        let committer = &mut committer;
        let commit_err = &mut commit_err;
        NnPcc::train_with_teacher_resumable(
            &dataset,
            &nn_config,
            None,
            nn_resume,
            &mut |ckpt| match encode(ckpt).and_then(|b| committer.commit(STAGE_NN, &b)) {
                Ok(keep_going) => keep_going,
                Err(e) => {
                    *commit_err = Some(e);
                    false
                }
            },
        )
    };
    let nn = match nn {
        Some(nn) => nn,
        None => {
            if let Some(e) = commit_err {
                return Err(e);
            }
            return Ok(RunEnd::Killed { stage: STAGE_NN.to_string(), commits: committer.commits });
        }
    };
    for example in &dataset.examples {
        let pcc = nn.predict_pcc(&example.features);
        fold_bits(&mut fingerprint, pcc.a.to_bits());
        fold_bits(&mut fingerprint, pcc.b.to_bits());
    }

    // --- done: seal the run with its fingerprint -------------------------
    let done = DoneRecord { fingerprint };
    let recovery = store.recover_stage(STAGE_DONE)?;
    torn_tails += usize::from(recovery.torn.is_some());
    match recovery.last() {
        Some(frame) => {
            let prior: DoneRecord = decode(&frame.payload)?;
            if prior != done {
                return Err(mismatch(STAGE_DONE, store.dir(), "final fingerprint diverged"));
            }
            recovered_frames += 1;
        }
        None => {
            if !committer.commit(STAGE_DONE, &encode(&done)?)? {
                return Ok(RunEnd::Killed {
                    stage: STAGE_DONE.to_string(),
                    commits: committer.commits,
                });
            }
        }
    }

    Ok(RunEnd::Completed(Box::new(TrainSummary {
        fingerprint,
        examples: dataset.len(),
        flight_cells: tasks.len(),
        flight_errors,
        recovered_frames,
        torn_tails_trimmed: torn_tails,
        commits: committer.commits,
        resumed,
        nn,
        xgb,
    })))
}

/// Shear `bytes` off the tail of a stage's checkpoint log — the chaos
/// harness's torn-write injection (a crash mid-append leaves exactly
/// this). Returns how many bytes were actually removed.
pub fn shear_log_tail(
    store: &CheckpointStore,
    stage: &str,
    bytes: u64,
) -> Result<u64, CliError> {
    let path = store.stage_path(stage);
    let len = std::fs::metadata(&path)?.len();
    let new_len = len.saturating_sub(bytes);
    let file = std::fs::OpenOptions::new().write(true).open(&path)?;
    file.set_len(new_len)?;
    file.sync_all()?;
    Ok(len - new_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_sim::{WorkloadConfig, WorkloadGenerator};

    fn workload(n: usize, seed: u64) -> Vec<Job> {
        WorkloadGenerator::new(WorkloadConfig { num_jobs: n, seed, ..Default::default() })
            .generate()
    }

    fn store(tag: &str) -> CheckpointStore {
        let dir = std::env::temp_dir()
            .join(format!("tasq-cli-resume-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::open(dir).unwrap()
    }

    fn quick_config() -> TrainEngineConfig {
        TrainEngineConfig {
            nn_epochs: 4,
            xgb_rounds: 6,
            seed: 11,
            flight_chunk: 32,
            threads: 2,
        }
    }

    fn complete(end: RunEnd) -> Box<TrainSummary> {
        match end {
            RunEnd::Completed(summary) => summary,
            RunEnd::Killed { stage, commits } => {
                panic!("unexpected kill in stage {stage} after {commits} commits")
            }
        }
    }

    #[test]
    fn kill_at_every_commit_and_resume_is_bit_identical() {
        let jobs = workload(6, 3);
        let config = quick_config();

        let reference_store = store("reference");
        let reference =
            complete(run_checkpointed_train(&jobs, &reference_store, &config, None).unwrap());
        assert!(!reference.resumed);
        assert_eq!(reference.recovered_frames, 0);

        // Total commits of an uninterrupted run bounds the kill sweep.
        let total = reference.commits;
        assert!(total > 4, "expected multi-stage commit trail, got {total}");

        // Sweep a few kill points across all stages (every point would be
        // thorough but slow; endpoints + a stride covers each stage).
        let kill_points: Vec<u64> =
            (1..=total).step_by((total as usize / 8).max(1)).chain([total]).collect();
        for kill in kill_points {
            let chaos_store = store(&format!("kill{kill}"));
            let first =
                run_checkpointed_train(&jobs, &chaos_store, &config, Some(kill)).unwrap();
            if kill < total {
                assert!(matches!(first, RunEnd::Killed { .. }), "kill {kill} did not fire");
            }
            let resumed =
                complete(run_checkpointed_train(&jobs, &chaos_store, &config, None).unwrap());
            assert_eq!(
                resumed.fingerprint, reference.fingerprint,
                "kill after {kill} commits diverged"
            );
            let _ = std::fs::remove_dir_all(chaos_store.dir());
        }
        let _ = std::fs::remove_dir_all(reference_store.dir());
    }

    #[test]
    fn torn_tail_after_kill_still_resumes_bit_identically() {
        let jobs = workload(5, 9);
        let config = quick_config();

        let reference_store = store("torn-ref");
        let reference =
            complete(run_checkpointed_train(&jobs, &reference_store, &config, None).unwrap());

        let chaos_store = store("torn-chaos");
        let end = run_checkpointed_train(&jobs, &chaos_store, &config, Some(3)).unwrap();
        let RunEnd::Killed { stage, .. } = end else { panic!("kill did not fire") };
        let sheared = shear_log_tail(&chaos_store, &stage, 7).unwrap();
        assert!(sheared > 0);

        let resumed =
            complete(run_checkpointed_train(&jobs, &chaos_store, &config, None).unwrap());
        assert!(resumed.resumed);
        assert!(resumed.torn_tails_trimmed >= 1, "the shear must be detected as a torn tail");
        assert_eq!(resumed.fingerprint, reference.fingerprint);
        let _ = std::fs::remove_dir_all(chaos_store.dir());
        let _ = std::fs::remove_dir_all(reference_store.dir());
    }

    #[test]
    fn resume_against_a_different_workload_is_refused() {
        let config = quick_config();
        let s = store("mismatch");
        complete(run_checkpointed_train(&workload(5, 1), &s, &config, None).unwrap());
        let Err(err) = run_checkpointed_train(&workload(5, 2), &s, &config, None) else {
            panic!("resume against a different workload must be refused")
        };
        assert!(err.to_string().contains("does not match"), "{err}");
        let _ = std::fs::remove_dir_all(s.dir());
    }
}
