//! Tiny `--key value` option parser shared by the subcommands.

use crate::CliError;
use std::collections::HashMap;

/// Parsed `--key value` options.
#[derive(Debug, Default)]
pub struct Options {
    values: HashMap<String, String>,
}

impl Options {
    /// Parse a flat list of `--key value` pairs.
    pub fn parse(args: &[String], allowed: &[&str]) -> Result<Self, CliError> {
        let mut values = HashMap::new();
        let mut iter = args.iter();
        while let Some(key) = iter.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(CliError::Usage(format!("expected --flag, got `{key}`")));
            };
            if !allowed.contains(&name) {
                return Err(CliError::Usage(format!(
                    "unknown flag --{name} (allowed: {})",
                    allowed.iter().map(|a| format!("--{a}")).collect::<Vec<_>>().join(", ")
                )));
            }
            let Some(value) = iter.next() else {
                return Err(CliError::Usage(format!("missing value for --{name}")));
            };
            values.insert(name.to_string(), value.clone());
        }
        Ok(Self { values })
    }

    /// A required string option.
    pub fn required(&self, name: &str) -> Result<&str, CliError> {
        self.values
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("--{name} is required")))
    }

    /// An optional string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// An optional numeric option with a default.
    pub fn number<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.values.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::Usage(format!("invalid value for --{name}: {raw}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let opts =
            Options::parse(&strings(&["--jobs", "50", "--out", "w.bin"]), &["jobs", "out"])
                .unwrap();
        assert_eq!(opts.required("out").unwrap(), "w.bin");
        assert_eq!(opts.number::<usize>("jobs", 1).unwrap(), 50);
        assert_eq!(opts.number::<u64>("seed", 7).unwrap(), 7);
    }

    #[test]
    fn rejects_unknown_flags() {
        let err = Options::parse(&strings(&["--nope", "1"]), &["jobs"]).unwrap_err();
        assert!(err.to_string().contains("unknown flag"));
    }

    #[test]
    fn rejects_missing_value() {
        let err = Options::parse(&strings(&["--jobs"]), &["jobs"]).unwrap_err();
        assert!(err.to_string().contains("missing value"));
    }

    #[test]
    fn required_missing_is_error() {
        let opts = Options::parse(&[], &["out"]).unwrap();
        assert!(opts.required("out").is_err());
    }
}
