//! The `tasq-cli` command-line binary.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match tasq_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(error) => {
            eprintln!("{error}");
            std::process::exit(2);
        }
    }
}
