//! The ten subcommands.

use crate::options::Options;
use crate::resume::{
    fold_bits, run_checkpointed_train, shear_log_tail, RunEnd, TrainEngineConfig, TrainSummary,
};
use crate::CliError;
use scope_sim::flight::{filter_non_anomalous, flight_job, flight_workload, FlightConfig};
use scope_sim::{
    replay_traffic, FaultPlan, Job, NoiseModel, RecoveryPolicy, TrafficConfig, WorkloadConfig,
    WorkloadGenerator,
};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::{Duration, Instant};
use tasq::codec;
use tasq::models::{NnTrainConfig, XgbTrainConfig};
use tasq::pipeline::{
    AllocationDecision, DiskModelStore, JobRepository, ModelChoice, ModelStore, PipelineConfig,
    ScoringConfig, ScoringService, TasqPipeline, NN_MODEL_NAME, XGB_MODEL_NAME,
};
use tasq_net::{BinaryClient, HttpClient, NetConfig, NetServer, ScoreOutcome, TokenBucket};
use tasq_resil::{BreakerState, ChaosPlan, CheckpointStore};
use tasq_serve::cache::CacheConfig;
use tasq_serve::{
    ModelRegistry, ScalingConfig, ScoringServer, ServeConfig, ServedVia, ServerStatsSnapshot,
};

fn read_workload(path: &str) -> Result<Vec<Job>, CliError> {
    let bytes = std::fs::read(path)?;
    Ok(codec::from_bytes(&bytes)?)
}

/// `tasq generate --out <file> [--jobs N] [--seed N]`
pub fn generate(args: &[String]) -> Result<String, CliError> {
    let opts = Options::parse(args, &["out", "jobs", "seed"])?;
    let out = opts.required("out")?;
    let jobs = opts.number::<usize>("jobs", 500)?;
    let seed = opts.number::<u64>("seed", 0)?;
    let workload = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: jobs,
        seed,
        ..Default::default()
    })
    .generate();
    let bytes = codec::to_bytes(&workload)?;
    std::fs::write(out, &bytes)?;
    Ok(format!("wrote {jobs} jobs ({} bytes) to {out}\n", bytes.len()))
}

/// `tasq inspect --workload <file>`
pub fn inspect(args: &[String]) -> Result<String, CliError> {
    let opts = Options::parse(args, &["workload"])?;
    let jobs = read_workload(opts.required("workload")?)?;
    let tokens: Vec<f64> = jobs.iter().map(|j| j.requested_tokens as f64).collect();
    let operators: Vec<f64> = jobs.iter().map(|j| j.plan.num_operators() as f64).collect();
    let recurring = jobs.iter().filter(|j| j.meta.recurring_template.is_some()).count();
    let mut out = String::new();
    let _ = writeln!(out, "workload: {} jobs", jobs.len());
    let _ = writeln!(
        out,
        "requested tokens: median {:.0}, mean {:.0}, max {:.0}",
        tasq_ml::stats::median(&tokens),
        tasq_ml::stats::mean(&tokens),
        tokens.iter().copied().fold(0.0, f64::max),
    );
    let _ = writeln!(
        out,
        "operators per plan: median {:.0}, max {:.0}",
        tasq_ml::stats::median(&operators),
        operators.iter().copied().fold(0.0, f64::max),
    );
    let _ = writeln!(
        out,
        "recurring: {recurring} ({:.0}%), ad-hoc: {}",
        100.0 * recurring as f64 / jobs.len().max(1) as f64,
        jobs.len() - recurring
    );
    Ok(out)
}

/// `tasq train --workload <file> --model-dir <dir> [--nn-epochs N] [--xgb-rounds N]
///  [--checkpoint-dir <dir>] [--resume true] [--seed N] [--threads N] [--flight-chunk N]`
///
/// With `--checkpoint-dir`, training runs through the crash-consistent
/// engine in [`crate::resume`]: every phase commits durable frames, and
/// `--resume true` replays only the work a killed run left unfinished.
pub fn train(args: &[String]) -> Result<String, CliError> {
    let opts = Options::parse(
        args,
        &[
            "workload", "model-dir", "nn-epochs", "xgb-rounds", "checkpoint-dir", "resume",
            "seed", "threads", "flight-chunk",
        ],
    )?;
    let jobs = read_workload(opts.required("workload")?)?;
    let model_dir = opts.required("model-dir")?;
    let nn_epochs = opts.number::<usize>("nn-epochs", 120)?;
    let xgb_rounds = opts.number::<usize>("xgb-rounds", 120)?;

    if let Some(checkpoint_dir) = opts.get("checkpoint-dir") {
        let resume = matches!(opts.get("resume").unwrap_or("false"), "true" | "1" | "on");
        let engine = TrainEngineConfig {
            nn_epochs,
            xgb_rounds,
            seed: opts.number::<u64>("seed", 0)?,
            flight_chunk: opts.number::<usize>("flight-chunk", 64)?,
            threads: opts.number::<usize>("threads", 2)?,
        };
        return train_checkpointed(&jobs, model_dir, checkpoint_dir, resume, &engine);
    }

    // Train through the in-memory pipeline, then persist to disk.
    let repo = JobRepository::new();
    let job_count = jobs.len();
    repo.ingest(jobs);
    let memory_store = ModelStore::new();
    let pipeline = TasqPipeline::new(PipelineConfig {
        nn: NnTrainConfig { epochs: nn_epochs, ..Default::default() },
        xgb: XgbTrainConfig { num_rounds: xgb_rounds, ..Default::default() },
        ..Default::default()
    });
    let dataset = pipeline.train(&repo, &memory_store)?;

    let disk = DiskModelStore::open(model_dir)?;
    let nn: tasq::models::NnPcc = memory_store.load_latest(NN_MODEL_NAME)?;
    let xgb: tasq::models::XgbRuntime = memory_store.load_latest(XGB_MODEL_NAME)?;
    let nn_version = disk.register(NN_MODEL_NAME, &nn)?;
    let xgb_version = disk.register(XGB_MODEL_NAME, &xgb)?;
    Ok(format!(
        "trained on {job_count} jobs ({} examples)\nregistered {NN_MODEL_NAME} v{nn_version}, \
         {XGB_MODEL_NAME} v{xgb_version} in {model_dir}\n",
        dataset.len()
    ))
}

/// The `--checkpoint-dir` arm of `train`: run the crash-consistent
/// engine (resuming whatever frames the directory already holds when
/// `--resume true`), then register the artifacts on disk.
fn train_checkpointed(
    jobs: &[Job],
    model_dir: &str,
    checkpoint_dir: &str,
    resume: bool,
    engine: &TrainEngineConfig,
) -> Result<String, CliError> {
    let store = CheckpointStore::open(checkpoint_dir)?;
    if !resume {
        store.reset()?;
    }
    let summary = match run_checkpointed_train(jobs, &store, engine, None)? {
        RunEnd::Completed(summary) => summary,
        RunEnd::Killed { stage, commits } => {
            return Err(CliError::Usage(format!(
                "internal: training halted in stage `{stage}` after {commits} commits \
                 without a chaos plan"
            )))
        }
    };
    let disk = DiskModelStore::open(model_dir)?;
    let nn_version = disk.register(NN_MODEL_NAME, &summary.nn)?;
    let xgb_version = disk.register(XGB_MODEL_NAME, &summary.xgb)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "checkpointed train: {} jobs, {} flight cells ({} dropped), {} examples",
        jobs.len(),
        summary.flight_cells,
        summary.flight_errors,
        summary.examples,
    );
    let _ = writeln!(
        out,
        "resumed: {} ({} frames recovered, {} torn tails trimmed), {} commits this run",
        summary.resumed, summary.recovered_frames, summary.torn_tails_trimmed, summary.commits,
    );
    let _ = writeln!(out, "fingerprint: {:#018x}", summary.fingerprint);
    let _ = writeln!(
        out,
        "registered {NN_MODEL_NAME} v{nn_version}, {XGB_MODEL_NAME} v{xgb_version} in {model_dir}"
    );
    Ok(out)
}

/// One serving chaos drive: serial request stream through a supervised
/// server with the plan's worker panics, NN fault window, and deadline
/// storm armed. Returns the drained stats and whether the breaker ended
/// the run closed.
fn drive_serving_chaos(
    summary: &TrainSummary,
    jobs: &[Job],
    plan: &ChaosPlan,
    requests: usize,
    seed: u64,
) -> Result<(ServerStatsSnapshot, bool), CliError> {
    let store = ModelStore::new();
    store.register(NN_MODEL_NAME, &summary.nn)?;
    store.register(XGB_MODEL_NAME, &summary.xgb)?;
    let registry = ModelRegistry::deploy(&store, ModelChoice::Nn, ScoringConfig::default())
        .map_err(|e| CliError::Usage(e.to_string()))?;
    let server = ScoringServer::start(
        std::sync::Arc::new(registry),
        ServeConfig {
            workers: 2,
            // Cache off so every admitted request reaches the worker pool
            // (the breaker and the planted panics see all of the traffic).
            cache: CacheConfig { enabled: false, ..Default::default() },
            chaos: Some(plan.clone()),
            ..Default::default()
        },
    );
    let traffic =
        replay_traffic(jobs, &TrafficConfig { requests, repeat_fraction: 0.5, seed });
    // Serial submit → outcome keeps the request sequence (and so the
    // planted fault schedule) deterministic; the server's counters do the
    // per-outcome accounting.
    for job in traffic {
        if let Ok(ticket) = server.submit(job) {
            let _ = ticket.outcome();
        }
    }
    let breaker_closed = matches!(server.breaker_state(), BreakerState::Closed);
    Ok((server.drain(), breaker_closed))
}

fn json_opt_u64(value: Option<u64>) -> String {
    value.map_or_else(|| "null".to_string(), |v| v.to_string())
}

/// `tasq chaos --preset none|mild|production|adversarial [--seed N] [--jobs N]
///  [--requests N] [--dir <dir>] [--out <json>]`
///
/// The deterministic chaos harness. One run:
///
/// 1. trains a reference through the checkpointed engine, uninterrupted;
/// 2. replays the same training with the preset's planted process death,
///    shears a torn tail off the last-written checkpoint log, resumes,
///    and checks the resumed fingerprint is bit-identical;
/// 3. drives the supervised scoring server (with the resumed artifacts)
///    through the preset's worker panics, NN fault window, and deadline
///    storm, asserting zero silent request loss and that the circuit
///    breaker trips *and* recovers;
/// 4. writes the whole report as machine-readable JSON for CI to grep.
pub fn chaos(args: &[String]) -> Result<String, CliError> {
    let opts = Options::parse(args, &["preset", "seed", "jobs", "requests", "dir", "out"])?;
    let preset = opts.required("preset")?;
    let seed = opts.number::<u64>("seed", 0)?;
    let num_jobs = opts.number::<usize>("jobs", 10)?;
    let requests = opts.number::<usize>("requests", 320)?;
    let out_path = opts.get("out").unwrap_or("chaos-report.json").to_string();
    let plan = ChaosPlan::preset(preset, seed).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown --preset `{preset}` (expected one of {})",
            tasq_resil::chaos::PRESET_NAMES.join("|")
        ))
    })?;
    let work_dir = match opts.get("dir") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => std::env::temp_dir().join(format!("tasq-chaos-{}", std::process::id())),
    };

    let jobs = WorkloadGenerator::new(WorkloadConfig { num_jobs, seed, ..Default::default() })
        .generate();
    let engine = TrainEngineConfig {
        nn_epochs: 8,
        xgb_rounds: 12,
        seed,
        flight_chunk: 64,
        threads: 2,
    };
    let complete = |end: RunEnd| -> Result<Box<TrainSummary>, CliError> {
        match end {
            RunEnd::Completed(summary) => Ok(summary),
            RunEnd::Killed { stage, commits } => Err(CliError::Usage(format!(
                "internal: unplanned kill in stage `{stage}` after {commits} commits"
            ))),
        }
    };

    // 1. Uninterrupted reference run.
    let reference_store = CheckpointStore::open(work_dir.join("reference"))?;
    reference_store.reset()?;
    let reference = complete(run_checkpointed_train(&jobs, &reference_store, &engine, None)?)?;

    // 2. Killed + torn + resumed run.
    let chaos_store = CheckpointStore::open(work_dir.join("chaos"))?;
    chaos_store.reset()?;
    let first =
        run_checkpointed_train(&jobs, &chaos_store, &engine, plan.kill_after_checkpoints)?;
    let (killed_stage, commits_before_kill, torn_bytes_sheared) = match first {
        RunEnd::Killed { stage, commits } => {
            let sheared = match plan.torn_tail_bytes {
                Some(bytes) => shear_log_tail(&chaos_store, &stage, bytes)?,
                None => 0,
            };
            (Some(stage), commits, sheared)
        }
        RunEnd::Completed(summary) => (None, summary.commits, 0),
    };
    let resumed = complete(run_checkpointed_train(&jobs, &chaos_store, &engine, None)?)?;
    let resumed_bit_identical = resumed.fingerprint == reference.fingerprint;

    // 3. Serving chaos with the artifacts the resumed run produced.
    let (stats, breaker_closed) = drive_serving_chaos(&resumed, &jobs, &plan, requests, seed)?;
    let zero_silent_loss = stats.submitted == stats.resolved();
    let breaker_exercised = plan.nn_fault_window.is_none()
        || (stats.breaker_trips >= 1 && stats.breaker_recoveries >= 1 && breaker_closed);
    let passed = resumed_bit_identical && zero_silent_loss && breaker_exercised;

    let panics_json = plan
        .worker_panics
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let window_json = plan
        .nn_fault_window
        .map_or_else(|| "null".to_string(), |(a, b)| format!("[{a}, {b}]"));
    let json = format!(
        "{{\n  \"preset\": \"{preset}\",\n  \"seed\": {seed},\n  \"jobs\": {num_jobs},\n  \
         \"plan\": {{\n    \"kill_after_checkpoints\": {},\n    \"torn_tail_bytes\": {},\n    \
         \"worker_panics\": [{panics_json}],\n    \"nn_fault_window\": {window_json},\n    \
         \"deadline_storm_start\": {}\n  }},\n  \"training\": {{\n    \
         \"reference_fingerprint\": \"{:#018x}\",\n    \"resumed_fingerprint\": \"{:#018x}\",\n    \
         \"killed_stage\": {},\n    \"commits_before_kill\": {commits_before_kill},\n    \
         \"torn_bytes_sheared\": {torn_bytes_sheared},\n    \
         \"recovered_frames\": {},\n    \"torn_tails_trimmed\": {},\n    \
         \"resumed_bit_identical\": {resumed_bit_identical}\n  }},\n  \"serving\": {{\n    \
         \"requests\": {requests},\n    \"submitted\": {},\n    \"completed\": {},\n    \
         \"rejected\": {},\n    \"worker_lost\": {},\n    \"deadline_timeouts\": {},\n    \
         \"worker_respawns\": {},\n    \"breaker_trips\": {},\n    \
         \"breaker_recoveries\": {},\n    \"breaker_closed_at_end\": {breaker_closed},\n    \
         \"resolved\": {},\n    \"zero_silent_loss\": {zero_silent_loss}\n  }},\n  \
         \"passed\": {passed}\n}}\n",
        json_opt_u64(plan.kill_after_checkpoints),
        json_opt_u64(plan.torn_tail_bytes),
        json_opt_u64(plan.deadline_storm.map(|s| s.start_seq)),
        reference.fingerprint,
        resumed.fingerprint,
        killed_stage.as_ref().map_or_else(|| "null".to_string(), |s| format!("\"{s}\"")),
        resumed.recovered_frames,
        resumed.torn_tails_trimmed,
        stats.submitted,
        stats.completed,
        stats.rejected,
        stats.worker_lost,
        stats.deadline_timeouts,
        stats.worker_respawns,
        stats.breaker_trips,
        stats.breaker_recoveries,
        stats.resolved(),
    );
    std::fs::write(&out_path, &json)?;
    stats.publish(tasq_obs::Registry::global());

    let mut out = String::new();
    let _ = writeln!(out, "chaos preset: {preset} (seed {seed})");
    match &killed_stage {
        Some(stage) => {
            let _ = writeln!(
                out,
                "training: killed in `{stage}` after {commits_before_kill} commits, \
                 sheared {torn_bytes_sheared} tail bytes, resumed with {} frames recovered \
                 ({} torn tails trimmed)",
                resumed.recovered_frames, resumed.torn_tails_trimmed,
            );
        }
        None => {
            let _ = writeln!(
                out,
                "training: no kill planted (preset `{preset}`), warm restart recovered {} frames",
                resumed.recovered_frames,
            );
        }
    }
    let _ = writeln!(out, "resumed bit-identical: {resumed_bit_identical}");
    let _ = writeln!(
        out,
        "serving: {} submitted = {} completed + {} rejected + {} worker-lost + {} timed out \
         (zero silent loss: {zero_silent_loss})",
        stats.submitted, stats.completed, stats.rejected, stats.worker_lost,
        stats.deadline_timeouts,
    );
    let _ = writeln!(
        out,
        "breaker: {} trips, {} recoveries, closed at end: {breaker_closed}; \
         {} worker respawns",
        stats.breaker_trips, stats.breaker_recoveries, stats.worker_respawns,
    );
    let _ = writeln!(out, "passed: {passed}");
    let _ = writeln!(out, "wrote {out_path}");
    Ok(out)
}

/// `tasq score --workload <file> --model-dir <dir> [--model nn|xgb-ss|xgb-pl]
///  [--min-improvement FRAC]`
pub fn score(args: &[String]) -> Result<String, CliError> {
    let opts =
        Options::parse(args, &["workload", "model-dir", "model", "min-improvement"])?;
    let jobs = read_workload(opts.required("workload")?)?;
    let disk = DiskModelStore::open(opts.required("model-dir")?)?;
    let choice = parse_model_choice(opts.get("model").unwrap_or("nn"))?;
    let min_improvement = opts.number::<f64>("min-improvement", 0.01)?;

    // Rehydrate the in-memory store the scoring service expects.
    let store = ModelStore::new();
    match choice {
        ModelChoice::Nn => {
            let nn: tasq::models::NnPcc = disk
                .load_latest(NN_MODEL_NAME)
                .map_err(|e| CliError::Usage(format!("no NN artifact in model dir: {e}")))?;
            store.register(NN_MODEL_NAME, &nn)?;
        }
        ModelChoice::XgboostSs | ModelChoice::XgboostPl => {
            let xgb: tasq::models::XgbRuntime = disk
                .load_latest(XGB_MODEL_NAME)
                .map_err(|e| CliError::Usage(format!("no XGBoost artifact in model dir: {e}")))?;
            store.register(XGB_MODEL_NAME, &xgb)?;
        }
    }
    let service = ScoringService::deploy(
        &store,
        choice,
        ScoringConfig { min_improvement, ..Default::default() },
    )
    .map_err(|e| CliError::Usage(e.to_string()))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>15} {:>16} {:>9} {:>9}",
        "job", "requested", "pred. runtime", "optimal tokens", "saving", "tier"
    );
    let mut total_requested = 0.0;
    let mut total_optimal = 0.0;
    for job in &jobs {
        let response = service.score(job);
        // Automatic mode is configured above, but the response carries the
        // optimum either way.
        let tokens = match response.decision {
            AllocationDecision::Automatic { tokens } => tokens,
            AllocationDecision::ShowCurve { .. } => response.optimal_tokens,
        };
        total_requested += job.requested_tokens as f64;
        total_optimal += tokens as f64;
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>14.0}s {:>16} {:>8.0}% {:>9}",
            job.id,
            job.requested_tokens,
            response.predicted_runtime_at_request,
            tokens,
            100.0 * (1.0 - tokens as f64 / job.requested_tokens as f64),
            format!("{:?}", response.served_tier).to_lowercase(),
        );
    }
    let _ = writeln!(
        out,
        "\ntotal: {total_requested:.0} requested -> {total_optimal:.0} optimal ({:.0}% saved)",
        100.0 * (1.0 - total_optimal / total_requested.max(1.0))
    );
    Ok(out)
}

/// `tasq flight --workload <file> [--faults none|mild|production|adversarial]
///  [--sample N] [--seed N]`
///
/// Re-executes a sample of the workload at 100/80/60/20% of each job's
/// request under the chosen fault-injection preset, then reports recovery
/// statistics and how many jobs survive the anomaly filters.
pub fn flight(args: &[String]) -> Result<String, CliError> {
    let opts = Options::parse(args, &["workload", "faults", "sample", "seed"])?;
    let jobs = read_workload(opts.required("workload")?)?;
    let preset = opts.get("faults").unwrap_or("none");
    let faults = FaultPlan::from_name(preset).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown --faults `{preset}` (expected one of {})",
            FaultPlan::PRESET_NAMES.join("|")
        ))
    })?;
    let sample = opts.number::<usize>("sample", 10)?;
    let seed = opts.number::<u64>("seed", 0)?;

    // Under the heavier presets a crash burst re-queues many retries at
    // once; decorrelated jitter fans the backoffs out instead of letting
    // them land as a synchronized retry storm (the draw is a pure hash,
    // so flights stay deterministic given the seed).
    let recovery = match preset {
        "production" | "adversarial" => {
            RecoveryPolicy { retry_jitter: 0.5, ..Default::default() }
        }
        _ => RecoveryPolicy::default(),
    };
    let config =
        FlightConfig { noise: NoiseModel::mild(), faults, seed, recovery, ..Default::default() };
    let mut flighted = Vec::new();
    let mut dropped = 0usize;
    for job in jobs.iter().take(sample) {
        match flight_job(job, job.requested_tokens, &config) {
            Ok(fj) => flighted.push(fj),
            Err(_) => dropped += 1,
        }
    }

    // When span collection is on (`--trace-out`), run one sampled job
    // through the traced executor so the export carries the simulator's
    // virtual-time track alongside the wall-clock spans.
    if tasq_obs::collect_enabled() {
        if let Some(job) = jobs.first() {
            let graph = scope_sim::StageGraph::from_plan(&job.plan, job.seed);
            let mut trace = scope_sim::ExecTrace::new();
            let _ = scope_sim::Executor::new(graph).run_traced(
                job.requested_tokens.max(1),
                &scope_sim::ExecutionConfig::default(),
                &mut trace,
            );
            crate::obs::stash_sim_trace(trace);
        }
    }

    let mut crashes = 0u32;
    let mut retries = 0u32;
    let mut preemptions = 0u32;
    let mut stragglers = 0u32;
    let mut spec_wins = 0u32;
    let mut waste = 0.0f64;
    let mut executions = 0usize;
    for fj in &flighted {
        for e in &fj.executions {
            crashes += e.faults.task_crashes;
            retries += e.faults.task_retries;
            preemptions += e.faults.preemptions;
            stragglers += e.faults.straggler_tasks;
            spec_wins += e.faults.speculative_wins;
            waste += e.faults.wasted_token_seconds;
            executions += 1;
        }
    }
    let flown = flighted.len();
    let clean = filter_non_anomalous(flighted, 0.10);

    let mut out = String::new();
    let _ = writeln!(out, "fault preset: {preset}");
    let _ = writeln!(
        out,
        "flighted {flown}/{} sampled jobs ({executions} executions), {dropped} dropped \
         after retry exhaustion",
        sample.min(jobs.len())
    );
    let _ = writeln!(
        out,
        "faults injected: {crashes} crashes, {retries} retries, {preemptions} preemptions, \
         {stragglers} stragglers, {spec_wins} speculative wins"
    );
    let _ = writeln!(out, "wasted token-seconds: {waste:.0}");
    let _ = writeln!(out, "{}/{flown} jobs pass the anomaly filters", clean.len());
    Ok(out)
}

fn parse_model_choice(raw: &str) -> Result<ModelChoice, CliError> {
    match raw {
        "nn" => Ok(ModelChoice::Nn),
        "xgb-ss" => Ok(ModelChoice::XgboostSs),
        "xgb-pl" => Ok(ModelChoice::XgboostPl),
        other => Err(CliError::Usage(format!("unknown --model {other}"))),
    }
}

/// Build a serving registry either from on-disk artifacts or — when no
/// model dir is given — by training quick in-memory models on the
/// workload itself (good enough to exercise the serving stack).
fn build_registry(
    jobs: &[Job],
    model_dir: Option<&str>,
    choice: ModelChoice,
) -> Result<ModelRegistry, CliError> {
    let store = ModelStore::new();
    match model_dir {
        Some(dir) => {
            let disk = DiskModelStore::open(dir)?;
            match choice {
                ModelChoice::Nn => {
                    let nn: tasq::models::NnPcc = disk.load_latest(NN_MODEL_NAME).map_err(
                        |e| CliError::Usage(format!("no NN artifact in model dir: {e}")),
                    )?;
                    store.register(NN_MODEL_NAME, &nn)?;
                }
                ModelChoice::XgboostSs | ModelChoice::XgboostPl => {
                    let xgb: tasq::models::XgbRuntime = disk.load_latest(XGB_MODEL_NAME).map_err(
                        |e| CliError::Usage(format!("no XGBoost artifact in model dir: {e}")),
                    )?;
                    store.register(XGB_MODEL_NAME, &xgb)?;
                }
            }
        }
        None => {
            let repo = JobRepository::new();
            repo.ingest(jobs.to_vec());
            TasqPipeline::new(PipelineConfig {
                nn: NnTrainConfig { epochs: 10, ..Default::default() },
                xgb: XgbTrainConfig { num_rounds: 20, ..Default::default() },
                ..Default::default()
            })
            .train(&repo, &store)?;
        }
    }
    ModelRegistry::deploy(&store, choice, ScoringConfig::default())
        .map_err(|e| CliError::Usage(e.to_string()))
}

/// Push a request stream through a server with a bounded in-flight window
/// (and optional token-bucket pacing at `qps`), returning the wall-clock
/// time and per-path counts of `(cache, model, shed, rejected)`. The
/// achieved rate is `requests / elapsed`; callers record it next to the
/// target so a pacer that can't keep up is visible in the report.
fn drive(
    server: &ScoringServer,
    traffic: Vec<Job>,
    qps: f64,
) -> (Duration, (u64, u64, u64, u64)) {
    let mut counts = (0u64, 0u64, 0u64, 0u64);
    let mut settle = |served: Option<tasq_serve::ServedResponse>| {
        if let Some(served) = served {
            match served.via {
                ServedVia::Cache => counts.0 += 1,
                ServedVia::Model => counts.1 += 1,
                ServedVia::Shed => counts.2 += 1,
            }
        }
    };
    // Burst of one: a paced run emits at a steady cadence rather than
    // slamming an accumulated backlog after any stall.
    let mut pacer =
        if qps > 0.0 { TokenBucket::new(qps, 1.0) } else { TokenBucket::unlimited() };
    let start = Instant::now();
    let mut window: VecDeque<tasq_serve::Ticket> = VecDeque::new();
    for job in traffic {
        pacer.acquire();
        if window.len() >= 64 {
            if let Some(ticket) = window.pop_front() {
                settle(ticket.wait());
            }
        }
        match server.submit(job) {
            Ok(ticket) => window.push_back(ticket),
            Err(_) => counts.3 += 1,
        }
    }
    for ticket in window {
        settle(ticket.wait());
    }
    (start.elapsed(), counts)
}

/// `tasq serve --workload <file> [--model-dir <dir>] [--model ...]
///  [--workers N] [--max-batch N] [--max-delay-us N] [--cache on|off]
///  [--requests N] [--repeat FRAC] [--seed N]
///  [--listen <addr>] [--shards N] [--deadline-ms N] [--autoscale on|off]
///  [--min-workers N] [--max-workers N] [--scale-up FRAC] [--scale-down FRAC]
///  [--cooldown-secs SECS]`
///
/// One-shot embedding of the concurrent scoring server: replays the
/// workload as recurring-job traffic through the full serving stack
/// (signature cache, micro-batching worker pool, admission control) and
/// reports where each request was answered.
///
/// With `--listen <addr>` the command instead becomes a real network
/// server (`tasq-net`): it prints `listening on <addr>` once bound (the
/// handshake a parent process reads to discover an ephemeral port),
/// serves HTTP/1.1 and binary-framed scoring traffic until a `POST
/// /drain` arrives over the wire, then prints the drained stats as one
/// JSON line.
pub fn serve(args: &[String]) -> Result<String, CliError> {
    let opts = Options::parse(
        args,
        &[
            "workload", "model-dir", "model", "workers", "max-batch", "max-delay-us", "cache",
            "requests", "repeat", "seed", "listen", "shards", "deadline-ms", "autoscale",
            "min-workers", "max-workers", "scale-up", "scale-down", "cooldown-secs", "burn-up",
        ],
    )?;
    let jobs = read_workload(opts.required("workload")?)?;
    let choice = parse_model_choice(opts.get("model").unwrap_or("nn"))?;
    let cache_enabled = match opts.get("cache").unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => return Err(CliError::Usage(format!("--cache must be on|off, got {other}"))),
    };
    let auto_scaling = match opts.get("autoscale").unwrap_or("off") {
        "on" => true,
        "off" => false,
        other => return Err(CliError::Usage(format!("--autoscale must be on|off, got {other}"))),
    };
    let config = ServeConfig {
        workers: opts.number::<usize>("workers", 4)?,
        max_batch: opts.number::<usize>("max-batch", 16)?,
        max_delay: Duration::from_micros(opts.number::<u64>("max-delay-us", 500)?),
        cache: CacheConfig { enabled: cache_enabled, ..Default::default() },
        scaling: ScalingConfig {
            auto_scaling,
            min_workers: opts.number::<usize>("min-workers", 1)?,
            max_workers: opts.number::<usize>("max-workers", 8)?,
            scale_up_threshold: opts.number::<f64>("scale-up", 0.75)?,
            scale_down_threshold: opts.number::<f64>("scale-down", 0.20)?,
            cooldown_secs: opts.number::<f64>("cooldown-secs", 5.0)?,
            burn_up_threshold: opts.number::<f64>("burn-up", 0.0)?,
        },
        ..Default::default()
    };
    let requests = opts.number::<usize>("requests", jobs.len().max(1) * 4)?;
    let repeat = opts.number::<f64>("repeat", 0.8)?;
    let seed = opts.number::<u64>("seed", 0)?;

    let registry = build_registry(&jobs, opts.get("model-dir"), choice)?;
    let workers = config.workers;
    let server = ScoringServer::start(std::sync::Arc::new(registry), config);

    if let Some(listen) = opts.get("listen") {
        let net_config = NetConfig {
            shards: opts.number::<usize>("shards", 2)?.max(1),
            deadline: match opts.number::<u64>("deadline-ms", 0)? {
                0 => None,
                ms => Some(Duration::from_millis(ms)),
            },
            ..Default::default()
        };
        let net = NetServer::bind(listen, net_config, server)?;
        // Handshake line: a parent that spawned us with --listen
        // 127.0.0.1:0 reads the resolved address from this exact prefix.
        println!("listening on {}", net.local_addr());
        let _ = std::io::Write::flush(&mut std::io::stdout());
        net.wait_for_drain();
        let stats = net.shutdown();
        return Ok(format!(
            "{{\"submitted\":{},\"completed\":{},\"cache_hits\":{},\"shed\":{},\
             \"rejected\":{},\"worker_lost\":{},\"deadline_timeouts\":{},\"resolved\":{},\
             \"p50_us\":{:.1},\"p99_us\":{:.1},\"p999_us\":{:.1}}}\n",
            stats.submitted,
            stats.completed,
            stats.cache_hits,
            stats.shed,
            stats.rejected,
            stats.worker_lost,
            stats.deadline_timeouts,
            stats.resolved(),
            stats.latency.p50_us,
            stats.latency.p99_us,
            stats.latency.p999_us,
        ));
    }
    let traffic =
        replay_traffic(&jobs, &TrafficConfig { requests, repeat_fraction: repeat, seed });
    let (elapsed, (cache_hits, model, shed, rejected)) = drive(&server, traffic, 0.0);
    let stats = server.shutdown();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "served {} requests through {workers} workers in {:.1} ms ({:.0} req/s)",
        stats.completed,
        elapsed.as_secs_f64() * 1e3,
        stats.completed as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    let _ = writeln!(
        out,
        "paths: {cache_hits} cache, {model} model, {shed} shed, {rejected} rejected"
    );
    let _ = writeln!(
        out,
        "latency us: p50 {:.1}, p95 {:.1}, p99 {:.1}, p99.9 {:.1} (mean {:.0})",
        stats.latency.p50_us,
        stats.latency.p95_us,
        stats.latency.p99_us,
        stats.latency.p999_us,
        stats.latency.mean_us
    );
    let _ = writeln!(
        out,
        "batches: {} (mean size {:.2}), peak queue depth {}",
        stats.batches,
        stats.mean_batch_size(),
        stats.peak_queue_depth
    );
    let _ = writeln!(
        out,
        "cache: {} hits / {} misses ({:.0}% hit rate), {} evictions, {} resident",
        stats.cache.hits,
        stats.cache.misses,
        100.0 * stats.cache.hit_rate(),
        stats.cache.evictions,
        stats.cache.entries
    );
    let _ = writeln!(out, "model generation: {}", stats.generation);
    stats.publish(tasq_obs::Registry::global());
    Ok(out)
}

/// One persistent wire connection in either framing.
enum WireClient {
    Http(HttpClient),
    Binary(BinaryClient),
}

impl WireClient {
    fn connect(mode: &str, addr: &str) -> Result<Self, CliError> {
        let client = match mode {
            "http" => WireClient::Http(HttpClient::connect(addr)?),
            "binary" => WireClient::Binary(BinaryClient::connect(addr)?),
            other => {
                return Err(CliError::Usage(format!("--mode must be http|binary, got {other}")))
            }
        };
        match &client {
            WireClient::Http(c) => c.set_timeout(Duration::from_secs(60))?,
            WireClient::Binary(c) => c.set_timeout(Duration::from_secs(60))?,
        }
        Ok(client)
    }

    /// Score carrying `ctx` on the wire (a `traceparent` header or a
    /// binary frame trace field); an inactive context sends the plain,
    /// pre-tracing encoding.
    fn score_traced(
        &mut self,
        job: &Job,
        ctx: tasq_obs::TraceContext,
    ) -> Result<ScoreOutcome, CliError> {
        Ok(match self {
            WireClient::Http(c) => c.score_traced(job, ctx)?,
            WireClient::Binary(c) => c.score_traced(job, ctx)?,
        })
    }
}

/// `tasq netgen --addr <host:port> --workload <file> [--requests N]
///  [--repeat FRAC] [--qps N] [--seed N] [--mode http|binary]
///  [--connections N]`
///
/// Networked load generator: replays recurring-job traffic against a
/// `serve --listen` process over persistent connections (round-robin
/// across `--connections`), optionally token-bucket paced at `--qps`,
/// and prints a one-line JSON report so a parent process (the `loadgen
/// --networked` orchestrator) can aggregate across client processes.
pub fn netgen(args: &[String]) -> Result<String, CliError> {
    let opts = Options::parse(
        args,
        &["addr", "workload", "requests", "repeat", "qps", "seed", "mode", "connections"],
    )?;
    let addr = opts.required("addr")?;
    let jobs = read_workload(opts.required("workload")?)?;
    let requests = opts.number::<usize>("requests", 1000)?;
    let repeat = opts.number::<f64>("repeat", 0.8)?;
    let qps = opts.number::<f64>("qps", 0.0)?;
    let seed = opts.number::<u64>("seed", 0)?;
    let mode = opts.get("mode").unwrap_or("binary");
    let connections = opts.number::<usize>("connections", 1)?.max(1);

    let traffic =
        replay_traffic(&jobs, &TrafficConfig { requests, repeat_fraction: repeat, seed });
    let mut conns = Vec::with_capacity(connections);
    for _ in 0..connections {
        conns.push(WireClient::connect(mode, addr)?);
    }

    let latency = tasq_obs::Histogram::new();
    let (mut ok, mut rejected, mut traced) = (0u64, 0u64, 0u64);
    let mut pacer =
        if qps > 0.0 { TokenBucket::new(qps, 1.0) } else { TokenBucket::unlimited() };
    let start = Instant::now();
    for (i, job) in traffic.iter().enumerate() {
        pacer.acquire();
        // With span collection on (`--trace-out`) every request mints a
        // sampled context, carried on the wire so the server's spans join
        // this client's trace; otherwise the wire stays byte-identical to
        // the untraced encoding.
        let ctx = if tasq_obs::collect_enabled() {
            tasq_obs::TraceContext::mint(true)
        } else {
            tasq_obs::TraceContext::NONE
        };
        let _span = if ctx.sampled {
            traced += 1;
            Some(tasq_obs::span(
                tasq_obs::Level::Debug,
                "netgen_request",
                &[
                    ("job", tasq_obs::FieldValue::U64(job.id)),
                    ("trace", tasq_obs::FieldValue::TraceId(ctx.trace_id)),
                ],
            ))
        } else {
            None
        };
        let sent = Instant::now();
        match conns[i % connections].score_traced(job, ctx)? {
            ScoreOutcome::Ok(_) => ok += 1,
            ScoreOutcome::Rejected(_) => rejected += 1,
        }
        if ctx.is_active() {
            latency.record_traced(
                sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
                ctx.trace_id,
            );
        } else {
            latency.record(sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        }
    }
    let elapsed = start.elapsed();
    let achieved = (ok + rejected) as f64 / elapsed.as_secs_f64().max(1e-9);
    Ok(format!(
        "{{\"mode\":\"{mode}\",\"requests\":{requests},\"ok\":{ok},\"rejected\":{rejected},\
         \"traced\":{traced},\
         \"connections\":{connections},\"elapsed_ms\":{:.3},\"qps_target\":{qps},\
         \"achieved_rps\":{achieved:.1},\"p50_us\":{:.1},\"p99_us\":{:.1},\"mean_us\":{:.1}}}\n",
        elapsed.as_secs_f64() * 1e3,
        latency.quantile(0.50),
        latency.quantile(0.99),
        latency.mean(),
    ))
}

/// Aggregated result of one networked benchmark round (one server
/// process count).
struct NetBenchRound {
    server_procs: usize,
    clients: usize,
    mode: String,
    requests: u64,
    ok: u64,
    rejected: u64,
    aggregate_rps: f64,
    p50_us: f64,
    p99_us: f64,
    /// Entries retained across the servers' `/debug/slowest` endpoints.
    slowest_entries: u64,
    /// Largest fast-window burn rate reported by any server's `/slo`.
    slo_max_fast_burn: f64,
}

impl NetBenchRound {
    fn json(&self) -> String {
        format!(
            "    {{\"server_procs\": {}, \"clients\": {}, \"mode\": \"{}\", \
             \"requests\": {}, \"ok\": {}, \"rejected\": {}, \"aggregate_rps\": {:.1}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"slowest_entries\": {}, \
             \"slo_max_fast_burn\": {:.4}}}",
            self.server_procs,
            self.clients,
            self.mode,
            self.requests,
            self.ok,
            self.rejected,
            self.aggregate_rps,
            self.p50_us,
            self.p99_us,
            self.slowest_entries,
            self.slo_max_fast_burn,
        )
    }
}

/// Read lines from a spawned server's stdout until the `listening on `
/// handshake appears, returning the resolved address.
fn read_handshake(reader: &mut std::io::BufReader<std::process::ChildStdout>) -> Result<String, CliError> {
    use std::io::BufRead as _;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(CliError::Usage(
                "server process exited before printing its listening address".to_string(),
            ));
        }
        if let Some(addr) = line.trim().strip_prefix("listening on ") {
            return Ok(addr.to_string());
        }
    }
}

fn json_f64(value: &tasq_obs::json::JsonValue, key: &str) -> Result<f64, CliError> {
    value
        .get(key)
        .and_then(|v| v.as_f64())
        .ok_or_else(|| CliError::Usage(format!("netgen report missing numeric `{key}`")))
}

/// One multi-process networked benchmark round: spawn `server_procs`
/// copies of this binary as `serve --listen 127.0.0.1:0`, read their
/// handshakes, fan `clients` netgen processes out across them, drain the
/// servers over the wire, and aggregate the per-client JSON reports.
#[allow(clippy::too_many_arguments)]
fn networked_round(
    workload: &str,
    model_dir: Option<&str>,
    server_procs: usize,
    clients: usize,
    requests: usize,
    repeat: f64,
    qps: f64,
    seed: u64,
    mode: &str,
) -> Result<NetBenchRound, CliError> {
    let exe = std::env::current_exe()?;
    let mut servers = Vec::with_capacity(server_procs);
    let mut addrs = Vec::with_capacity(server_procs);
    for _ in 0..server_procs {
        let mut cmd = std::process::Command::new(&exe);
        cmd.args([
            "serve", "--workload", workload, "--listen", "127.0.0.1:0", "--workers", "2",
            "--shards", "2",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null());
        if let Some(dir) = model_dir {
            cmd.args(["--model-dir", dir]);
        }
        let mut child = cmd.spawn()?;
        let stdout = child.stdout.take().ok_or_else(|| {
            CliError::Usage("server process spawned without a captured stdout".to_string())
        })?;
        let mut reader = std::io::BufReader::new(stdout);
        let addr = read_handshake(&mut reader)?;
        addrs.push(addr);
        servers.push((child, reader));
    }

    let per_client = (requests / clients.max(1)).max(1);
    let per_client_qps = if qps > 0.0 { qps / clients.max(1) as f64 } else { 0.0 };
    let mut client_procs = Vec::with_capacity(clients);
    for c in 0..clients {
        let child = std::process::Command::new(&exe)
            .args([
                "netgen",
                "--addr",
                &addrs[c % addrs.len()],
                "--workload",
                workload,
                "--requests",
                &per_client.to_string(),
                "--repeat",
                &repeat.to_string(),
                "--qps",
                &per_client_qps.to_string(),
                "--seed",
                &(seed ^ (c as u64 + 1)).to_string(),
                "--mode",
                mode,
                "--connections",
                "2",
            ])
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()?;
        client_procs.push(child);
    }

    let (mut total, mut ok, mut rejected) = (0u64, 0u64, 0u64);
    let mut aggregate_rps = 0.0f64;
    let (mut p50_weighted, mut p99_max) = (0.0f64, 0.0f64);
    for child in client_procs {
        let out = child.wait_with_output()?;
        if !out.status.success() {
            return Err(CliError::Usage(format!(
                "netgen client process failed with {}",
                out.status
            )));
        }
        let text = String::from_utf8_lossy(&out.stdout);
        let line = text
            .lines()
            .find(|l| l.trim_start().starts_with('{'))
            .ok_or_else(|| CliError::Usage("netgen client printed no JSON report".to_string()))?;
        let report = tasq_obs::json::parse(line)
            .map_err(|e| CliError::Usage(format!("bad netgen report: {e}")))?;
        let client_requests = json_f64(&report, "requests")? as u64;
        total += client_requests;
        ok += json_f64(&report, "ok")? as u64;
        rejected += json_f64(&report, "rejected")? as u64;
        aggregate_rps += json_f64(&report, "achieved_rps")?;
        p50_weighted += json_f64(&report, "p50_us")? * client_requests as f64;
        p99_max = p99_max.max(json_f64(&report, "p99_us")?);
    }

    // Pull each server's tail-latency and SLO views, then drain it over
    // the wire (the HTTP control plane works even when the benchmark
    // traffic was binary-framed) and reap it.
    let (mut slowest_entries, mut slo_max_fast_burn) = (0u64, 0.0f64);
    for addr in &addrs {
        let mut control = HttpClient::connect(addr)?;
        control.set_timeout(Duration::from_secs(60))?;
        let slowest = control.request("GET", "/debug/slowest", b"")?;
        if slowest.status == 200 {
            if let Ok(parsed) = tasq_obs::json::parse(&String::from_utf8_lossy(&slowest.body)) {
                slowest_entries += parsed
                    .get("slowest")
                    .and_then(|v| v.as_array())
                    .map(|entries| entries.len() as u64)
                    .unwrap_or(0);
            }
        }
        let slo = control.request("GET", "/slo", b"")?;
        if slo.status == 200 {
            if let Ok(parsed) = tasq_obs::json::parse(&String::from_utf8_lossy(&slo.body)) {
                let burns = parsed
                    .get("objectives")
                    .and_then(|v| v.as_array())
                    .into_iter()
                    .flatten()
                    .filter_map(|objective| objective.get("windows").and_then(|w| w.as_array()))
                    .flatten()
                    .filter(|w| {
                        w.get("window").and_then(|v| v.as_str()) == Some("fast")
                    })
                    .filter_map(|w| w.get("burn_rate").and_then(|v| v.as_f64()));
                for burn in burns {
                    slo_max_fast_burn = slo_max_fast_burn.max(burn);
                }
            }
        }
        let ack = control.request("POST", "/drain", b"")?;
        if ack.status != 200 {
            return Err(CliError::Usage(format!(
                "drain of {addr} answered HTTP {}",
                ack.status
            )));
        }
    }
    for (mut child, mut reader) in servers {
        let mut rest = String::new();
        let _ = std::io::Read::read_to_string(&mut reader, &mut rest);
        let status = child.wait()?;
        if !status.success() {
            return Err(CliError::Usage(format!("server process failed with {status}")));
        }
    }

    Ok(NetBenchRound {
        server_procs,
        clients,
        mode: mode.to_string(),
        requests: total,
        ok,
        rejected,
        aggregate_rps,
        p50_us: p50_weighted / (total.max(1)) as f64,
        p99_us: p99_max,
        slowest_entries,
        slo_max_fast_burn,
    })
}

/// In-flight request depth of the pipelined hot-path client. Deep
/// enough that a wake's worth of responses exercises the coalesced
/// flush, shallow enough to stay inside default socket buffers.
const HOT_PATH_DEPTH: usize = 32;

/// Result of the syscall-lean hot-path benchmark: the same pipelined
/// binary traffic against two in-process servers that differ only in
/// `coalesce_writes`, so the syscall deltas isolate the `writev` win.
struct HotPathReport {
    requests: u64,
    rps_write: f64,
    rps_writev: f64,
    p50_us: f64,
    p99_us: f64,
    syscalls_per_request_write: f64,
    syscalls_per_request_writev: f64,
    fastpath_hits: u64,
}

impl HotPathReport {
    fn json(&self) -> String {
        format!(
            "  \"hot_path\": {{\n    \"requests\": {},\n    \"pipeline_depth\": {HOT_PATH_DEPTH},\n    \
             \"repeat_fraction\": 0.9,\n    \"rps_write\": {:.1},\n    \"rps_writev\": {:.1},\n    \
             \"p50_us\": {:.1},\n    \"p99_us\": {:.1},\n    \
             \"syscalls_per_request_write\": {:.3},\n    \
             \"syscalls_per_request_writev\": {:.3},\n    \"fastpath_hits\": {}\n  }}",
            self.requests,
            self.rps_write,
            self.rps_writev,
            self.p50_us,
            self.p99_us,
            self.syscalls_per_request_write,
            self.syscalls_per_request_writev,
            self.fastpath_hits,
        )
    }
}

/// Drive one hot-path arm: a single-shard in-process [`NetServer`]
/// (`coalesce` selects one-`write`-per-buffer vs one gathered `writev`
/// per flush), a pipelined binary client [`HOT_PATH_DEPTH`] requests
/// deep over one persistent connection, and `serial` depth-1 requests
/// for honest latency numbers. The syscall figure is the delta of the
/// process-global [`tasq_net::syscall_counters`] across the pipelined
/// window divided by its request count — only the server's event loop
/// issues raw syscalls, so the delta is exactly its kernel crossings.
fn hot_path_arm(
    registry: &std::sync::Arc<ModelRegistry>,
    traffic: &[Job],
    coalesce: bool,
    serial: usize,
) -> Result<(f64, f64, tasq_obs::Histogram, ServerStatsSnapshot), CliError> {
    use std::io::Write as _;
    let server = ScoringServer::start(
        registry.clone(),
        ServeConfig {
            workers: 1,
            cache: CacheConfig { enabled: true, ..Default::default() },
            ..Default::default()
        },
    );
    let net = NetServer::bind(
        "127.0.0.1:0",
        NetConfig { shards: 1, coalesce_writes: coalesce, ..Default::default() },
        server,
    )?;
    let addr = net.local_addr().to_string();

    // Pre-encode every request frame so client-side encoding stays out
    // of the measured window.
    let mut frames: Vec<Vec<u8>> = Vec::with_capacity(traffic.len());
    for job in traffic {
        let payload = codec::to_bytes(job)?;
        let mut wire = Vec::with_capacity(payload.len() + 4);
        tasq_net::frame::write_request_frame(&mut wire, &payload);
        frames.push(wire);
    }

    let mut stream = std::net::TcpStream::connect(&addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.write_all(&[tasq_net::BINARY_PREAMBLE])?;

    // One warm-up exchange so the accept/preamble syscalls land outside
    // the measured window (and the first signature enters the cache).
    let mut rbuf: Vec<u8> = Vec::new();
    exchange_pipelined(&mut stream, &frames[..1], &mut rbuf)?;

    let counters = tasq_net::syscall_counters();
    let before = counters.total();
    let start = Instant::now();
    let mut answered = 0u64;
    for chunk in frames.chunks(HOT_PATH_DEPTH) {
        answered += exchange_pipelined(&mut stream, chunk, &mut rbuf)?;
    }
    let elapsed = start.elapsed();
    let syscalls = (counters.total() - before) as f64 / frames.len().max(1) as f64;
    let rps = answered as f64 / elapsed.as_secs_f64().max(1e-9);
    drop(stream);

    // Serial depth-1 pass: per-request wire latency without pipelining.
    let latency = tasq_obs::Histogram::new();
    let mut client = BinaryClient::connect(&addr)?;
    client.set_timeout(Duration::from_secs(60))?;
    for job in traffic.iter().take(serial) {
        let sent = Instant::now();
        let _ = client.score(job)?;
        latency.record(sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
    }
    drop(client);

    net.trigger_drain();
    net.wait_for_drain();
    Ok((rps, syscalls, latency, net.shutdown()))
}

/// Write `chunk`'s request frames in one burst, then read until every
/// response frame came back. Returns the number answered `Ok`+rejected.
fn exchange_pipelined(
    stream: &mut std::net::TcpStream,
    chunk: &[Vec<u8>],
    rbuf: &mut Vec<u8>,
) -> Result<u64, CliError> {
    use std::io::{Read as _, Write as _};
    use tasq_net::frame::FrameResponseParse;
    let mut burst = Vec::with_capacity(chunk.iter().map(Vec::len).sum());
    for frame in chunk {
        burst.extend_from_slice(frame);
    }
    stream.write_all(&burst)?;
    let mut answered = 0u64;
    let mut consumed = 0usize;
    rbuf.clear();
    while (answered as usize) < chunk.len() {
        match tasq_net::frame::parse_response_frame(rbuf, consumed) {
            FrameResponseParse::Complete(_, used) => {
                consumed += used;
                answered += 1;
            }
            FrameResponseParse::NeedMore => {
                let mut buf = [0u8; 16384];
                let n = stream.read(&mut buf)?;
                if n == 0 {
                    return Err(CliError::Usage(
                        "server closed the connection mid-benchmark".to_string(),
                    ));
                }
                rbuf.extend_from_slice(&buf[..n]);
            }
            FrameResponseParse::Malformed(why) => {
                return Err(CliError::Usage(format!("malformed response frame: {why}")))
            }
        }
    }
    Ok(answered)
}

/// Both hot-path arms over the same repeat-heavy traffic, one shared
/// registry. The `write` arm runs first so the cache state entering
/// each pipelined window is identical (each arm has its own server and
/// therefore its own cold cache).
fn hot_path_report(
    jobs: &[Job],
    model_dir: Option<&str>,
    requests: usize,
    seed: u64,
) -> Result<HotPathReport, CliError> {
    let registry =
        std::sync::Arc::new(build_registry(jobs, model_dir, ModelChoice::Nn)?);
    let traffic = replay_traffic(
        jobs,
        &TrafficConfig { requests, repeat_fraction: 0.9, seed: seed ^ 0x5ca1ab1e },
    );
    let serial = requests.min(200);
    let (rps_write, sys_write, _, _) = hot_path_arm(&registry, &traffic, false, 0)?;
    let (rps_writev, sys_writev, latency, stats) =
        hot_path_arm(&registry, &traffic, true, serial)?;
    Ok(HotPathReport {
        requests: traffic.len() as u64,
        rps_write,
        rps_writev,
        p50_us: latency.quantile(0.50),
        p99_us: latency.quantile(0.99),
        syscalls_per_request_write: sys_write,
        syscalls_per_request_writev: sys_writev,
        fastpath_hits: stats.fastpath_hits,
    })
}

/// The `latency_attribution` section of BENCH_serve.json: per-segment
/// p50/p99 plus each segment's share of total end-to-end time, read from
/// the process-global registry (which every in-process server feeds).
/// The serve-side segments are contiguous per request, so their sums
/// must reproduce `serve_latency_us`'s sum — `sum_ratio` is that check
/// (slightly under 1.0 is expected: each segment truncates to whole µs).
fn latency_attribution_json() -> String {
    let r = tasq_obs::Registry::global();
    let total = r
        .histogram("serve_latency_us", "end-to-end request latency in microseconds")
        .sum();
    let segments = [
        ("fastpath_probe", "segment_fastpath_probe_us"),
        ("queue_wait", "segment_queue_wait_us"),
        ("batch_wait", "segment_batch_wait_us"),
        ("score_primary", "segment_score_primary_us"),
        ("score_fallback", "segment_score_fallback_us"),
        ("score_analytic", "segment_score_analytic_us"),
        ("flush", "segment_flush_us"),
    ];
    let mut segment_sum = 0u64;
    let mut parts = Vec::with_capacity(segments.len());
    for (label, name) in segments {
        let h = r.histogram(name, "");
        segment_sum += h.sum();
        parts.push(format!(
            "    \"{label}\": {{\"count\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
             \"share\": {:.4}}}",
            h.count(),
            h.quantile(0.50),
            h.quantile(0.99),
            h.sum() as f64 / total.max(1) as f64,
        ));
    }
    let ratio = segment_sum as f64 / total.max(1) as f64;
    format!(
        "  \"latency_attribution\": {{\n{},\n    \"segment_sum_us\": {segment_sum},\n    \
         \"end_to_end_sum_us\": {total},\n    \"sum_ratio\": {ratio:.4},\n    \
         \"sum_check\": \"{}\"\n  }}",
        parts.join(",\n"),
        if (0.90..=1.02).contains(&ratio) { "ok" } else { "off" },
    )
}

fn phase_json(label: &str, elapsed: Duration, stats: &ServerStatsSnapshot) -> String {
    format!(
        "  \"{label}\": {{\n    \"elapsed_ms\": {:.3},\n    \"throughput_rps\": {:.1},\n    \
         \"p50_us\": {:.1},\n    \"p95_us\": {:.1},\n    \"p99_us\": {:.1},\n    \"mean_us\": {:.1},\n    \
         \"mean_batch_size\": {:.2},\n    \"cache_hit_rate\": {:.4}\n  }}",
        elapsed.as_secs_f64() * 1e3,
        stats.completed as f64 / elapsed.as_secs_f64().max(1e-9),
        stats.latency.p50_us,
        stats.latency.p95_us,
        stats.latency.p99_us,
        stats.latency.mean_us,
        stats.mean_batch_size(),
        stats.cache.hit_rate(),
    )
}

/// `tasq loadgen --workload <file> [--model-dir <dir>] [--requests N]
///  [--repeat FRAC] [--qps N] [--out <json>] [--seed N]
///  [--networked on|off] [--server-procs N,M,...] [--clients N]
///  [--mode http|binary]`
///
/// The serving benchmark: replays recurring-job traffic through the
/// server twice (signature cache off, then on), runs two overload bursts
/// against deliberately tiny queues (one sized to reject, one to shed),
/// and writes the whole report as JSON (default `BENCH_serve.json`).
///
/// With `--networked on` it additionally benchmarks over real TCP: for
/// each count in `--server-procs` it spawns that many `serve --listen`
/// copies of this binary, fans `--clients` `netgen` processes out across
/// them, drains the servers over the wire, and appends the aggregated
/// per-round numbers as the report's `networked` section.
pub fn loadgen(args: &[String]) -> Result<String, CliError> {
    let opts = Options::parse(
        args,
        &[
            "workload", "model-dir", "requests", "repeat", "qps", "out", "seed", "networked",
            "server-procs", "clients", "mode",
        ],
    )?;
    let jobs = read_workload(opts.required("workload")?)?;
    let requests = opts.number::<usize>("requests", 2000)?;
    let repeat = opts.number::<f64>("repeat", 0.8)?;
    let qps = opts.number::<f64>("qps", 0.0)?;
    let out_path = opts.get("out").unwrap_or("BENCH_serve.json").to_string();
    let seed = opts.number::<u64>("seed", 0)?;
    let model_dir = opts.get("model-dir");
    let networked = match opts.get("networked").unwrap_or("off") {
        "on" => true,
        "off" => false,
        other => {
            return Err(CliError::Usage(format!("--networked must be on|off, got {other}")))
        }
    };
    let server_procs: Vec<usize> = opts
        .get("server-procs")
        .unwrap_or("1,2")
        .split(',')
        .map(|s| {
            s.trim().parse::<usize>().map_err(|_| {
                CliError::Usage(format!("--server-procs must be comma-separated counts, got {s}"))
            })
        })
        .collect::<Result<_, _>>()?;
    let clients = opts.number::<usize>("clients", 2)?.max(1);
    let net_mode = opts.get("mode").unwrap_or("binary");

    let traffic =
        replay_traffic(&jobs, &TrafficConfig { requests, repeat_fraction: repeat, seed });

    // Cached-vs-uncached comparison: one worker so the uncached run
    // reflects the true per-request inference cost.
    let measure = |enabled: bool| -> Result<(Duration, ServerStatsSnapshot, String), CliError> {
        let registry = build_registry(&jobs, model_dir, ModelChoice::Nn)?;
        let server = ScoringServer::start(
            std::sync::Arc::new(registry),
            ServeConfig {
                workers: 1,
                cache: CacheConfig { enabled, ..Default::default() },
                ..Default::default()
            },
        );
        let (elapsed, _) = drive(&server, traffic.clone(), qps);
        // The SLO view is read before drain so it reflects the run, not
        // the post-drain idle window.
        let slo = server.slo_json();
        // Drain, don't shut down: the benchmark must count every admitted
        // request, so the server stops accepting and answers its backlog
        // before the stats are read.
        Ok((elapsed, server.drain(), slo))
    };
    let (uncached_elapsed, uncached, _) = measure(false)?;
    let (cached_elapsed, cached, cached_slo) = measure(true)?;
    let speedup = uncached_elapsed.as_secs_f64() / cached_elapsed.as_secs_f64().max(1e-9);

    // Overload bursts: fresh (0%-repeat) traffic into deliberately tiny
    // queues. The first config has no shed band, so the burst must be
    // rejected; the second sheds to the analytic tier below capacity.
    let burst_traffic = replay_traffic(
        &jobs,
        &TrafficConfig { requests: 300, repeat_fraction: 0.0, seed: seed ^ 0xb0b0 },
    );
    let burst = |queue_capacity: usize,
                 shed_watermark: usize|
     -> Result<ServerStatsSnapshot, CliError> {
        let registry = build_registry(&jobs, model_dir, ModelChoice::Nn)?;
        let server = ScoringServer::start(
            std::sync::Arc::new(registry),
            ServeConfig {
                workers: 1,
                max_batch: 2,
                max_delay: Duration::from_micros(100),
                queue_capacity,
                shed_watermark,
                cache: CacheConfig { enabled: false, ..Default::default() },
                ..Default::default()
            },
        );
        let (_, _) = drive(&server, burst_traffic.clone(), 0.0);
        Ok(server.drain())
    };
    let reject_burst = burst(8, 8)?;
    let shed_burst = burst(1024, 4)?;

    // The achieved rate of the paced (cached) run: a token bucket that
    // can't keep up shows as qps_achieved < qps_target in the report
    // rather than silently recording the target as fact.
    let qps_achieved = requests as f64 / cached_elapsed.as_secs_f64().max(1e-9);

    let mut networked_rounds = Vec::new();
    if networked {
        let workload_path = opts.required("workload")?;
        for &procs in &server_procs {
            networked_rounds.push(networked_round(
                workload_path,
                model_dir,
                procs.max(1),
                clients,
                requests,
                repeat,
                qps,
                seed,
                net_mode,
            )?);
        }
    }
    let networked_section = if networked_rounds.is_empty() {
        String::new()
    } else {
        let rounds: Vec<String> = networked_rounds.iter().map(NetBenchRound::json).collect();
        format!(",\n  \"networked\": [\n{}\n  ]", rounds.join(",\n"))
    };

    // The syscall-lean hot path needs the raw-syscall shim; skip the
    // section (rather than fail the whole report) where it's absent.
    let hot_path = if tasq_net::sys::supported() {
        Some(hot_path_report(&jobs, model_dir, requests.min(2000), seed)?)
    } else {
        None
    };
    let hot_path_section =
        hot_path.as_ref().map(|h| format!(",\n{}", h.json())).unwrap_or_default();

    // Attribution reads the process-global registry, so it is computed
    // after every in-process serving phase (cached/uncached, bursts, hot
    // path) has fed its segments.
    let attribution = latency_attribution_json();
    let json = format!(
        "{{\n  \"requests\": {requests},\n  \"repeat_fraction\": {repeat},\n  \
         \"qps_target\": {qps},\n  \"qps_achieved\": {qps_achieved:.1},\n{},\n{},\n  \
         \"speedup\": {speedup:.2},\n{attribution},\n  \"slo\": {cached_slo},\n  \
         \"overload\": {{\n    \"reject_burst\": {{\"submitted\": {}, \"rejected\": {}, \
         \"queue_capacity\": 8, \"peak_queue_depth\": {}}},\n    \
         \"shed_burst\": {{\"submitted\": {}, \"shed\": {}, \"shed_watermark\": 4, \
         \"peak_queue_depth\": {}}}\n  }}{networked_section}{hot_path_section}\n}}\n",
        phase_json("uncached", uncached_elapsed, &uncached),
        phase_json("cached", cached_elapsed, &cached),
        reject_burst.submitted,
        reject_burst.rejected,
        reject_burst.peak_queue_depth,
        shed_burst.submitted,
        shed_burst.shed,
        shed_burst.peak_queue_depth,
    );
    std::fs::write(&out_path, &json)?;

    // Publish the cached-phase snapshot as gauges and dump the whole
    // process-global registry (server counters, cache stats, fault/retry
    // totals) as Prometheus text exposition.
    let registry = tasq_obs::Registry::global();
    cached.publish(registry);

    let mut networked_summary = String::new();
    if let Some(h) = &hot_path {
        let _ = writeln!(
            networked_summary,
            "hot path (pipelined binary, depth {HOT_PATH_DEPTH}): {:.0} req/s writev vs \
             {:.0} req/s write, {:.2} vs {:.2} syscalls/request, {} fastpath hits",
            h.rps_writev,
            h.rps_write,
            h.syscalls_per_request_writev,
            h.syscalls_per_request_write,
            h.fastpath_hits,
        );
    }
    for round in &networked_rounds {
        let _ = writeln!(
            networked_summary,
            "networked: {} server procs x {} clients ({}) -> {:.0} req/s aggregate, \
             p50 {:.0} us, p99 {:.0} us",
            round.server_procs,
            round.clients,
            round.mode,
            round.aggregate_rps,
            round.p50_us,
            round.p99_us,
        );
    }

    Ok(format!(
        "loadgen: {requests} requests at {:.0}% repeat\n\
         uncached: {:.1} ms ({:.0} req/s)\ncached:   {:.1} ms ({:.0} req/s, {:.0}% hit rate)\n\
         speedup: {speedup:.2}x\n\
         overload: {} rejected of {} (reject burst), {} shed of {} (shed burst)\n\
         {networked_summary}wrote {out_path}\n\
         \nmetrics exposition:\n{}",
        repeat * 100.0,
        uncached_elapsed.as_secs_f64() * 1e3,
        uncached.completed as f64 / uncached_elapsed.as_secs_f64().max(1e-9),
        cached_elapsed.as_secs_f64() * 1e3,
        cached.completed as f64 / cached_elapsed.as_secs_f64().max(1e-9),
        100.0 * cached.cache.hit_rate(),
        reject_burst.rejected,
        reject_burst.submitted,
        shed_burst.shed,
        shed_burst.submitted,
        registry.render_prometheus(),
    ))
}

/// One timed run of the offline training pipeline at a given thread count.
struct TrainBenchRun {
    threads: usize,
    generate_ms: f64,
    flight_ms: f64,
    featurize_ms: f64,
    fit_ms: f64,
    total_ms: f64,
    /// Order-sensitive digest of every float the run produced; equal
    /// digests across thread counts prove the parallel pipeline is
    /// bit-identical to the sequential one.
    fingerprint: u64,
}

fn elapsed_ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// Run generate → flight → featurize → fit once on a pool of `threads`
/// workers, timing each phase and fingerprinting every numeric output.
fn run_train_bench(num_jobs: usize, seed: u64, threads: usize, quick: bool) -> TrainBenchRun {
    let pool = tasq_par::Pool::new(threads);
    let run_start = Instant::now();
    let mut fingerprint = 0u64;

    // Phase 1: workload generation (inherently sequential; timed so the
    // per-phase breakdown accounts for all wall time).
    let t = Instant::now();
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs,
        seed,
        ..Default::default()
    })
    .generate();
    let generate_ms = elapsed_ms(t);

    // Phase 2: flight every job over the (allocation × repetition) grid.
    let t = Instant::now();
    let refs: Vec<u32> = jobs.iter().map(|j| j.requested_tokens.max(4)).collect();
    let flight_cfg = FlightConfig {
        noise: NoiseModel::mild(),
        seed,
        repetitions: if quick { 2 } else { 3 },
        ..Default::default()
    };
    let flighted = flight_workload(&jobs, &refs, &flight_cfg, &pool);
    for fj in flighted.iter().flatten() {
        for f in &fj.flights {
            fold_bits(&mut fingerprint, f.runtime_secs.to_bits());
            fold_bits(&mut fingerprint, f.token_seconds.to_bits());
        }
    }
    let flight_ms = elapsed_ms(t);

    // Phase 3: dataset preparation (execution, AREPAS augmentation,
    // featurization, target-PCC fitting), fanned out per job.
    let t = Instant::now();
    let dataset =
        tasq::dataset::Dataset::build_with_pool(&jobs, &tasq::augment::AugmentConfig::default(), &pool);
    for example in &dataset.examples {
        fold_bits(&mut fingerprint, example.observed_runtime.to_bits());
        fold_bits(&mut fingerprint, example.target_pcc.a.to_bits());
        fold_bits(&mut fingerprint, example.target_pcc.b.to_bits());
    }
    let featurize_ms = elapsed_ms(t);

    // Phase 4: model fitting — GBDT with parallel per-feature split
    // search, and k-means with parallel restarts.
    let t = Instant::now();
    let (rows, targets) = dataset.xgb_rows();
    let booster = tasq_ml::gbdt::Booster::train_with_pool(
        &rows,
        &targets,
        &tasq_ml::gbdt::BoosterConfig {
            num_rounds: if quick { 15 } else { 60 },
            ..Default::default()
        },
        &pool,
    );
    for pred in booster.predict(&rows) {
        fold_bits(&mut fingerprint, pred.to_bits());
    }
    let features = tasq_ml::Matrix::from_rows(&dataset.job_feature_rows());
    let km = tasq_ml::kmeans::kmeans_restarts(
        &features,
        &tasq_ml::kmeans::KMeansConfig { k: 5.min(dataset.len().max(1)), ..Default::default() },
        seed,
        if quick { 4 } else { 8 },
        &pool,
    );
    fold_bits(&mut fingerprint, km.inertia.to_bits());
    let fit_ms = elapsed_ms(t);

    TrainBenchRun {
        threads,
        generate_ms,
        flight_ms,
        featurize_ms,
        fit_ms,
        total_ms: elapsed_ms(run_start),
        fingerprint,
    }
}

/// `tasq bench-train [--out <json>] [--jobs N] [--seed N] [--threads N]
///  [--quick true]`
///
/// The offline-training benchmark: runs the end-to-end pipeline
/// (generate → flight → featurize → fit) sequentially and on
/// work-stealing pools of 2 and `--threads` workers, verifies the
/// parallel runs are bit-identical to the sequential one, and writes the
/// timing trajectory as JSON (default `BENCH_train.json`).
pub fn bench_train(args: &[String]) -> Result<String, CliError> {
    let opts = Options::parse(args, &["out", "jobs", "seed", "threads", "quick"])?;
    let quick = matches!(opts.get("quick").unwrap_or("false"), "true" | "1" | "on");
    let out_path = opts.get("out").unwrap_or("BENCH_train.json").to_string();
    let num_jobs = opts.number::<usize>("jobs", if quick { 10 } else { 48 })?;
    let seed = opts.number::<u64>("seed", 0)?;
    let hardware_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let max_threads = opts.number::<usize>("threads", hardware_threads.max(4))?.max(1);

    let mut thread_counts = vec![1usize, 2, max_threads];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    let runs: Vec<TrainBenchRun> = thread_counts
        .iter()
        .map(|&threads| run_train_bench(num_jobs, seed, threads, quick))
        .collect();
    let baseline = &runs[0];
    let bit_identical = runs.iter().all(|r| r.fingerprint == baseline.fingerprint);

    let mut runs_json = String::new();
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            runs_json,
            "    {{\"threads\": {}, \"generate_ms\": {:.3}, \"flight_ms\": {:.3}, \
             \"featurize_ms\": {:.3}, \"fit_ms\": {:.3}, \"total_ms\": {:.3}, \
             \"speedup_vs_sequential\": {:.3}}}{}",
            r.threads,
            r.generate_ms,
            r.flight_ms,
            r.featurize_ms,
            r.fit_ms,
            r.total_ms,
            baseline.total_ms / r.total_ms.max(1e-9),
            if i + 1 < runs.len() { ",\n" } else { "" },
        );
    }
    let json = format!(
        "{{\n  \"benchmark\": \"train-pipeline\",\n  \"jobs\": {num_jobs},\n  \
         \"seed\": {seed},\n  \"quick\": {quick},\n  \
         \"hardware_threads\": {hardware_threads},\n  \"bit_identical\": {bit_identical},\n  \
         \"runs\": [\n{runs_json}\n  ]\n}}\n",
    );
    std::fs::write(&out_path, &json)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench-train: {num_jobs} jobs, seed {seed}, {hardware_threads} hardware thread(s)"
    );
    for r in &runs {
        let _ = writeln!(
            out,
            "  {} thread(s): {:>8.1} ms total (generate {:.1}, flight {:.1}, featurize {:.1}, \
             fit {:.1}) — {:.2}x vs sequential",
            r.threads,
            r.total_ms,
            r.generate_ms,
            r.flight_ms,
            r.featurize_ms,
            r.fit_ms,
            baseline.total_ms / r.total_ms.max(1e-9),
        );
    }
    let _ = writeln!(
        out,
        "parallel output bit-identical to sequential: {bit_identical}"
    );
    let _ = writeln!(out, "wrote {out_path}");
    Ok(out)
}

/// `tasq analyze [--root <dir>] [--mode full|static] [--pass <name>]`
pub fn analyze(args: &[String]) -> Result<String, CliError> {
    let opts = Options::parse(args, &["root", "mode", "pass"])?;
    let mode = opts.get("mode").unwrap_or("full");
    let static_only = match mode {
        "full" => false,
        "static" => true,
        other => {
            return Err(CliError::Usage(format!("--mode must be full or static, got `{other}`")))
        }
    };
    let check_opts = tasq_analyze::CheckOptions {
        root: std::path::PathBuf::from(opts.get("root").unwrap_or(".")),
        static_only,
        pass: opts.get("pass").map(str::to_string),
    };
    let report = tasq_analyze::run_check(&check_opts)?;
    let rendered = tasq_analyze::report::to_human(&report);
    if report.ok() {
        Ok(rendered)
    } else {
        // Surface findings through the usage-error path so the binary
        // exits nonzero without a dedicated error variant per tool.
        Err(CliError::Analysis(rendered))
    }
}

/// `tasq metrics [--format prometheus|json]`
///
/// Dump the process-global metrics registry. Most useful chained after
/// another command in the same process (the binary runs one command per
/// invocation, so on its own this shows an empty registry); library
/// callers and tests can run several commands and then dump.
pub fn metrics(args: &[String]) -> Result<String, CliError> {
    let opts = Options::parse(args, &["format"])?;
    let registry = tasq_obs::Registry::global();
    match opts.get("format").unwrap_or("prometheus") {
        "prometheus" => Ok(registry.render_prometheus()),
        "json" => Ok(registry.render_json()),
        other => {
            Err(CliError::Usage(format!("--format must be prometheus or json, got `{other}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tasq-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn generate_inspect_train_score_roundtrip() {
        let dir = temp_dir("e2e");
        let workload = dir.join("w.bin");
        let models = dir.join("models");
        let workload_str = workload.to_str().unwrap().to_string();
        let models_str = models.to_str().unwrap().to_string();

        let out = generate(&strings(&["--out", &workload_str, "--jobs", "30", "--seed", "3"]))
            .unwrap();
        assert!(out.contains("wrote 30 jobs"));

        let out = inspect(&strings(&["--workload", &workload_str])).unwrap();
        assert!(out.contains("workload: 30 jobs"));
        assert!(out.contains("recurring:"));

        let out = train(&strings(&[
            "--workload",
            &workload_str,
            "--model-dir",
            &models_str,
            "--nn-epochs",
            "5",
            "--xgb-rounds",
            "10",
        ]))
        .unwrap();
        assert!(out.contains("registered"));

        for model in ["nn", "xgb-pl", "xgb-ss"] {
            let out = score(&strings(&[
                "--workload",
                &workload_str,
                "--model-dir",
                &models_str,
                "--model",
                model,
            ]))
            .unwrap();
            assert!(out.contains("optimal tokens"), "{model}");
            assert!(out.contains("total:"), "{model}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn score_without_artifacts_is_a_usage_error() {
        let dir = temp_dir("noart");
        let workload = dir.join("w.bin");
        generate(&strings(&["--out", workload.to_str().unwrap(), "--jobs", "3"])).unwrap();
        let err = score(&strings(&[
            "--workload",
            workload.to_str().unwrap(),
            "--model-dir",
            dir.join("empty").to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("no NN artifact"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_model_is_rejected() {
        let dir = temp_dir("badmodel");
        let workload = dir.join("w.bin");
        generate(&strings(&["--out", workload.to_str().unwrap(), "--jobs", "3"])).unwrap();
        let err = score(&strings(&[
            "--workload",
            workload.to_str().unwrap(),
            "--model-dir",
            dir.to_str().unwrap(),
            "--model",
            "oracle",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("unknown --model"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flight_reports_fault_statistics() {
        let dir = temp_dir("flight");
        let workload = dir.join("w.bin");
        let workload_str = workload.to_str().unwrap().to_string();
        generate(&strings(&["--out", &workload_str, "--jobs", "12", "--seed", "5"])).unwrap();

        // Fault-free flighting: no disturbances at all.
        let out = flight(&strings(&["--workload", &workload_str, "--sample", "4"])).unwrap();
        assert!(out.contains("fault preset: none"));
        assert!(out.contains("0 crashes, 0 retries"));
        assert!(out.contains("0 dropped"));

        // A production preset reports the injected faults.
        let out = flight(&strings(&[
            "--workload",
            &workload_str,
            "--sample",
            "4",
            "--faults",
            "production",
        ]))
        .unwrap();
        assert!(out.contains("fault preset: production"));
        assert!(out.contains("pass the anomaly filters"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flight_rejects_unknown_preset() {
        let dir = temp_dir("badpreset");
        let workload = dir.join("w.bin");
        generate(&strings(&["--out", workload.to_str().unwrap(), "--jobs", "3"])).unwrap();
        let err = flight(&strings(&[
            "--workload",
            workload.to_str().unwrap(),
            "--faults",
            "catastrophic",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("unknown --faults"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointed_train_registers_and_warm_resume_recommits_nothing() {
        let dir = temp_dir("ckpttrain");
        let workload = dir.join("w.bin");
        let workload_str = workload.to_str().unwrap().to_string();
        let models = dir.join("models").to_str().unwrap().to_string();
        let ckpt = dir.join("ckpt").to_str().unwrap().to_string();
        generate(&strings(&["--out", &workload_str, "--jobs", "6", "--seed", "3"])).unwrap();

        let cold = train(&strings(&[
            "--workload", &workload_str, "--model-dir", &models, "--checkpoint-dir", &ckpt,
            "--nn-epochs", "3", "--xgb-rounds", "5",
        ]))
        .unwrap();
        assert!(cold.contains("checkpointed train: 6 jobs"), "{cold}");
        assert!(cold.contains("resumed: false"), "{cold}");
        assert!(cold.contains("registered"), "{cold}");

        let warm = train(&strings(&[
            "--workload", &workload_str, "--model-dir", &models, "--checkpoint-dir", &ckpt,
            "--resume", "true", "--nn-epochs", "3", "--xgb-rounds", "5",
        ]))
        .unwrap();
        assert!(warm.contains("resumed: true"), "{warm}");
        assert!(warm.contains("0 commits this run"), "{warm}");
        let fingerprint = |out: &str| {
            out.lines().find(|l| l.starts_with("fingerprint:")).map(str::to_string)
        };
        assert_eq!(fingerprint(&cold), fingerprint(&warm));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_production_run_passes_and_writes_the_report() {
        let dir = temp_dir("chaos");
        let report = dir.join("chaos-report.json");
        let out = chaos(&strings(&[
            "--preset", "production", "--seed", "5", "--jobs", "6", "--requests", "320",
            "--dir", dir.join("work").to_str().unwrap(),
            "--out", report.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("resumed bit-identical: true"), "{out}");
        assert!(out.contains("zero silent loss: true"), "{out}");
        assert!(out.contains("passed: true"), "{out}");

        let json = std::fs::read_to_string(&report).unwrap();
        for key in [
            "\"resumed_bit_identical\": true",
            "\"zero_silent_loss\": true",
            "\"breaker_closed_at_end\": true",
            "\"killed_stage\": \"",
            "\"passed\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Breaker tripped AND recovered within the run; workers respawned.
        let field = |name: &str| -> u64 {
            json.lines()
                .find(|l| l.contains(&format!("\"{name}\"")))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().trim_end_matches(',').parse().unwrap())
                .unwrap()
        };
        assert!(field("breaker_trips") >= 1, "{json}");
        assert!(field("breaker_recoveries") >= 1, "{json}");
        assert!(field("worker_respawns") >= 1, "{json}");
        assert!(field("deadline_timeouts") >= 1, "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_rejects_unknown_preset() {
        let err = chaos(&strings(&["--preset", "cataclysmic"])).unwrap_err();
        assert!(err.to_string().contains("unknown --preset"), "{err}");
    }

    #[test]
    fn top_level_dispatch() {
        assert!(crate::run(&strings(&["help"])).unwrap().contains("USAGE"));
        assert!(crate::run(&[]).is_err());
        assert!(crate::run(&strings(&["frobnicate"])).is_err());
    }

    #[test]
    fn serve_reports_serving_paths() {
        let dir = temp_dir("serve");
        let workload = dir.join("w.bin");
        let workload_str = workload.to_str().unwrap().to_string();
        generate(&strings(&["--out", &workload_str, "--jobs", "15", "--seed", "9"])).unwrap();

        let out = serve(&strings(&[
            "--workload",
            &workload_str,
            "--workers",
            "2",
            "--requests",
            "120",
            "--repeat",
            "0.8",
        ]))
        .unwrap();
        assert!(out.contains("served 120 requests through 2 workers"), "{out}");
        assert!(out.contains("cache,"), "{out}");
        assert!(out.contains("hit rate"), "{out}");
        assert!(out.contains("model generation: 1"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_with_cache_off_never_hits() {
        let dir = temp_dir("servenc");
        let workload = dir.join("w.bin");
        let workload_str = workload.to_str().unwrap().to_string();
        generate(&strings(&["--out", &workload_str, "--jobs", "10", "--seed", "11"])).unwrap();
        let out = serve(&strings(&[
            "--workload",
            &workload_str,
            "--cache",
            "off",
            "--requests",
            "40",
        ]))
        .unwrap();
        assert!(out.contains("paths: 0 cache"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_train_writes_a_bit_identical_report() {
        let dir = temp_dir("benchtrain");
        let report = dir.join("BENCH_train.json");
        let out = bench_train(&strings(&[
            "--out",
            report.to_str().unwrap(),
            "--jobs",
            "6",
            "--threads",
            "4",
            "--quick",
            "true",
        ]))
        .unwrap();
        assert!(out.contains("bench-train: 6 jobs"), "{out}");
        assert!(out.contains("bit-identical to sequential: true"), "{out}");

        let json = std::fs::read_to_string(&report).unwrap();
        for key in [
            "\"benchmark\": \"train-pipeline\"",
            "\"hardware_threads\"",
            "\"bit_identical\": true",
            "\"flight_ms\"",
            "\"featurize_ms\"",
            "\"fit_ms\"",
            "\"speedup_vs_sequential\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn loadgen_writes_a_bench_report() {
        let dir = temp_dir("loadgen");
        let workload = dir.join("w.bin");
        let report = dir.join("BENCH_serve.json");
        let workload_str = workload.to_str().unwrap().to_string();
        generate(&strings(&["--out", &workload_str, "--jobs", "12", "--seed", "13"])).unwrap();

        let out = loadgen(&strings(&[
            "--workload",
            &workload_str,
            "--requests",
            "300",
            "--out",
            report.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("speedup:"), "{out}");
        assert!(out.contains("wrote"), "{out}");

        let json = std::fs::read_to_string(&report).unwrap();
        for key in [
            "\"uncached\"",
            "\"cached\"",
            "\"throughput_rps\"",
            "\"p99_us\"",
            "\"speedup\"",
            "\"reject_burst\"",
            "\"shed_burst\"",
            "\"cache_hit_rate\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        if tasq_net::sys::supported() {
            for key in [
                "\"hot_path\"",
                "\"syscalls_per_request_write\"",
                "\"syscalls_per_request_writev\"",
                "\"fastpath_hits\"",
            ] {
                assert!(json.contains(key), "missing {key} in {json}");
            }
        }
        // The report is one well-formed JSON object (braces balance).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);

        // The run ends with a Prometheus text exposition covering the
        // server, cache, and fault/retry metric families.
        assert!(out.contains("metrics exposition:"), "{out}");
        for family in ["serve_submitted", "serve_cache_hits", "serve_latency_us"] {
            assert!(out.contains(family), "missing {family} in exposition:\n{out}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_command_renders_both_formats() {
        let prom = metrics(&strings(&[])).unwrap();
        // The exposition may be empty early in the test run, but the
        // format dispatch must work and reject unknown formats.
        let _ = metrics(&strings(&["--format", "prometheus"])).unwrap();
        let json = metrics(&strings(&["--format", "json"])).unwrap();
        assert!(json.trim_start().starts_with('{'), "{json}");
        assert!(metrics(&strings(&["--format", "yaml"])).is_err());
        // Prometheus output is line-oriented key/value text.
        for line in prom.lines() {
            assert!(line.starts_with('#') || line.contains(' '), "{line}");
        }
    }

    #[test]
    fn trace_out_writes_a_valid_chrome_trace() {
        let dir = temp_dir("traceout");
        let workload = dir.join("w.bin");
        let trace = dir.join("trace.json");
        let workload_str = workload.to_str().unwrap().to_string();
        generate(&strings(&["--out", &workload_str, "--jobs", "12", "--seed", "5"])).unwrap();

        let out = crate::run(&strings(&[
            "flight",
            "--workload",
            &workload_str,
            "--sample",
            "4",
            "--trace-out",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("wrote Chrome trace"), "{out}");

        let doc = std::fs::read_to_string(&trace).unwrap();
        let events = tasq_obs::validate_chrome_trace(&doc).unwrap();
        assert!(events > 0, "trace should contain events:\n{doc}");
        // The flight command stashes a simulator trace, so the export
        // carries both the wall-clock and virtual-time process rows.
        assert!(doc.contains("\"pid\":1"), "{doc}");
        assert!(doc.contains("\"pid\":2"), "{doc}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
