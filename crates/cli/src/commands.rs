//! The five subcommands.

use crate::options::Options;
use crate::CliError;
use scope_sim::flight::{filter_non_anomalous, flight_job, FlightConfig};
use scope_sim::{FaultPlan, Job, NoiseModel, WorkloadConfig, WorkloadGenerator};
use std::fmt::Write as _;
use tasq::codec;
use tasq::models::{NnTrainConfig, XgbTrainConfig};
use tasq::pipeline::{
    AllocationDecision, DiskModelStore, JobRepository, ModelChoice, ModelStore, PipelineConfig,
    ScoringConfig, ScoringService, TasqPipeline, NN_MODEL_NAME, XGB_MODEL_NAME,
};

fn read_workload(path: &str) -> Result<Vec<Job>, CliError> {
    let bytes = std::fs::read(path)?;
    Ok(codec::from_bytes(&bytes)?)
}

/// `tasq generate --out <file> [--jobs N] [--seed N]`
pub fn generate(args: &[String]) -> Result<String, CliError> {
    let opts = Options::parse(args, &["out", "jobs", "seed"])?;
    let out = opts.required("out")?;
    let jobs = opts.number::<usize>("jobs", 500)?;
    let seed = opts.number::<u64>("seed", 0)?;
    let workload = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: jobs,
        seed,
        ..Default::default()
    })
    .generate();
    let bytes = codec::to_bytes(&workload)?;
    std::fs::write(out, &bytes)?;
    Ok(format!("wrote {jobs} jobs ({} bytes) to {out}\n", bytes.len()))
}

/// `tasq inspect --workload <file>`
pub fn inspect(args: &[String]) -> Result<String, CliError> {
    let opts = Options::parse(args, &["workload"])?;
    let jobs = read_workload(opts.required("workload")?)?;
    let tokens: Vec<f64> = jobs.iter().map(|j| j.requested_tokens as f64).collect();
    let operators: Vec<f64> = jobs.iter().map(|j| j.plan.num_operators() as f64).collect();
    let recurring = jobs.iter().filter(|j| j.meta.recurring_template.is_some()).count();
    let mut out = String::new();
    let _ = writeln!(out, "workload: {} jobs", jobs.len());
    let _ = writeln!(
        out,
        "requested tokens: median {:.0}, mean {:.0}, max {:.0}",
        tasq_ml::stats::median(&tokens),
        tasq_ml::stats::mean(&tokens),
        tokens.iter().copied().fold(0.0, f64::max),
    );
    let _ = writeln!(
        out,
        "operators per plan: median {:.0}, max {:.0}",
        tasq_ml::stats::median(&operators),
        operators.iter().copied().fold(0.0, f64::max),
    );
    let _ = writeln!(
        out,
        "recurring: {recurring} ({:.0}%), ad-hoc: {}",
        100.0 * recurring as f64 / jobs.len().max(1) as f64,
        jobs.len() - recurring
    );
    Ok(out)
}

/// `tasq train --workload <file> --model-dir <dir> [--nn-epochs N] [--xgb-rounds N]`
pub fn train(args: &[String]) -> Result<String, CliError> {
    let opts = Options::parse(args, &["workload", "model-dir", "nn-epochs", "xgb-rounds"])?;
    let jobs = read_workload(opts.required("workload")?)?;
    let model_dir = opts.required("model-dir")?;
    let nn_epochs = opts.number::<usize>("nn-epochs", 120)?;
    let xgb_rounds = opts.number::<usize>("xgb-rounds", 120)?;

    // Train through the in-memory pipeline, then persist to disk.
    let repo = JobRepository::new();
    let job_count = jobs.len();
    repo.ingest(jobs);
    let memory_store = ModelStore::new();
    let pipeline = TasqPipeline::new(PipelineConfig {
        nn: NnTrainConfig { epochs: nn_epochs, ..Default::default() },
        xgb: XgbTrainConfig { num_rounds: xgb_rounds, ..Default::default() },
        ..Default::default()
    });
    let dataset = pipeline.train(&repo, &memory_store)?;

    let disk = DiskModelStore::open(model_dir)?;
    let nn: tasq::models::NnPcc = memory_store.load_latest(NN_MODEL_NAME)?;
    let xgb: tasq::models::XgbRuntime = memory_store.load_latest(XGB_MODEL_NAME)?;
    let nn_version = disk.register(NN_MODEL_NAME, &nn)?;
    let xgb_version = disk.register(XGB_MODEL_NAME, &xgb)?;
    Ok(format!(
        "trained on {job_count} jobs ({} examples)\nregistered {NN_MODEL_NAME} v{nn_version}, \
         {XGB_MODEL_NAME} v{xgb_version} in {model_dir}\n",
        dataset.len()
    ))
}

/// `tasq score --workload <file> --model-dir <dir> [--model nn|xgb-ss|xgb-pl]
///  [--min-improvement FRAC]`
pub fn score(args: &[String]) -> Result<String, CliError> {
    let opts =
        Options::parse(args, &["workload", "model-dir", "model", "min-improvement"])?;
    let jobs = read_workload(opts.required("workload")?)?;
    let disk = DiskModelStore::open(opts.required("model-dir")?)?;
    let choice = match opts.get("model").unwrap_or("nn") {
        "nn" => ModelChoice::Nn,
        "xgb-ss" => ModelChoice::XgboostSs,
        "xgb-pl" => ModelChoice::XgboostPl,
        other => return Err(CliError::Usage(format!("unknown --model {other}"))),
    };
    let min_improvement = opts.number::<f64>("min-improvement", 0.01)?;

    // Rehydrate the in-memory store the scoring service expects.
    let store = ModelStore::new();
    match choice {
        ModelChoice::Nn => {
            let nn: tasq::models::NnPcc = disk
                .load_latest(NN_MODEL_NAME)
                .map_err(|e| CliError::Usage(format!("no NN artifact in model dir: {e}")))?;
            store.register(NN_MODEL_NAME, &nn)?;
        }
        ModelChoice::XgboostSs | ModelChoice::XgboostPl => {
            let xgb: tasq::models::XgbRuntime = disk
                .load_latest(XGB_MODEL_NAME)
                .map_err(|e| CliError::Usage(format!("no XGBoost artifact in model dir: {e}")))?;
            store.register(XGB_MODEL_NAME, &xgb)?;
        }
    }
    let service = ScoringService::deploy(
        &store,
        choice,
        ScoringConfig { min_improvement, ..Default::default() },
    )
    .map_err(|e| CliError::Usage(e.to_string()))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>15} {:>16} {:>9} {:>9}",
        "job", "requested", "pred. runtime", "optimal tokens", "saving", "tier"
    );
    let mut total_requested = 0.0;
    let mut total_optimal = 0.0;
    for job in &jobs {
        let response = service.score(job);
        let AllocationDecision::Automatic { tokens } = response.decision else {
            unreachable!("automatic mode configured");
        };
        total_requested += job.requested_tokens as f64;
        total_optimal += tokens as f64;
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>14.0}s {:>16} {:>8.0}% {:>9}",
            job.id,
            job.requested_tokens,
            response.predicted_runtime_at_request,
            tokens,
            100.0 * (1.0 - tokens as f64 / job.requested_tokens as f64),
            format!("{:?}", response.served_tier).to_lowercase(),
        );
    }
    let _ = writeln!(
        out,
        "\ntotal: {total_requested:.0} requested -> {total_optimal:.0} optimal ({:.0}% saved)",
        100.0 * (1.0 - total_optimal / total_requested.max(1.0))
    );
    Ok(out)
}

/// `tasq flight --workload <file> [--faults none|mild|production|adversarial]
///  [--sample N] [--seed N]`
///
/// Re-executes a sample of the workload at 100/80/60/20% of each job's
/// request under the chosen fault-injection preset, then reports recovery
/// statistics and how many jobs survive the anomaly filters.
pub fn flight(args: &[String]) -> Result<String, CliError> {
    let opts = Options::parse(args, &["workload", "faults", "sample", "seed"])?;
    let jobs = read_workload(opts.required("workload")?)?;
    let preset = opts.get("faults").unwrap_or("none");
    let faults = FaultPlan::from_name(preset).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown --faults `{preset}` (expected one of {})",
            FaultPlan::PRESET_NAMES.join("|")
        ))
    })?;
    let sample = opts.number::<usize>("sample", 10)?;
    let seed = opts.number::<u64>("seed", 0)?;

    let config = FlightConfig { noise: NoiseModel::mild(), faults, seed, ..Default::default() };
    let mut flighted = Vec::new();
    let mut dropped = 0usize;
    for job in jobs.iter().take(sample) {
        match flight_job(job, job.requested_tokens, &config) {
            Ok(fj) => flighted.push(fj),
            Err(_) => dropped += 1,
        }
    }

    let mut crashes = 0u32;
    let mut retries = 0u32;
    let mut preemptions = 0u32;
    let mut stragglers = 0u32;
    let mut spec_wins = 0u32;
    let mut waste = 0.0f64;
    let mut executions = 0usize;
    for fj in &flighted {
        for e in &fj.executions {
            crashes += e.faults.task_crashes;
            retries += e.faults.task_retries;
            preemptions += e.faults.preemptions;
            stragglers += e.faults.straggler_tasks;
            spec_wins += e.faults.speculative_wins;
            waste += e.faults.wasted_token_seconds;
            executions += 1;
        }
    }
    let flown = flighted.len();
    let clean = filter_non_anomalous(flighted, 0.10);

    let mut out = String::new();
    let _ = writeln!(out, "fault preset: {preset}");
    let _ = writeln!(
        out,
        "flighted {flown}/{} sampled jobs ({executions} executions), {dropped} dropped \
         after retry exhaustion",
        sample.min(jobs.len())
    );
    let _ = writeln!(
        out,
        "faults injected: {crashes} crashes, {retries} retries, {preemptions} preemptions, \
         {stragglers} stragglers, {spec_wins} speculative wins"
    );
    let _ = writeln!(out, "wasted token-seconds: {waste:.0}");
    let _ = writeln!(out, "{}/{flown} jobs pass the anomaly filters", clean.len());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tasq-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn generate_inspect_train_score_roundtrip() {
        let dir = temp_dir("e2e");
        let workload = dir.join("w.bin");
        let models = dir.join("models");
        let workload_str = workload.to_str().unwrap().to_string();
        let models_str = models.to_str().unwrap().to_string();

        let out = generate(&strings(&["--out", &workload_str, "--jobs", "30", "--seed", "3"]))
            .unwrap();
        assert!(out.contains("wrote 30 jobs"));

        let out = inspect(&strings(&["--workload", &workload_str])).unwrap();
        assert!(out.contains("workload: 30 jobs"));
        assert!(out.contains("recurring:"));

        let out = train(&strings(&[
            "--workload",
            &workload_str,
            "--model-dir",
            &models_str,
            "--nn-epochs",
            "5",
            "--xgb-rounds",
            "10",
        ]))
        .unwrap();
        assert!(out.contains("registered"));

        for model in ["nn", "xgb-pl", "xgb-ss"] {
            let out = score(&strings(&[
                "--workload",
                &workload_str,
                "--model-dir",
                &models_str,
                "--model",
                model,
            ]))
            .unwrap();
            assert!(out.contains("optimal tokens"), "{model}");
            assert!(out.contains("total:"), "{model}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn score_without_artifacts_is_a_usage_error() {
        let dir = temp_dir("noart");
        let workload = dir.join("w.bin");
        generate(&strings(&["--out", workload.to_str().unwrap(), "--jobs", "3"])).unwrap();
        let err = score(&strings(&[
            "--workload",
            workload.to_str().unwrap(),
            "--model-dir",
            dir.join("empty").to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("no NN artifact"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_model_is_rejected() {
        let dir = temp_dir("badmodel");
        let workload = dir.join("w.bin");
        generate(&strings(&["--out", workload.to_str().unwrap(), "--jobs", "3"])).unwrap();
        let err = score(&strings(&[
            "--workload",
            workload.to_str().unwrap(),
            "--model-dir",
            dir.to_str().unwrap(),
            "--model",
            "oracle",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("unknown --model"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flight_reports_fault_statistics() {
        let dir = temp_dir("flight");
        let workload = dir.join("w.bin");
        let workload_str = workload.to_str().unwrap().to_string();
        generate(&strings(&["--out", &workload_str, "--jobs", "12", "--seed", "5"])).unwrap();

        // Fault-free flighting: no disturbances at all.
        let out = flight(&strings(&["--workload", &workload_str, "--sample", "4"])).unwrap();
        assert!(out.contains("fault preset: none"));
        assert!(out.contains("0 crashes, 0 retries"));
        assert!(out.contains("0 dropped"));

        // A production preset reports the injected faults.
        let out = flight(&strings(&[
            "--workload",
            &workload_str,
            "--sample",
            "4",
            "--faults",
            "production",
        ]))
        .unwrap();
        assert!(out.contains("fault preset: production"));
        assert!(out.contains("pass the anomaly filters"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flight_rejects_unknown_preset() {
        let dir = temp_dir("badpreset");
        let workload = dir.join("w.bin");
        generate(&strings(&["--out", workload.to_str().unwrap(), "--jobs", "3"])).unwrap();
        let err = flight(&strings(&[
            "--workload",
            workload.to_str().unwrap(),
            "--faults",
            "catastrophic",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("unknown --faults"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn top_level_dispatch() {
        assert!(crate::run(&strings(&["help"])).unwrap().contains("USAGE"));
        assert!(crate::run(&[]).is_err());
        assert!(crate::run(&strings(&["frobnicate"])).is_err());
    }
}
