//! Library backing the `tasq` command-line binary.
//!
//! Twelve subcommands drive the pipeline from files on disk, with
//! workloads and model artifacts serialized through the workspace's
//! binary codec:
//!
//! * `generate` — synthesize a workload and write it to a file.
//! * `inspect`  — print population statistics of a workload file.
//! * `train`    — prepare a dataset from a workload file, train the NN and
//!   XGBoost models, and register them in a directory-backed model store;
//!   with `--checkpoint-dir` the run is crash-consistent and `--resume`
//!   replays only the remaining work ([`resume`]).
//! * `score`    — load the latest artifacts and score a workload file,
//!   printing per-job allocation decisions.
//! * `flight`   — re-execute a sample of jobs under a fault-injection
//!   preset and report recovery statistics and anomaly filtering.
//! * `serve`    — push a workload through the concurrent scoring server
//!   (`tasq-serve`) and report per-path serving statistics; with
//!   `--listen` it becomes a real network server (`tasq-net`) speaking
//!   HTTP/1.1 and binary framing until drained over the wire.
//! * `netgen`   — networked load-generation client: replay recurring-job
//!   traffic against a listening server over persistent connections and
//!   report latency/throughput as JSON.
//! * `loadgen`  — drive recurring-job replay traffic through the server,
//!   cached and uncached, plus overload bursts; write `BENCH_serve.json`.
//!   With `--networked on` it also benchmarks over real sockets:
//!   N spawned server processes, M client processes, aggregated into the
//!   report's `networked` section.
//! * `bench-train` — time the offline pipeline (generate → flight →
//!   featurize → fit) sequentially and on work-stealing pools, verify the
//!   parallel runs are bit-identical, and write `BENCH_train.json`.
//! * `chaos`    — the deterministic chaos harness: kill the checkpointed
//!   trainer mid-run (with a torn tail), resume it, prove the artifacts
//!   bit-identical, then drive the supervised server through planted
//!   worker panics, an NN fault window, and a deadline storm; write a
//!   machine-readable report CI asserts on.
//! * `analyze`  — run the `tasq-analyze` gatekeeper (source lints, lock
//!   audit, plan/PCC invariants, happens-before race replay).
//! * `metrics`  — dump the process-global metrics registry (Prometheus
//!   text exposition or JSON).
//!
//! Commands return their output as a `String` so they are directly
//! testable; `main` just prints.

#![warn(missing_docs)]

pub mod commands;
pub mod obs;
pub mod options;
pub mod resume;

use std::fmt;

/// CLI error: bad usage or an underlying I/O / codec / pipeline failure.
#[derive(Debug)]
pub enum CliError {
    /// Invalid flags or arguments; the string is a usage message.
    Usage(String),
    /// Filesystem failure.
    Io(std::io::Error),
    /// Artifact encoding/decoding failure.
    Codec(tasq::codec::CodecError),
    /// Model-store failure.
    Store(tasq::pipeline::StoreError),
    /// Training-pipeline failure.
    Pipeline(tasq::pipeline::PipelineError),
    /// `tasq-analyze` found deny-severity diagnostics; the string is the
    /// rendered report.
    Analysis(String),
    /// Checkpoint/recovery failure (`tasq-resil`).
    Resil(tasq_resil::ResilError),
    /// Network serving failure (`tasq-net`).
    Net(tasq_net::NetError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(message) => write!(f, "usage error: {message}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Codec(e) => write!(f, "codec error: {e}"),
            CliError::Store(e) => write!(f, "model store error: {e}"),
            CliError::Pipeline(e) => write!(f, "pipeline error: {e}"),
            CliError::Analysis(report) => write!(f, "{report}"),
            CliError::Resil(e) => write!(f, "checkpoint error: {e}"),
            CliError::Net(e) => write!(f, "network error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<tasq::codec::CodecError> for CliError {
    fn from(e: tasq::codec::CodecError) -> Self {
        CliError::Codec(e)
    }
}

impl From<tasq::pipeline::StoreError> for CliError {
    fn from(e: tasq::pipeline::StoreError) -> Self {
        CliError::Store(e)
    }
}

impl From<tasq::pipeline::PipelineError> for CliError {
    fn from(e: tasq::pipeline::PipelineError) -> Self {
        CliError::Pipeline(e)
    }
}

impl From<tasq_resil::ResilError> for CliError {
    fn from(e: tasq_resil::ResilError) -> Self {
        CliError::Resil(e)
    }
}

impl From<tasq_net::NetError> for CliError {
    fn from(e: tasq_net::NetError) -> Self {
        CliError::Net(e)
    }
}

/// Top-level dispatch: run a command line (without the program name).
///
/// The global observability flags `--log <level>` and `--trace-out
/// <path>` are stripped before dispatch and may appear anywhere on the
/// line; when `--trace-out` is given, a Chrome trace-event JSON file is
/// written after the command completes.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let (args, obs_flags) = obs::extract(args)?;
    obs_flags.install();
    let mut output = dispatch(&args)?;
    if let Some(note) = obs_flags.export()? {
        output.push_str(&note);
    }
    Ok(output)
}

fn dispatch(args: &[String]) -> Result<String, CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Err(CliError::Usage(USAGE.to_string()));
    };
    match command.as_str() {
        "generate" => commands::generate(rest),
        "inspect" => commands::inspect(rest),
        "train" => commands::train(rest),
        "score" => commands::score(rest),
        "flight" => commands::flight(rest),
        "serve" => commands::serve(rest),
        "netgen" => commands::netgen(rest),
        "loadgen" => commands::loadgen(rest),
        "bench-train" => commands::bench_train(rest),
        "chaos" => commands::chaos(rest),
        "analyze" => commands::analyze(rest),
        "metrics" => commands::metrics(rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::Usage(format!("unknown command `{other}`\n{USAGE}"))),
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
tasq-cli — token allocation for scalable queries

USAGE:
    tasq-cli generate --out <file> [--jobs N] [--seed N]
    tasq-cli inspect  --workload <file>
    tasq-cli train    --workload <file> --model-dir <dir> [--nn-epochs N] [--xgb-rounds N]
                      [--checkpoint-dir <dir>] [--resume true] [--seed N] [--threads N]
                      [--flight-chunk N]
    tasq-cli score    --workload <file> --model-dir <dir> [--model nn|xgb-ss|xgb-pl]
                      [--min-improvement FRAC]
    tasq-cli flight   --workload <file> [--faults none|mild|production|adversarial]
                      [--sample N] [--seed N]
    tasq-cli serve    --workload <file> [--model-dir <dir>] [--model nn|xgb-ss|xgb-pl]
                      [--workers N] [--max-batch N] [--max-delay-us N] [--cache on|off]
                      [--requests N] [--repeat FRAC] [--seed N]
                      [--listen <addr>] [--shards N] [--autoscale on|off]
                      [--min-workers N] [--max-workers N] [--scale-up FRAC]
                      [--scale-down FRAC] [--cooldown-secs SECS]
    tasq-cli netgen   --addr <host:port> --workload <file> [--requests N] [--repeat FRAC]
                      [--qps N] [--seed N] [--mode http|binary] [--connections N]
    tasq-cli loadgen  --workload <file> [--model-dir <dir>] [--requests N] [--repeat FRAC]
                      [--qps N] [--out <json>] [--seed N] [--networked on|off]
                      [--server-procs N,M,...] [--clients N] [--mode http|binary]
    tasq-cli bench-train [--out <json>] [--jobs N] [--seed N] [--threads N] [--quick true]
    tasq-cli chaos    --preset none|mild|production|adversarial [--seed N] [--jobs N]
                      [--requests N] [--dir <dir>] [--out <json>]
    tasq-cli analyze  [--root <dir>] [--mode full|static] [--pass lints|lock-order|
                      resource-leak|unsafe-boundary|lock-discipline]
    tasq-cli metrics  [--format prometheus|json]
    tasq-cli help

GLOBAL FLAGS (any command):
    --log error|warn|info|debug|trace|off   structured span/event lines on stderr
    --trace-out <path>                      write a Chrome trace (Perfetto-loadable)
";
