//! SimGNN-style attention pooling: node embeddings -> graph embedding.
//!
//! Given node embeddings `H` (N x d):
//!
//! * mean      `m = (1/N) * sum_i h_i`
//! * context   `c = tanh(m W_c)` (the "global context", `W_c` learnable)
//! * scores    `s_i = h_i . c`
//! * weights   `a_i = sigmoid(s_i)` (node's similarity to the context)
//! * embedding `e = sum_i a_i h_i`

use crate::matrix::Matrix;
use crate::nn::Activation;
use crate::rand_ext;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Attention pooling layer with a learnable `d x d` context transform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttentionPool {
    /// Context weight matrix, `d x d`.
    pub context_weight: Matrix,
}

/// Forward cache for the backward pass.
#[derive(Debug, Clone)]
pub struct AttentionCache {
    node_embeddings: Matrix,
    mean: Matrix,
    pre_tanh: Matrix,
    context: Matrix,
    scores: Vec<f64>,
    weights: Vec<f64>,
}

impl AttentionPool {
    /// Glorot-initialized pooling layer for embedding dimension `dim`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, dim: usize) -> Self {
        let scale = (1.0 / dim.max(1) as f64).sqrt();
        let context_weight =
            Matrix::from_fn(dim, dim, |_, _| rand_ext::standard_normal(rng) * scale);
        Self { context_weight }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.context_weight.rows()
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.context_weight.len()
    }

    /// Pool node embeddings `h: N x d` into a `1 x d` graph embedding.
    pub fn forward(&self, h: &Matrix) -> Matrix {
        self.forward_cached(h).0
    }

    /// Forward pass with cache.
    pub fn forward_cached(&self, h: &Matrix) -> (Matrix, AttentionCache) {
        let n = h.rows();
        assert!(n > 0, "AttentionPool: empty graph");
        let mean = Matrix::row_vector(&h.col_means());
        let pre_tanh = mean.matmul(&self.context_weight);
        let context = Activation::Tanh.apply(&pre_tanh);
        let mut scores = Vec::with_capacity(n);
        let mut weights = Vec::with_capacity(n);
        let mut embedding = Matrix::zeros(1, h.cols());
        for i in 0..n {
            let s: f64 = h.row(i).iter().zip(context.as_slice()).map(|(a, b)| a * b).sum();
            let a = crate::nn::Activation::Sigmoid.apply_scalar(s);
            scores.push(s);
            weights.push(a);
            for (e, &x) in embedding.as_mut_slice().iter_mut().zip(h.row(i)) {
                *e += a * x;
            }
        }
        (
            embedding,
            AttentionCache { node_embeddings: h.clone(), mean, pre_tanh, context, scores, weights },
        )
    }

    /// Backward pass: returns `(dW_c, dH)` given `d_embedding: 1 x d`.
    pub fn backward(&self, cache: &AttentionCache, d_embedding: &Matrix) -> (Matrix, Matrix) {
        let h = &cache.node_embeddings;
        let n = h.rows();
        let d = h.cols();
        let mut d_h = Matrix::zeros(n, d);
        let mut d_context = Matrix::zeros(1, d);

        for i in 0..n {
            let a_i = cache.weights[i];
            // Direct term: e = sum a_i h_i -> dH_i += a_i * de.
            for (g, &de) in d_h.row_mut(i).iter_mut().zip(d_embedding.as_slice()) {
                *g += a_i * de;
            }
            // Through the attention weight: da_i = de . h_i.
            let da: f64 =
                d_embedding.as_slice().iter().zip(h.row(i)).map(|(x, y)| x * y).sum();
            // ds_i = da_i * sigmoid'(s_i).
            let ds = da * Activation::Sigmoid.derivative_scalar(cache.scores[i]);
            // s_i = h_i . c -> dH_i += ds * c ; dc += ds * h_i.
            for (g, &c) in d_h.row_mut(i).iter_mut().zip(cache.context.as_slice()) {
                *g += ds * c;
            }
            for (dc, &x) in d_context.as_mut_slice().iter_mut().zip(h.row(i)) {
                *dc += ds * x;
            }
        }

        // c = tanh(m W_c): du = dc * tanh'(pre), dW_c = m^T du, dm = du W_c^T.
        let d_pre = d_context.hadamard(&Activation::Tanh.derivative(&cache.pre_tanh));
        let d_wc = cache.mean.t_matmul(&d_pre);
        let d_mean = d_pre.matmul_t(&self.context_weight);
        // m = (1/N) sum h_i -> dH_i += (1/N) dm.
        let inv_n = 1.0 / n as f64;
        for i in 0..n {
            for (g, &dm) in d_h.row_mut(i).iter_mut().zip(d_mean.as_slice()) {
                *g += inv_n * dm;
            }
        }
        (d_wc, d_h)
    }

    /// Attention weights from the last forward pass (useful for
    /// interpretability: which operators dominate the prediction).
    pub fn weights_of(cache: &AttentionCache) -> &[f64] {
        &cache.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_weight_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let pool = AttentionPool::new(&mut rng, 4);
        let h = Matrix::from_fn(6, 4, |_, _| rng.gen_range(-1.0..1.0));
        let (e, cache) = pool.forward_cached(&h);
        assert_eq!(e.shape(), (1, 4));
        assert!(AttentionPool::weights_of(&cache).iter().all(|&a| (0.0..=1.0).contains(&a)));
    }

    #[test]
    fn gradient_check() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut pool = AttentionPool::new(&mut rng, 3);
        let h = Matrix::from_fn(5, 3, |_, _| rng.gen_range(-1.0..1.0));

        let loss = |pool: &AttentionPool, h: &Matrix| -> f64 {
            pool.forward(h).as_slice().iter().map(|v| v * v).sum()
        };

        let (e, cache) = pool.forward_cached(&h);
        let (dwc, dh) = pool.backward(&cache, &e.scale(2.0));

        let step = 1e-6;
        for i in 0..pool.context_weight.len() {
            let orig = pool.context_weight.as_slice()[i];
            pool.context_weight.as_mut_slice()[i] = orig + step;
            let up = loss(&pool, &h);
            pool.context_weight.as_mut_slice()[i] = orig - step;
            let down = loss(&pool, &h);
            pool.context_weight.as_mut_slice()[i] = orig;
            let numeric = (up - down) / (2.0 * step);
            assert!(
                (numeric - dwc.as_slice()[i]).abs() < 1e-4,
                "dWc[{i}]: {numeric} vs {}",
                dwc.as_slice()[i]
            );
        }
        let mut hp = h.clone();
        for i in 0..hp.len() {
            let orig = hp.as_slice()[i];
            hp.as_mut_slice()[i] = orig + step;
            let up = loss(&pool, &hp);
            hp.as_mut_slice()[i] = orig - step;
            let down = loss(&pool, &hp);
            hp.as_mut_slice()[i] = orig;
            let numeric = (up - down) / (2.0 * step);
            assert!(
                (numeric - dh.as_slice()[i]).abs() < 1e-4,
                "dH[{i}]: {numeric} vs {}",
                dh.as_slice()[i]
            );
        }
    }

    #[test]
    fn single_node_graph_pools_to_weighted_node() {
        let mut rng = StdRng::seed_from_u64(3);
        let pool = AttentionPool::new(&mut rng, 2);
        let h = Matrix::from_vec(1, 2, vec![1.0, -2.0]);
        let (e, cache) = pool.forward_cached(&h);
        let a = AttentionPool::weights_of(&cache)[0];
        assert!((e[(0, 0)] - a * 1.0).abs() < 1e-12);
        assert!((e[(0, 1)] - a * -2.0).abs() < 1e-12);
    }
}
