//! Graph input representation: node features + normalized adjacency.

use crate::matrix::Matrix;

/// One graph sample: per-node features and the pre-normalized adjacency
/// used by every GCN layer.
#[derive(Debug, Clone)]
pub struct GraphData {
    /// Node features, `N x feature_dim`.
    pub features: Matrix,
    /// Symmetric-normalized adjacency with self-loops,
    /// `Â = D^-1/2 (A + I) D^-1/2`, `N x N`.
    pub norm_adjacency: Matrix,
}

impl GraphData {
    /// Build from node features and a directed edge list (`from -> to`).
    ///
    /// Edges are symmetrized (GCN treats the DAG as an undirected graph for
    /// message passing) and self-loops are added before normalization.
    ///
    /// # Panics
    /// Panics if any edge endpoint is out of range or the graph is empty.
    pub fn new(features: Matrix, edges: &[(usize, usize)]) -> Self {
        let n = features.rows();
        assert!(n > 0, "GraphData::new: graph must have at least one node");
        let mut adj = Matrix::zeros(n, n);
        for i in 0..n {
            adj[(i, i)] = 1.0; // self loop
        }
        for &(from, to) in edges {
            assert!(from < n && to < n, "GraphData::new: edge ({from},{to}) out of range");
            adj[(from, to)] = 1.0;
            adj[(to, from)] = 1.0;
        }
        // D^-1/2 (A+I) D^-1/2
        let deg_inv_sqrt: Vec<f64> = (0..n)
            .map(|i| {
                let d: f64 = adj.row(i).iter().sum();
                1.0 / d.sqrt()
            })
            .collect();
        let norm_adjacency = Matrix::from_fn(n, n, |i, j| {
            adj[(i, j)] * deg_inv_sqrt[i] * deg_inv_sqrt[j]
        });
        Self { features, norm_adjacency }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.features.rows()
    }

    /// Node feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_self_loop() {
        let g = GraphData::new(Matrix::from_vec(1, 2, vec![1.0, 2.0]), &[]);
        assert_eq!(g.num_nodes(), 1);
        assert!((g.norm_adjacency[(0, 0)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_rows_of_regular_graph() {
        // Path graph 0-1-2: degrees with self-loops are 2, 3, 2.
        let g = GraphData::new(Matrix::zeros(3, 1), &[(0, 1), (1, 2)]);
        let a = &g.norm_adjacency;
        assert!((a[(0, 0)] - 0.5).abs() < 1e-12);
        assert!((a[(1, 1)] - 1.0 / 3.0).abs() < 1e-12);
        let expected01 = 1.0 / (2.0f64.sqrt() * 3.0f64.sqrt());
        assert!((a[(0, 1)] - expected01).abs() < 1e-12);
        // Symmetric.
        assert!((a[(0, 1)] - a[(1, 0)]).abs() < 1e-15);
        // No edge between 0 and 2.
        assert_eq!(a[(0, 2)], 0.0);
    }

    #[test]
    fn symmetrizes_directed_edges() {
        let g = GraphData::new(Matrix::zeros(2, 1), &[(0, 1)]);
        assert!(g.norm_adjacency[(1, 0)] > 0.0);
        assert!(g.norm_adjacency[(0, 1)] > 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        let _ = GraphData::new(Matrix::zeros(2, 1), &[(0, 5)]);
    }
}
