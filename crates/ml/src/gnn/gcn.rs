//! A single graph-convolution layer (Kipf & Welling).

use crate::matrix::Matrix;
use crate::nn::Activation;
use crate::rand_ext;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Graph convolution: `out = act(Â H W + b)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GcnLayer {
    /// Weight, `in_dim x out_dim`.
    pub weight: Matrix,
    /// Bias row, `1 x out_dim`.
    pub bias: Matrix,
    /// Activation applied element-wise.
    pub activation: Activation,
}

/// Forward cache for one graph.
#[derive(Debug, Clone)]
pub struct GcnCache {
    /// `Â H` — the aggregated input (N x in_dim).
    aggregated: Matrix,
    /// Pre-activation `Â H W + b` (N x out_dim).
    pre_activation: Matrix,
}

impl GcnLayer {
    /// Glorot-initialized layer.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
    ) -> Self {
        let scale = (2.0 / (in_dim + out_dim) as f64).sqrt();
        let weight = Matrix::from_fn(in_dim, out_dim, |_, _| rand_ext::standard_normal(rng) * scale);
        Self { weight, bias: Matrix::zeros(1, out_dim), activation }
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// Forward pass: `act(Â H W + b)`.
    pub fn forward(&self, norm_adj: &Matrix, h: &Matrix) -> Matrix {
        let aggregated = norm_adj.matmul(h);
        let mut pre = aggregated.matmul(&self.weight);
        pre.add_row_broadcast(self.bias.as_slice());
        self.activation.apply(&pre)
    }

    /// Forward pass with cache.
    pub fn forward_cached(&self, norm_adj: &Matrix, h: &Matrix) -> (Matrix, GcnCache) {
        let aggregated = norm_adj.matmul(h);
        let mut pre = aggregated.matmul(&self.weight);
        pre.add_row_broadcast(self.bias.as_slice());
        let out = self.activation.apply(&pre);
        (out, GcnCache { aggregated, pre_activation: pre })
    }

    /// Backward pass.
    ///
    /// Returns `(dW, db, dH)` where `dH` is the gradient w.r.t. the layer's
    /// input node embeddings. Uses the symmetry of `Â` (so `Â^T = Â`).
    pub fn backward(
        &self,
        norm_adj: &Matrix,
        cache: &GcnCache,
        d_out: &Matrix,
    ) -> (Matrix, Matrix, Matrix) {
        let d_pre = d_out.hadamard(&self.activation.derivative(&cache.pre_activation));
        let d_weight = cache.aggregated.t_matmul(&d_pre);
        let d_bias = Matrix::row_vector(&d_pre.col_sums());
        // d(ÂH) = d_pre W^T ; dH = Â^T d(ÂH) = Â d(ÂH).
        let d_aggregated = d_pre.matmul_t(&self.weight);
        let d_h = norm_adj.matmul(&d_aggregated);
        (d_weight, d_bias, d_h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gnn::graph::GraphData;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_graph(rng: &mut StdRng) -> GraphData {
        let features = Matrix::from_fn(4, 3, |_, _| rng.gen_range(-1.0..1.0));
        GraphData::new(features, &[(0, 1), (1, 2), (2, 3), (0, 3)])
    }

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = toy_graph(&mut rng);
        let layer = GcnLayer::new(&mut rng, 3, 5, Activation::Relu);
        let out = layer.forward(&g.norm_adjacency, &g.features);
        assert_eq!(out.shape(), (4, 5));
    }

    #[test]
    fn gradient_check() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = toy_graph(&mut rng);
        let mut layer = GcnLayer::new(&mut rng, 3, 2, Activation::Tanh);
        let loss = |layer: &GcnLayer, h: &Matrix| -> f64 {
            layer
                .forward(&g.norm_adjacency, h)
                .as_slice()
                .iter()
                .map(|v| v * v)
                .sum()
        };

        let (out, cache) = layer.forward_cached(&g.norm_adjacency, &g.features);
        let (dw, db, dh) = layer.backward(&g.norm_adjacency, &cache, &out.scale(2.0));

        let h = 1e-6;
        for i in 0..layer.weight.len() {
            let orig = layer.weight.as_slice()[i];
            layer.weight.as_mut_slice()[i] = orig + h;
            let up = loss(&layer, &g.features);
            layer.weight.as_mut_slice()[i] = orig - h;
            let down = loss(&layer, &g.features);
            layer.weight.as_mut_slice()[i] = orig;
            let numeric = (up - down) / (2.0 * h);
            assert!((numeric - dw.as_slice()[i]).abs() < 1e-4, "dW[{i}]");
        }
        for i in 0..layer.bias.len() {
            let orig = layer.bias.as_slice()[i];
            layer.bias.as_mut_slice()[i] = orig + h;
            let up = loss(&layer, &g.features);
            layer.bias.as_mut_slice()[i] = orig - h;
            let down = loss(&layer, &g.features);
            layer.bias.as_mut_slice()[i] = orig;
            let numeric = (up - down) / (2.0 * h);
            assert!((numeric - db.as_slice()[i]).abs() < 1e-4, "db[{i}]");
        }
        let mut feat = g.features.clone();
        for i in 0..feat.len() {
            let orig = feat.as_slice()[i];
            feat.as_mut_slice()[i] = orig + h;
            let up = loss(&layer, &feat);
            feat.as_mut_slice()[i] = orig - h;
            let down = loss(&layer, &feat);
            feat.as_mut_slice()[i] = orig;
            let numeric = (up - down) / (2.0 * h);
            assert!((numeric - dh.as_slice()[i]).abs() < 1e-4, "dH[{i}]");
        }
    }

    #[test]
    fn isolated_nodes_only_see_themselves() {
        let mut rng = StdRng::seed_from_u64(3);
        // Two disconnected nodes: each output row depends only on its own
        // features (Â is diagonal).
        let features = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let g = GraphData::new(features, &[]);
        let layer = GcnLayer::new(&mut rng, 2, 3, Activation::Identity);
        let out = layer.forward(&g.norm_adjacency, &g.features);
        // Row 0 = W row 0 + bias, row 1 = W row 1 + bias.
        for c in 0..3 {
            assert!((out[(0, c)] - layer.weight[(0, c)]).abs() < 1e-12);
            assert!((out[(1, c)] - layer.weight[(1, c)]).abs() < 1e-12);
        }
    }
}
