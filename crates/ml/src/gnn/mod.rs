//! Graph neural network: GCN layers + SimGNN-style attention pooling.
//!
//! The paper's GNN (Section 4.4, Figure 10) has three stages:
//!
//! 1. **Node-level embedding** — graph convolution networks (Kipf &
//!    Welling): `H' = act(Â H W + b)` with the symmetric-normalized
//!    adjacency `Â = D^-1/2 (A + I) D^-1/2`.
//! 2. **Graph embedding** — an attention layer where each node's weight is
//!    its similarity to a learned nonlinear transform of the mean node
//!    embedding (the "global context"), as in SimGNN (Bai et al. 2019).
//! 3. **Curve prediction** — a fully-connected head mapping the graph
//!    embedding to the two PCC parameters.
//!
//! All gradients are computed manually; [`GnnModel::backward`] mirrors the
//! forward pass in reverse.

mod attention;
mod gcn;
mod graph;
mod model;

pub use attention::{AttentionCache, AttentionPool};
pub use gcn::{GcnCache, GcnLayer};
pub use graph::GraphData;
pub use model::{GnnCache, GnnGrads, GnnModel, GnnOptimizer};
