//! The full GNN: stacked GCN layers, attention pooling, and an MLP head.

use super::attention::{AttentionCache, AttentionPool};
use super::gcn::{GcnCache, GcnLayer};
use super::graph::GraphData;
use crate::matrix::Matrix;
use crate::nn::{Activation, Mlp, MlpCache};
use crate::optim::{Adam, AdamConfig, ParamId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// GNN architecture: `GCN+ -> attention pool -> MLP head`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GnnModel {
    gcn_layers: Vec<GcnLayer>,
    pool: AttentionPool,
    head: Mlp,
}

/// Forward cache for one graph.
#[derive(Debug, Clone)]
pub struct GnnCache {
    gcn_caches: Vec<GcnCache>,
    pool_cache: AttentionCache,
    head_cache: MlpCache,
}

/// Gradients for every parameter tensor in the model.
#[derive(Debug, Clone)]
pub struct GnnGrads {
    /// `(dW, db)` per GCN layer.
    pub gcn: Vec<(Matrix, Matrix)>,
    /// Gradient of the attention context weight.
    pub pool: Matrix,
    /// `(dW, db)` per head layer.
    pub head: Vec<(Matrix, Matrix)>,
}

impl GnnGrads {
    /// Zero-initialized gradients matching a model's shapes.
    pub fn zeros_like(model: &GnnModel) -> Self {
        Self {
            gcn: model
                .gcn_layers
                .iter()
                .map(|l| {
                    (
                        Matrix::zeros(l.weight.rows(), l.weight.cols()),
                        Matrix::zeros(1, l.bias.cols()),
                    )
                })
                .collect(),
            pool: Matrix::zeros(model.pool.dim(), model.pool.dim()),
            head: model
                .head
                .layers()
                .iter()
                .map(|l| {
                    (
                        Matrix::zeros(l.weight.rows(), l.weight.cols()),
                        Matrix::zeros(1, l.bias.cols()),
                    )
                })
                .collect(),
        }
    }

    /// Accumulate another gradient set (for mini-batch averaging).
    pub fn accumulate(&mut self, other: &GnnGrads) {
        for ((w, b), (ow, ob)) in self.gcn.iter_mut().zip(&other.gcn) {
            w.axpy(1.0, ow);
            b.axpy(1.0, ob);
        }
        self.pool.axpy(1.0, &other.pool);
        for ((w, b), (ow, ob)) in self.head.iter_mut().zip(&other.head) {
            w.axpy(1.0, ow);
            b.axpy(1.0, ob);
        }
    }

    /// Scale all gradients (e.g. by `1/batch_size`).
    pub fn scale(&mut self, alpha: f64) {
        for (w, b) in &mut self.gcn {
            w.scale_inplace(alpha);
            b.scale_inplace(alpha);
        }
        self.pool.scale_inplace(alpha);
        for (w, b) in &mut self.head {
            w.scale_inplace(alpha);
            b.scale_inplace(alpha);
        }
    }
}

/// Adam optimizer plus the registered parameter ids for a [`GnnModel`].
#[derive(Debug, Clone)]
pub struct GnnOptimizer {
    adam: Adam,
    gcn_ids: Vec<(ParamId, ParamId)>,
    pool_id: ParamId,
    head_ids: Vec<(ParamId, ParamId)>,
}

impl GnnModel {
    /// Build a GNN.
    ///
    /// * `feature_dim` — per-node input features.
    /// * `gcn_dims` — output dims of each GCN layer (at least one).
    /// * `head_hidden` — hidden sizes of the MLP head.
    /// * `out_dim` — final output size (2 for the PCC parameters).
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        feature_dim: usize,
        gcn_dims: &[usize],
        head_hidden: &[usize],
        out_dim: usize,
    ) -> Self {
        assert!(!gcn_dims.is_empty(), "GnnModel::new: need at least one GCN layer");
        let mut gcn_layers = Vec::with_capacity(gcn_dims.len());
        let mut in_dim = feature_dim;
        for &dim in gcn_dims {
            gcn_layers.push(GcnLayer::new(rng, in_dim, dim, Activation::Relu));
            in_dim = dim;
        }
        let pool = AttentionPool::new(rng, in_dim);
        let mut head_sizes = vec![in_dim];
        head_sizes.extend_from_slice(head_hidden);
        head_sizes.push(out_dim);
        let head = Mlp::new(rng, &head_sizes, Activation::Relu, Activation::Identity);
        Self { gcn_layers, pool, head }
    }

    /// Total trainable parameters (paper Table 7 reports 19,210 for their
    /// configuration).
    pub fn param_count(&self) -> usize {
        self.gcn_layers.iter().map(GcnLayer::param_count).sum::<usize>()
            + self.pool.param_count()
            + self.head.param_count()
    }

    /// Output dimensionality of the head.
    pub fn out_dim(&self) -> usize {
        self.head.out_dim()
    }

    /// Layer-by-layer summary: `(stage, layer description, parameters)` —
    /// the paper's Figure 10 stages (node-level embedding via GCN, graph
    /// embedding via attention, curve prediction via the FC head).
    pub fn layer_summary(&self) -> Vec<(String, String, usize)> {
        let mut rows = Vec::new();
        for (i, layer) in self.gcn_layers.iter().enumerate() {
            rows.push((
                "node embedding".to_string(),
                format!(
                    "GCN {} ({} -> {}, {:?})",
                    i + 1,
                    layer.weight.rows(),
                    layer.weight.cols(),
                    layer.activation
                ),
                layer.param_count(),
            ));
        }
        rows.push((
            "graph embedding".to_string(),
            format!("attention pool (context {}x{})", self.pool.dim(), self.pool.dim()),
            self.pool.param_count(),
        ));
        for (i, layer) in self.head.layers().iter().enumerate() {
            rows.push((
                "curve prediction".to_string(),
                format!("FC {} ({} -> {})", i + 1, layer.in_dim(), layer.out_dim()),
                layer.param_count(),
            ));
        }
        rows
    }

    /// Forward pass for one graph; returns a `1 x out_dim` row.
    pub fn forward(&self, graph: &GraphData) -> Matrix {
        let mut h = graph.features.clone();
        for layer in &self.gcn_layers {
            h = layer.forward(&graph.norm_adjacency, &h);
        }
        let embedding = self.pool.forward(&h);
        self.head.forward(&embedding)
    }

    /// Per-node attention weights for one graph (the pooling layer's
    /// node-importance scores, in `[0, 1]`). Exposes the interpretability
    /// the paper attributes to the attention mechanism: which operators
    /// the model focuses on when predicting.
    pub fn attention_weights(&self, graph: &GraphData) -> Vec<f64> {
        let mut h = graph.features.clone();
        for layer in &self.gcn_layers {
            h = layer.forward(&graph.norm_adjacency, &h);
        }
        let (_, cache) = self.pool.forward_cached(&h);
        AttentionPool::weights_of(&cache).to_vec()
    }

    /// Forward pass with caches for [`GnnModel::backward`].
    pub fn forward_cached(&self, graph: &GraphData) -> (Matrix, GnnCache) {
        let mut h = graph.features.clone();
        let mut gcn_caches = Vec::with_capacity(self.gcn_layers.len());
        for layer in &self.gcn_layers {
            let (out, cache) = layer.forward_cached(&graph.norm_adjacency, &h);
            gcn_caches.push(cache);
            h = out;
        }
        let (embedding, pool_cache) = self.pool.forward_cached(&h);
        let (out, head_cache) = self.head.forward_cached(&embedding);
        (out, GnnCache { gcn_caches, pool_cache, head_cache })
    }

    /// Backward pass given `d_output: 1 x out_dim`.
    pub fn backward(&self, graph: &GraphData, cache: &GnnCache, d_output: &Matrix) -> GnnGrads {
        let head_grads = self.head.backward(&cache.head_cache, d_output);
        let (d_wc, mut d_h) = self.pool.backward(&cache.pool_cache, &head_grads.input);
        let mut gcn_grads = Vec::with_capacity(self.gcn_layers.len());
        for (i, layer) in self.gcn_layers.iter().enumerate().rev() {
            let (dw, db, dh_prev) =
                layer.backward(&graph.norm_adjacency, &cache.gcn_caches[i], &d_h);
            gcn_grads.push((dw, db));
            d_h = dh_prev;
        }
        gcn_grads.reverse();
        GnnGrads { gcn: gcn_grads, pool: d_wc, head: head_grads.layers }
    }

    /// Create an Adam optimizer registered against this model's parameters.
    pub fn make_optimizer(&self, config: AdamConfig) -> GnnOptimizer {
        let mut adam = Adam::new(config);
        let gcn_ids = self
            .gcn_layers
            .iter()
            .map(|l| {
                let w = adam.register(l.weight.rows(), l.weight.cols());
                let b = adam.register(1, l.bias.cols());
                (w, b)
            })
            .collect();
        let pool_id = adam.register(self.pool.dim(), self.pool.dim());
        let head_ids = self.head.register_params(&mut adam);
        GnnOptimizer { adam, gcn_ids, pool_id, head_ids }
    }

    /// Apply one optimizer step.
    pub fn apply_grads(&mut self, opt: &mut GnnOptimizer, grads: GnnGrads) {
        let mut pairs: Vec<(ParamId, &mut Matrix, Matrix)> = Vec::new();
        for (layer, (&(wid, bid), (gw, gb))) in
            self.gcn_layers.iter_mut().zip(opt.gcn_ids.iter().zip(grads.gcn))
        {
            pairs.push((wid, &mut layer.weight, gw));
            pairs.push((bid, &mut layer.bias, gb));
        }
        pairs.push((opt.pool_id, &mut self.pool.context_weight, grads.pool));
        for (layer, (&(wid, bid), (gw, gb))) in
            self.head.layers_mut().iter_mut().zip(opt.head_ids.iter().zip(grads.head))
        {
            pairs.push((wid, &mut layer.weight, gw));
            pairs.push((bid, &mut layer.bias, gb));
        }
        opt.adam.step(&mut pairs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_graph(rng: &mut StdRng, n: usize, dim: usize) -> GraphData {
        let features = Matrix::from_fn(n, dim, |_, _| rng.gen_range(-1.0..1.0));
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        GraphData::new(features, &edges)
    }

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = GnnModel::new(&mut rng, 6, &[8, 8], &[16], 2);
        let g = toy_graph(&mut rng, 5, 6);
        let out = model.forward(&g);
        assert_eq!(out.shape(), (1, 2));
    }

    #[test]
    fn param_count_arithmetic() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = GnnModel::new(&mut rng, 4, &[8], &[6], 2);
        // GCN: 4*8+8 = 40; pool: 8*8 = 64; head: 8*6+6 + 6*2+2 = 68.
        assert_eq!(model.param_count(), 40 + 64 + 68);
    }

    /// Gradient check through the entire network.
    #[test]
    fn full_gradient_check() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = GnnModel::new(&mut rng, 3, &[4], &[5], 2);
        let g = toy_graph(&mut rng, 4, 3);

        let loss = |model: &GnnModel| -> f64 {
            model.forward(&g).as_slice().iter().map(|v| v * v).sum()
        };
        let (out, cache) = model.forward_cached(&g);
        let grads = model.backward(&g, &cache, &out.scale(2.0));

        let h = 1e-6;
        // GCN layer 0 weight.
        for i in 0..model.gcn_layers[0].weight.len() {
            let orig = model.gcn_layers[0].weight.as_slice()[i];
            model.gcn_layers[0].weight.as_mut_slice()[i] = orig + h;
            let up = loss(&model);
            model.gcn_layers[0].weight.as_mut_slice()[i] = orig - h;
            let down = loss(&model);
            model.gcn_layers[0].weight.as_mut_slice()[i] = orig;
            let numeric = (up - down) / (2.0 * h);
            assert!(
                (numeric - grads.gcn[0].0.as_slice()[i]).abs() < 1e-4,
                "gcn dW[{i}]: {numeric} vs {}",
                grads.gcn[0].0.as_slice()[i]
            );
        }
        // Pool weight.
        for i in 0..model.pool.context_weight.len() {
            let orig = model.pool.context_weight.as_slice()[i];
            model.pool.context_weight.as_mut_slice()[i] = orig + h;
            let up = loss(&model);
            model.pool.context_weight.as_mut_slice()[i] = orig - h;
            let down = loss(&model);
            model.pool.context_weight.as_mut_slice()[i] = orig;
            let numeric = (up - down) / (2.0 * h);
            assert!(
                (numeric - grads.pool.as_slice()[i]).abs() < 1e-4,
                "pool dWc[{i}]"
            );
        }
    }

    /// Train on a toy regression: output should fit the target for a fixed
    /// set of small graphs.
    #[test]
    fn learns_graph_regression() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = GnnModel::new(&mut rng, 3, &[8], &[8], 1);
        // Target: sum of all node features (a graph-level statistic).
        let graphs: Vec<GraphData> =
            (0..20).map(|i| toy_graph(&mut rng, 3 + i % 4, 3)).collect();
        let targets: Vec<f64> = graphs.iter().map(|g| g.features.sum()).collect();

        let mut opt = model.make_optimizer(AdamConfig { learning_rate: 0.01, ..Default::default() });
        let total_loss = |model: &GnnModel| -> f64 {
            graphs
                .iter()
                .zip(&targets)
                .map(|(g, &t)| {
                    let e = model.forward(g)[(0, 0)] - t;
                    e * e
                })
                .sum::<f64>()
                / graphs.len() as f64
        };
        let initial = total_loss(&model);
        for _ in 0..300 {
            let mut batch_grads = GnnGrads::zeros_like(&model);
            for (g, &t) in graphs.iter().zip(&targets) {
                let (out, cache) = model.forward_cached(g);
                let d = Matrix::from_vec(1, 1, vec![2.0 * (out[(0, 0)] - t)]);
                batch_grads.accumulate(&model.backward(g, &cache, &d));
            }
            batch_grads.scale(1.0 / graphs.len() as f64);
            model.apply_grads(&mut opt, batch_grads);
        }
        let final_loss = total_loss(&model);
        assert!(
            final_loss < initial * 0.05,
            "GNN should fit: {initial} -> {final_loss}"
        );
    }
}
