//! Distribution sampling built on top of `rand`.
//!
//! The workspace's sanctioned dependency set includes `rand` but not
//! `rand_distr`, so the handful of distributions the workload generator and
//! model initializers need are implemented here: standard normal via the
//! Marsaglia polar method, lognormal, bounded Pareto (for right-skewed job
//! populations), and truncated variants.

use rand::Rng;

/// Sample a standard normal `N(0, 1)` using the Marsaglia polar method.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Sample `N(mean, std_dev^2)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Sample a lognormal with the given parameters of the *underlying* normal.
///
/// If `X ~ LogNormal(mu, sigma)` then `ln X ~ N(mu, sigma^2)`; the median of
/// `X` is `exp(mu)`.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Sample a Pareto distribution with scale `x_min > 0` and shape `alpha > 0`.
///
/// Heavy right tail; used for job-size populations (the paper reports job
/// run times from 33 s to 21 h and token peaks from 1 to 6,287 — strongly
/// right-skewed).
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, x_min: f64, alpha: f64) -> f64 {
    debug_assert!(x_min > 0.0 && alpha > 0.0);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    x_min / u.powf(1.0 / alpha)
}

/// Sample a lognormal, rejecting values outside `[lo, hi]`.
///
/// Falls back to clamping after 64 rejections so pathological parameter
/// choices cannot loop forever.
pub fn lognormal_clamped<R: Rng + ?Sized>(
    rng: &mut R,
    mu: f64,
    sigma: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    debug_assert!(lo <= hi);
    for _ in 0..64 {
        let x = lognormal(rng, mu, sigma);
        if (lo..=hi).contains(&x) {
            return x;
        }
    }
    lognormal(rng, mu, sigma).clamp(lo, hi)
}

/// Sample an exponential with the given rate `lambda > 0`.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
    debug_assert!(lambda > 0.0);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() / lambda
}

/// Weighted index sampling: returns `i` with probability `weights[i] / sum`.
///
/// # Panics
/// Panics if `weights` is empty or sums to a non-positive value.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(
        !weights.is_empty() && total > 0.0,
        "weighted_index: weights must be non-empty with positive sum"
    );
    let mut target = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

/// Fisher–Yates shuffle of a slice.
pub fn shuffle<R: Rng + ?Sized, T>(rng: &mut R, xs: &mut [T]) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

/// Sample `k` distinct indices from `0..n` (reservoir sampling), in
/// arbitrary order. Returns all of `0..n` if `k >= n`.
pub fn sample_indices<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    if k >= n {
        return (0..n).collect();
    }
    let mut reservoir: Vec<usize> = (0..k).collect();
    for i in k..n {
        let j = rng.gen_range(0..=i);
        if j < k {
            reservoir[j] = i;
        }
    }
    reservoir
}

/// Derive an independent child seed from `base` for task `index`
/// (splitmix64 finalizer over the golden-ratio-mixed index).
///
/// Parallel code MUST pre-split seeds per task index — never share one
/// RNG stream across tasks — so that results stay bit-identical to
/// sequential execution regardless of scheduling (the `tasq-par`
/// determinism contract).
pub fn split_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn normal_moments_roughly_match() {
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut r, 5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let mut r = rng();
        let n = 20_001;
        let mut xs: Vec<f64> = (0..n).map(|_| lognormal(&mut r, 1.5, 0.8)).collect();
        xs.sort_by(|a, b| a.total_cmp(b));
        let median = xs[n / 2];
        let expected = 1.5f64.exp();
        assert!((median / expected - 1.0).abs() < 0.05, "median {median} vs {expected}");
    }

    #[test]
    fn pareto_respects_min_and_skews_right() {
        let mut r = rng();
        let xs: Vec<f64> = (0..10_000).map(|_| pareto(&mut r, 2.0, 1.5)).collect();
        assert!(xs.iter().all(|&x| x >= 2.0));
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(mean > median, "right skew: mean {mean} should exceed median {median}");
    }

    #[test]
    fn lognormal_clamped_stays_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = lognormal_clamped(&mut r, 0.0, 3.0, 0.5, 10.0);
            assert!((0.5..=10.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut r = rng();
        let n = 20_000;
        let mean = (0..n).map(|_| exponential(&mut r, 0.25)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn weighted_index_distribution() {
        let mut r = rng();
        let weights = [1.0, 3.0, 6.0];
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[weighted_index(&mut r, &weights)] += 1;
        }
        let total = 30_000.0;
        assert!((counts[0] as f64 / total - 0.1).abs() < 0.02);
        assert!((counts[1] as f64 / total - 0.3).abs() < 0.02);
        assert!((counts[2] as f64 / total - 0.6).abs() < 0.02);
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut r = rng();
        let idx = sample_indices(&mut r, 100, 10);
        assert_eq!(idx.len(), 10);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(sorted.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_indices_k_ge_n_returns_all() {
        let mut r = rng();
        let idx = sample_indices(&mut r, 5, 10);
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = rng();
        let mut xs: Vec<u32> = (0..50).collect();
        shuffle(&mut r, &mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
