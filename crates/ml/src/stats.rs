//! Statistics helpers: order statistics, the two-sample Kolmogorov–Smirnov
//! test (used to validate job-subset selection, paper Section 5.1), and the
//! error metrics reported in the paper's evaluation (MAE of curve
//! parameters, median/mean absolute percentage error of run times).

/// Arithmetic mean; 0.0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance; 0.0 for inputs shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median (linear interpolation between the two middle order statistics for
/// even lengths); 0.0 for empty input.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Quantile with linear interpolation; `q` is clamped to `[0, 1]`.
/// Returns 0.0 for empty input.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    quantile_sorted(&sorted, q)
}

/// Quantile over data already sorted ascending.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Mean absolute error between paired predictions and targets.
///
/// # Panics
/// Panics on length mismatch.
pub fn mean_absolute_error(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "mean_absolute_error: length mismatch");
    mean(&predictions.iter().zip(targets).map(|(p, t)| (p - t).abs()).collect::<Vec<_>>())
}

/// Absolute percentage errors `|pred - target| / |target|`, one per pair.
/// Pairs whose target is (numerically) zero are skipped — an exact-zero
/// test would still divide by denormal targets and blow the ratio up.
pub fn absolute_percentage_errors(predictions: &[f64], targets: &[f64]) -> Vec<f64> {
    assert_eq!(predictions.len(), targets.len(), "absolute_percentage_errors: length mismatch");
    predictions
        .iter()
        .zip(targets)
        .filter(|(_, t)| t.abs() > 1e-12)
        .map(|(p, t)| ((p - t) / t).abs())
        .collect()
}

/// Median absolute percentage error (the paper's "Median AE" for run times),
/// as a fraction (0.39 == 39%).
pub fn median_ape(predictions: &[f64], targets: &[f64]) -> f64 {
    median(&absolute_percentage_errors(predictions, targets))
}

/// Mean absolute percentage error, as a fraction.
pub fn mean_ape(predictions: &[f64], targets: &[f64]) -> f64 {
    mean(&absolute_percentage_errors(predictions, targets))
}

/// Empirical CDF evaluated at `x` over the sample `xs`.
pub fn empirical_cdf(xs: &[f64], x: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().filter(|&&v| v <= x).count() as f64 / xs.len() as f64
}

/// Result of a two-sample Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KsResult {
    /// The KS statistic: the supremum distance between the two empirical
    /// CDFs.
    pub statistic: f64,
    /// Asymptotic p-value (Kolmogorov distribution approximation).
    pub p_value: f64,
}

/// Two-sample Kolmogorov–Smirnov test.
///
/// Used to check that a stratified job subset matches the population
/// distribution (lower statistic = closer match). Returns a statistic of 1
/// and p-value of 0 when either sample is empty.
pub fn ks_two_sample(sample_a: &[f64], sample_b: &[f64]) -> KsResult {
    if sample_a.is_empty() || sample_b.is_empty() {
        return KsResult { statistic: 1.0, p_value: 0.0 };
    }
    let mut a: Vec<f64> = sample_a.to_vec();
    let mut b: Vec<f64> = sample_b.to_vec();
    a.sort_by(|x, y| x.total_cmp(y));
    b.sort_by(|x, y| x.total_cmp(y));

    let (na, nb) = (a.len() as f64, b.len() as f64);
    let d = ks_statistic(&a, &b);

    let en = (na * nb / (na + nb)).sqrt();
    let lambda = (en + 0.12 + 0.11 / en) * d;
    KsResult { statistic: d, p_value: kolmogorov_survival(lambda) }
}

/// The raw KS statistic over two ascending-sorted samples.
///
/// Ties are handled by advancing both cursors past the tied value before
/// measuring the CDF gap, so identical samples yield a statistic of zero.
fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < a.len() && j < b.len() {
        let v = a[i].min(b[j]);
        while i < a.len() && a[i] <= v {
            i += 1;
        }
        while j < b.len() && b[j] <= v {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

/// Survival function of the Kolmogorov distribution,
/// `Q(lambda) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2)`.
fn kolmogorov_survival(lambda: f64) -> f64 {
    if lambda < 1e-3 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// A bootstrap confidence interval for a statistic of a sample.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BootstrapCi {
    /// The statistic on the full sample.
    pub point: f64,
    /// Lower bound of the interval.
    pub lower: f64,
    /// Upper bound of the interval.
    pub upper: f64,
}

/// Percentile-bootstrap confidence interval for an arbitrary statistic.
///
/// Resamples `xs` with replacement `iterations` times (deterministic given
/// `seed`), computes `statistic` on each resample, and returns the
/// `[alpha/2, 1-alpha/2]` percentile interval (e.g. `alpha = 0.05` for a
/// 95% CI). Returns a degenerate zero interval for empty input.
pub fn bootstrap_ci(
    xs: &[f64],
    statistic: impl Fn(&[f64]) -> f64,
    iterations: usize,
    alpha: f64,
    seed: u64,
) -> BootstrapCi {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    if xs.is_empty() {
        return BootstrapCi { point: 0.0, lower: 0.0, upper: 0.0 };
    }
    let point = statistic(xs);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut resample = vec![0.0; xs.len()];
    let mut stats: Vec<f64> = (0..iterations.max(1))
        .map(|_| {
            for slot in &mut resample {
                *slot = xs[rng.gen_range(0..xs.len())];
            }
            statistic(&resample)
        })
        .collect();
    stats.sort_by(|a, b| a.total_cmp(b));
    let alpha = alpha.clamp(1e-6, 0.5);
    BootstrapCi {
        point,
        lower: quantile_sorted(&stats, alpha / 2.0),
        upper: quantile_sorted(&stats, 1.0 - alpha / 2.0),
    }
}

/// Histogram of `xs` into `bins` equal-width buckets over `[lo, hi]`.
/// Values outside the range are clamped into the edge buckets.
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0 && hi > lo, "histogram: invalid configuration");
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &x in xs {
        let idx = (((x - lo) / width).floor() as isize).clamp(0, bins as isize - 1) as usize;
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_basics() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile(&xs, 0.25), 2.5);
        assert_eq!(quantile(&xs, 0.0), 0.0);
        assert_eq!(quantile(&xs, 1.0), 10.0);
    }

    #[test]
    fn mae_and_ape() {
        let pred = [11.0, 18.0];
        let target = [10.0, 20.0];
        assert!((mean_absolute_error(&pred, &target) - 1.5).abs() < 1e-12);
        let apes = absolute_percentage_errors(&pred, &target);
        assert!((apes[0] - 0.1).abs() < 1e-12);
        assert!((apes[1] - 0.1).abs() < 1e-12);
        assert!((median_ape(&pred, &target) - 0.1).abs() < 1e-12);
        assert!((mean_ape(&pred, &target) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn ape_skips_zero_targets() {
        let apes = absolute_percentage_errors(&[1.0, 5.0], &[0.0, 10.0]);
        assert_eq!(apes.len(), 1);
        assert!((apes[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ks_identical_samples_is_zero() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let r = ks_two_sample(&xs, &xs);
        assert!(r.statistic < 1e-12);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn ks_disjoint_samples_is_one() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = (100..150).map(|i| i as f64).collect();
        let r = ks_two_sample(&a, &b);
        assert!((r.statistic - 1.0).abs() < 1e-12);
        assert!(r.p_value < 1e-6);
    }

    #[test]
    fn ks_detects_shift() {
        // Same shape, shifted: statistic should be meaningful but < 1.
        let a: Vec<f64> = (0..200).map(|i| i as f64 * 0.1).collect();
        let b: Vec<f64> = (0..200).map(|i| i as f64 * 0.1 + 5.0).collect();
        let r = ks_two_sample(&a, &b);
        assert!(r.statistic > 0.2 && r.statistic <= 1.0);
    }

    #[test]
    fn ks_empty_sample_degenerate() {
        let r = ks_two_sample(&[], &[1.0]);
        assert_eq!(r.statistic, 1.0);
        assert_eq!(r.p_value, 0.0);
    }

    #[test]
    fn empirical_cdf_monotone() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(empirical_cdf(&xs, 0.5), 0.0);
        assert_eq!(empirical_cdf(&xs, 2.0), 0.5);
        assert_eq!(empirical_cdf(&xs, 10.0), 1.0);
    }

    #[test]
    fn histogram_counts() {
        let xs = [0.1, 0.2, 0.55, 0.9, 1.5, -0.5];
        let h = histogram(&xs, 0.0, 1.0, 2);
        // -0.5 clamps into bucket 0; 1.5 clamps into bucket 1.
        assert_eq!(h, vec![3, 3]);
    }

    #[test]
    fn bootstrap_ci_brackets_the_median() {
        // Sample from a known distribution; the CI must contain the point
        // estimate and be deterministic given the seed.
        let xs: Vec<f64> = (0..200).map(|i| ((i * 37) % 100) as f64).collect();
        let ci = bootstrap_ci(&xs, median, 500, 0.05, 7);
        assert!(ci.lower <= ci.point && ci.point <= ci.upper, "{ci:?}");
        assert!(ci.upper - ci.lower < 30.0, "CI absurdly wide: {ci:?}");
        let again = bootstrap_ci(&xs, median, 500, 0.05, 7);
        assert_eq!(ci, again);
    }

    #[test]
    fn bootstrap_ci_narrows_with_sample_size() {
        let small: Vec<f64> = (0..20).map(|i| (i % 10) as f64).collect();
        let large: Vec<f64> = (0..2000).map(|i| (i % 10) as f64).collect();
        let ci_small = bootstrap_ci(&small, mean, 400, 0.05, 1);
        let ci_large = bootstrap_ci(&large, mean, 400, 0.05, 1);
        assert!(
            ci_large.upper - ci_large.lower < ci_small.upper - ci_small.lower,
            "{ci_small:?} vs {ci_large:?}"
        );
    }

    #[test]
    fn bootstrap_ci_empty_is_degenerate() {
        let ci = bootstrap_ci(&[], median, 100, 0.05, 0);
        assert_eq!((ci.point, ci.lower, ci.upper), (0.0, 0.0, 0.0));
    }

    #[test]
    fn variance_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }
}
