//! Gradient-boosted regression trees ("XGBoost from scratch").
//!
//! The paper's point-prediction baseline trains XGBoost with Gamma
//! regression trees on job run time (Section 4.4). This module implements
//! the same algorithm family: second-order boosting (Chen & Guestrin 2016)
//! with histogram-based split finding, shrinkage, L2 leaf regularization,
//! minimum-gain pruning, and row subsampling. Two objectives are provided —
//! squared error, and Gamma deviance with a log link (predictions are
//! `exp(raw score)`, appropriate for strictly positive right-skewed targets
//! like run times).

mod binning;
mod booster;
mod objective;
mod tree;

pub use binning::{BinMapper, BinnedDataset};
pub use booster::{Booster, BoosterCheckpoint, BoosterConfig};
pub use objective::Objective;
pub use tree::Tree;
