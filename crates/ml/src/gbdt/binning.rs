//! Quantile binning of features for histogram-based split finding.
//!
//! Each feature is discretized into at most 256 bins whose edges are
//! empirical quantiles of the training data; trees then search splits over
//! bin boundaries instead of raw values, which makes split finding
//! `O(samples + bins)` per feature per node.

use serde::{Deserialize, Serialize};

/// Maximum number of bins per feature (bin indices fit in a `u8`).
pub const MAX_BINS: usize = 256;

/// Per-feature mapping from raw values to bin indices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BinMapper {
    /// For each feature, the ascending upper-edge value of each bin except
    /// the last (a value `v` falls in the first bin whose edge is `>= v`).
    edges: Vec<Vec<f64>>,
}

impl BinMapper {
    /// Build a mapper from training rows (`n x f`, row-major slices).
    ///
    /// # Panics
    /// Panics if rows are ragged or `max_bins` is not in `2..=256`.
    pub fn fit(rows: &[Vec<f64>], max_bins: usize) -> Self {
        assert!((2..=MAX_BINS).contains(&max_bins), "max_bins must be in 2..=256");
        let num_features = rows.first().map_or(0, Vec::len);
        let mut edges = Vec::with_capacity(num_features);
        for f in 0..num_features {
            let mut values: Vec<f64> = rows
                .iter()
                .map(|r| {
                    assert_eq!(r.len(), num_features, "BinMapper::fit: ragged rows");
                    r[f]
                })
                .collect();
            values.sort_by(|a, b| a.total_cmp(b));
            values.dedup();
            let feature_edges = if values.len() <= max_bins {
                // One bin per distinct value: edges at midpoints.
                values.windows(2).map(|w| 0.5 * (w[0] + w[1])).collect()
            } else {
                // Quantile edges.
                let mut e = Vec::with_capacity(max_bins - 1);
                for b in 1..max_bins {
                    let q = b as f64 / max_bins as f64;
                    let idx = ((values.len() - 1) as f64 * q).round() as usize;
                    e.push(values[idx]);
                }
                e.dedup_by(|a, b| a == b);
                e
            };
            edges.push(feature_edges);
        }
        Self { edges }
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.edges.len()
    }

    /// Number of bins for feature `f`.
    pub fn num_bins(&self, f: usize) -> usize {
        self.edges[f].len() + 1
    }

    /// Bin index of `value` for feature `f`.
    #[inline]
    pub fn bin(&self, f: usize, value: f64) -> u8 {
        let edges = &self.edges[f];
        // Binary search for the first edge >= value.
        let idx = edges.partition_point(|&e| e < value);
        idx as u8
    }

    /// The raw-value threshold corresponding to "bin index <= b" for
    /// feature `f`: values `<= threshold` go left.
    pub fn threshold_value(&self, f: usize, b: u8) -> f64 {
        let edges = &self.edges[f];
        let i = b as usize;
        if i < edges.len() {
            edges[i]
        } else {
            f64::INFINITY
        }
    }
}

/// A dataset pre-binned for training: bin indices in feature-major layout
/// (`feature * n + sample`), so per-feature histogram accumulation streams
/// contiguous memory.
#[derive(Debug, Clone)]
pub struct BinnedDataset {
    bins: Vec<u8>,
    num_samples: usize,
    num_features: usize,
}

impl BinnedDataset {
    /// Bin all rows with the given mapper.
    pub fn new(mapper: &BinMapper, rows: &[Vec<f64>]) -> Self {
        let num_samples = rows.len();
        let num_features = mapper.num_features();
        let mut bins = vec![0u8; num_samples * num_features];
        for (s, row) in rows.iter().enumerate() {
            for f in 0..num_features {
                bins[f * num_samples + s] = mapper.bin(f, row[f]);
            }
        }
        Self { bins, num_samples, num_features }
    }

    /// Number of samples.
    pub fn num_samples(&self) -> usize {
        self.num_samples
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Bin of sample `s` for feature `f`.
    #[inline]
    pub fn bin(&self, f: usize, s: usize) -> u8 {
        self.bins[f * self.num_samples + s]
    }

    /// Contiguous bins of all samples for feature `f`.
    #[inline]
    pub fn feature_bins(&self, f: usize) -> &[u8] {
        &self.bins[f * self.num_samples..(f + 1) * self.num_samples]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn few_distinct_values_get_exact_bins() {
        let rows = vec![vec![1.0], vec![2.0], vec![3.0], vec![2.0]];
        let mapper = BinMapper::fit(&rows, 16);
        assert_eq!(mapper.num_bins(0), 3);
        assert_eq!(mapper.bin(0, 1.0), 0);
        assert_eq!(mapper.bin(0, 2.0), 1);
        assert_eq!(mapper.bin(0, 3.0), 2);
        // Unseen values land in the right bins.
        assert_eq!(mapper.bin(0, 0.0), 0);
        assert_eq!(mapper.bin(0, 2.4), 1);
        assert_eq!(mapper.bin(0, 99.0), 2);
    }

    #[test]
    fn thresholds_separate_bins() {
        let rows = vec![vec![1.0], vec![2.0], vec![3.0]];
        let mapper = BinMapper::fit(&rows, 16);
        let t0 = mapper.threshold_value(0, 0);
        assert!((1.0..2.0).contains(&t0));
        assert_eq!(mapper.threshold_value(0, 2), f64::INFINITY);
    }

    #[test]
    fn many_values_use_quantile_edges() {
        let rows: Vec<Vec<f64>> = (0..10_000).map(|i| vec![i as f64]).collect();
        let mapper = BinMapper::fit(&rows, 64);
        assert!(mapper.num_bins(0) <= 64);
        assert!(mapper.num_bins(0) >= 32);
        // Bins should be roughly equally populated.
        let mut counts = vec![0usize; mapper.num_bins(0)];
        for row in &rows {
            counts[mapper.bin(0, row[0]) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < min * 3 + 10, "unbalanced bins: {min}..{max}");
    }

    #[test]
    fn binned_dataset_layout() {
        let rows = vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]];
        let mapper = BinMapper::fit(&rows, 8);
        let ds = BinnedDataset::new(&mapper, &rows);
        assert_eq!(ds.num_samples(), 3);
        assert_eq!(ds.num_features(), 2);
        for s in 0..3 {
            assert_eq!(ds.bin(0, s), s as u8);
            assert_eq!(ds.bin(1, s), s as u8);
        }
        assert_eq!(ds.feature_bins(0), &[0, 1, 2]);
    }

    #[test]
    fn constant_feature_single_bin() {
        let rows = vec![vec![5.0]; 10];
        let mapper = BinMapper::fit(&rows, 8);
        assert_eq!(mapper.num_bins(0), 1);
        assert_eq!(mapper.bin(0, 5.0), 0);
        assert_eq!(mapper.bin(0, -1.0), 0);
    }
}
