//! The gradient-boosting driver: round loop, shrinkage, subsampling.

use super::binning::{BinMapper, BinnedDataset};
use super::objective::Objective;
use super::tree::{GrowthParams, Tree};
use crate::rand_ext;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`Booster::train`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BoosterConfig {
    /// Training objective.
    pub objective: Objective,
    /// Number of boosting rounds (trees).
    pub num_rounds: usize,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// Shrinkage (eta).
    pub learning_rate: f64,
    /// L2 regularization on leaf weights.
    pub lambda: f64,
    /// Minimum loss reduction to make a split.
    pub min_split_gain: f64,
    /// Minimum hessian sum per child.
    pub min_child_weight: f64,
    /// Fraction of rows sampled per round (1.0 = no subsampling).
    pub subsample: f64,
    /// Number of histogram bins per feature.
    pub max_bins: usize,
    /// RNG seed for subsampling.
    pub seed: u64,
}

impl Default for BoosterConfig {
    fn default() -> Self {
        Self {
            objective: Objective::SquaredError,
            num_rounds: 100,
            max_depth: 6,
            learning_rate: 0.1,
            lambda: 1.0,
            min_split_gain: 0.0,
            min_child_weight: 1.0,
            subsample: 1.0,
            max_bins: 64,
            seed: 0,
        }
    }
}

/// Mid-training state captured after each completed boosting round.
///
/// Everything the round loop carries across iterations is here — the
/// completed-round count, the subsampling RNG's raw state, the per-row
/// margins, the trees grown so far and the loss curve — while the
/// binned dataset and gradients are recomputed deterministically from
/// the inputs. Feeding a checkpoint back into
/// [`Booster::train_resumable_with_pool`] replays the remaining rounds
/// bit-identically to a run that was never interrupted.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BoosterCheckpoint {
    /// Boosting rounds completed.
    pub round: usize,
    /// Raw subsampling-RNG state after `round` rounds.
    pub rng_state: [u64; 4],
    /// Base margin (recomputable, carried for validation).
    pub base_score: f64,
    /// Per-row raw margins after `round` rounds.
    pub raw: Vec<f64>,
    /// Trees grown so far.
    pub trees: Vec<Tree>,
    /// Mean training loss per completed round.
    pub training_loss: Vec<f64>,
}

/// A trained gradient-boosted tree ensemble.
///
/// # Examples
///
/// ```
/// use tasq_ml::gbdt::{Booster, BoosterConfig};
///
/// let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
/// let targets: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] + 5.0).collect();
/// let booster = Booster::train(&rows, &targets, &BoosterConfig::default());
/// let prediction = booster.predict_row(&[50.0]);
/// assert!((prediction - 155.0).abs() < 10.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Booster {
    objective: Objective,
    base_score: f64,
    learning_rate: f64,
    trees: Vec<Tree>,
    num_features: usize,
    /// Mean training loss after each round, for diagnostics.
    pub training_loss: Vec<f64>,
}

impl Booster {
    /// Train an ensemble on rows (`n` feature vectors) and targets.
    ///
    /// # Panics
    /// Panics if lengths mismatch, the dataset is empty, or a Gamma
    /// objective is given non-positive targets.
    pub fn train(rows: &[Vec<f64>], targets: &[f64], config: &BoosterConfig) -> Self {
        Self::train_with_pool(rows, targets, config, &tasq_par::Pool::sequential())
    }

    /// [`Booster::train`] with the per-feature split search of every tree
    /// fanned out over `pool`. The round loop, subsampling RNG stream and
    /// prediction updates are untouched, and the split search reduces
    /// deterministically, so the trained ensemble is bit-identical to the
    /// sequential one at any thread count.
    ///
    /// # Panics
    /// As [`Booster::train`].
    pub fn train_with_pool(
        rows: &[Vec<f64>],
        targets: &[f64],
        config: &BoosterConfig,
        pool: &tasq_par::Pool,
    ) -> Self {
        match Self::train_resumable_with_pool(rows, targets, config, pool, None, &mut |_| true) {
            Some(booster) => booster,
            // lint: allow(no-panic) — the always-continue callback above can never halt training
            None => unreachable!("uninterruptible training halted"),
        }
    }

    /// [`Booster::train_with_pool`] with per-round checkpointing.
    ///
    /// After every completed round the freshly captured
    /// [`BoosterCheckpoint`] is handed to `on_round`; returning `false`
    /// halts training right there (the crash-injection hook the chaos
    /// harness uses) and yields `None`. Passing a previous checkpoint as
    /// `resume` skips its completed rounds and restores the subsampling
    /// RNG mid-stream, so an interrupted-and-resumed run grows exactly
    /// the trees an uninterrupted one would — bit for bit.
    ///
    /// # Panics
    /// As [`Booster::train`], and if `resume` does not match the
    /// dataset's row count or its own round count.
    pub fn train_resumable_with_pool(
        rows: &[Vec<f64>],
        targets: &[f64],
        config: &BoosterConfig,
        pool: &tasq_par::Pool,
        resume: Option<BoosterCheckpoint>,
        on_round: &mut dyn FnMut(&BoosterCheckpoint) -> bool,
    ) -> Option<Self> {
        assert_eq!(rows.len(), targets.len(), "Booster::train: length mismatch");
        assert!(!rows.is_empty(), "Booster::train: empty dataset");
        if config.objective.requires_positive_targets() {
            assert!(
                targets.iter().all(|&y| y > 0.0),
                "Booster::train: Gamma objective requires strictly positive targets"
            );
        }
        let n = rows.len();
        let mapper = BinMapper::fit(rows, config.max_bins);
        let data = BinnedDataset::new(&mapper, rows);

        let base_score = config.objective.base_score(targets);
        let (start_round, mut rng, mut raw, mut trees, mut training_loss) = match resume {
            Some(ckpt) => {
                assert_eq!(ckpt.raw.len(), n, "Booster::resume: row count mismatch");
                assert_eq!(ckpt.trees.len(), ckpt.round, "Booster::resume: round mismatch");
                (
                    ckpt.round,
                    StdRng::from_state(ckpt.rng_state),
                    ckpt.raw,
                    ckpt.trees,
                    ckpt.training_loss,
                )
            }
            None => (
                0,
                StdRng::seed_from_u64(config.seed),
                vec![base_score; n],
                Vec::with_capacity(config.num_rounds),
                Vec::with_capacity(config.num_rounds),
            ),
        };
        let mut grads = vec![0.0; n];
        let mut hess = vec![0.0; n];

        let growth = GrowthParams {
            max_depth: config.max_depth,
            lambda: config.lambda,
            min_split_gain: config.min_split_gain,
            min_child_weight: config.min_child_weight,
        };

        let all: Vec<usize> = (0..n).collect();
        for round in start_round..config.num_rounds {
            let _span = tasq_obs::span(
                tasq_obs::Level::Debug,
                "gbdt_round",
                &[
                    ("round", tasq_obs::FieldValue::U64(round as u64)),
                    ("rows", tasq_obs::FieldValue::U64(n as u64)),
                ],
            );
            for i in 0..n {
                grads[i] = config.objective.gradient(raw[i], targets[i]);
                hess[i] = config.objective.hessian(raw[i], targets[i]);
            }
            let sample: Vec<usize> = if config.subsample < 1.0 {
                let k = ((n as f64) * config.subsample).ceil().max(1.0) as usize;
                rand_ext::sample_indices(&mut rng, n, k)
            } else {
                all.clone()
            };
            let tree = Tree::grow_with_pool(&data, &mapper, &grads, &hess, &sample, &growth, pool);
            for (i, r) in raw.iter_mut().enumerate() {
                *r += config.learning_rate * tree.predict_row(&rows[i]);
            }
            trees.push(tree);
            training_loss.push(Self::mean_loss(config.objective, &raw, targets));

            let checkpoint = BoosterCheckpoint {
                round: round + 1,
                rng_state: rng.state(),
                base_score,
                raw: raw.clone(),
                trees: trees.clone(),
                training_loss: training_loss.clone(),
            };
            if !on_round(&checkpoint) {
                return None;
            }
        }

        Some(Self {
            objective: config.objective,
            base_score,
            learning_rate: config.learning_rate,
            trees,
            num_features: mapper.num_features(),
            training_loss,
        })
    }

    fn mean_loss(objective: Objective, raw: &[f64], targets: &[f64]) -> f64 {
        let total: f64 = raw
            .iter()
            .zip(targets)
            .map(|(&r, &y)| match objective {
                Objective::SquaredError => 0.5 * (r - y) * (r - y),
                Objective::GammaDeviance => y * (-r).exp() + r,
                Objective::Quantile(q) => {
                    let e = y - r;
                    (q * e).max((q - 1.0) * e)
                }
            })
            .sum();
        total / raw.len() as f64
    }

    /// Predict in target space (the Gamma objective exponentiates).
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.objective.transform(self.predict_raw(row))
    }

    /// Predict the raw (margin) score.
    pub fn predict_raw(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.num_features, "Booster::predict: feature count mismatch");
        let mut score = self.base_score;
        for tree in &self.trees {
            score += self.learning_rate * tree.predict_row(row);
        }
        score
    }

    /// Predict a batch of rows in target space.
    pub fn predict(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_row(r)).collect()
    }

    /// Number of trees in the ensemble.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total node count across all trees (a proxy for model size).
    pub fn total_nodes(&self) -> usize {
        self.trees.iter().map(Tree::num_nodes).sum()
    }

    /// Split-count feature importance (how often each feature is used).
    pub fn feature_importance(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_features];
        for tree in &self.trees {
            tree.accumulate_split_counts(&mut counts);
        }
        counts
    }

    /// The training objective.
    pub fn objective(&self) -> Objective {
        self.objective
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn fits_linear_function() {
        let mut rng = StdRng::seed_from_u64(1);
        let rows: Vec<Vec<f64>> =
            (0..500).map(|_| vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)]).collect();
        let targets: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 2.0 * r[1] + 5.0).collect();
        let booster = Booster::train(
            &rows,
            &targets,
            &BoosterConfig { num_rounds: 200, learning_rate: 0.2, ..Default::default() },
        );
        let preds = booster.predict(&rows);
        let mae = crate::stats::mean_absolute_error(&preds, &targets);
        let spread = targets.iter().cloned().fold(f64::MIN, f64::max)
            - targets.iter().cloned().fold(f64::MAX, f64::min);
        assert!(mae < spread * 0.05, "mae {mae} vs spread {spread}");
    }

    #[test]
    fn training_loss_decreases() {
        let mut rng = StdRng::seed_from_u64(2);
        let rows: Vec<Vec<f64>> = (0..200).map(|_| vec![rng.gen_range(-3.0..3.0)]).collect();
        let targets: Vec<f64> = rows.iter().map(|r| r[0].sin() * 10.0).collect();
        let booster = Booster::train(&rows, &targets, &BoosterConfig::default());
        let first = booster.training_loss[0];
        let last = *booster.training_loss.last().unwrap();
        assert!(last < first * 0.2, "loss {first} -> {last}");
        // Loss must be non-increasing within noise (monotone for full-batch
        // squared error).
        for w in booster.training_loss.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "loss increased: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn gamma_objective_predicts_positive_skewed_targets() {
        let mut rng = StdRng::seed_from_u64(3);
        let rows: Vec<Vec<f64>> = (0..600).map(|_| vec![rng.gen_range(1.0..5.0)]).collect();
        // Multiplicative target: y = exp(x) * noise.
        let targets: Vec<f64> = rows
            .iter()
            .map(|r| (r[0]).exp() * rng.gen_range(0.9..1.1))
            .collect();
        let booster = Booster::train(
            &rows,
            &targets,
            &BoosterConfig {
                objective: Objective::GammaDeviance,
                num_rounds: 150,
                learning_rate: 0.15,
                ..Default::default()
            },
        );
        let preds = booster.predict(&rows);
        assert!(preds.iter().all(|&p| p > 0.0), "gamma predictions must be positive");
        let mape = crate::stats::median_ape(&preds, &targets);
        assert!(mape < 0.1, "median APE {mape}");
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn gamma_rejects_nonpositive_targets() {
        let rows = vec![vec![1.0], vec![2.0]];
        let targets = vec![1.0, 0.0];
        let _ = Booster::train(
            &rows,
            &targets,
            &BoosterConfig { objective: Objective::GammaDeviance, ..Default::default() },
        );
    }

    #[test]
    fn subsampling_still_learns() {
        let mut rng = StdRng::seed_from_u64(4);
        let rows: Vec<Vec<f64>> = (0..400).map(|_| vec![rng.gen_range(0.0..1.0)]).collect();
        let targets: Vec<f64> = rows.iter().map(|r| if r[0] > 0.5 { 10.0 } else { 0.0 }).collect();
        let booster = Booster::train(
            &rows,
            &targets,
            &BoosterConfig { subsample: 0.5, num_rounds: 80, ..Default::default() },
        );
        let preds = booster.predict(&rows);
        let mae = crate::stats::mean_absolute_error(&preds, &targets);
        assert!(mae < 1.0, "mae {mae}");
    }

    #[test]
    fn deterministic_given_seed() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..100).map(|i| (i * i) as f64).collect();
        let config = BoosterConfig { subsample: 0.7, seed: 99, ..Default::default() };
        let b1 = Booster::train(&rows, &targets, &config);
        let b2 = Booster::train(&rows, &targets, &config);
        assert_eq!(b1.predict(&rows), b2.predict(&rows));
    }

    #[test]
    fn parallel_split_search_bit_identical_to_sequential() {
        let mut rng = StdRng::seed_from_u64(11);
        // Wide rows so indices.len() * num_features clears the parallel
        // threshold at the root and shallow nodes.
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|_| (0..20).map(|_| rng.gen_range(-5.0..5.0)).collect())
            .collect();
        let targets: Vec<f64> =
            rows.iter().map(|r| r[0] * 3.0 - r[7] * r[7] + r[13].sin() * 4.0).collect();
        let config =
            BoosterConfig { num_rounds: 12, subsample: 0.8, seed: 7, ..Default::default() };
        let seq = Booster::train(&rows, &targets, &config);
        for threads in [2, 4] {
            let par =
                Booster::train_with_pool(&rows, &targets, &config, &tasq_par::Pool::new(threads));
            let seq_preds = seq.predict(&rows);
            let par_preds = par.predict(&rows);
            let seq_bits: Vec<u64> = seq_preds.iter().map(|p| p.to_bits()).collect();
            let par_bits: Vec<u64> = par_preds.iter().map(|p| p.to_bits()).collect();
            assert_eq!(seq_bits, par_bits, "threads={threads}");
            assert_eq!(seq.total_nodes(), par.total_nodes());
            assert_eq!(seq.feature_importance(), par.feature_importance());
        }
    }

    #[test]
    fn kill_and_resume_is_bit_identical_at_every_round() {
        // Subsample < 1.0 so the RNG stream is actually exercised: the
        // restored generator must continue mid-stream, not restart.
        let rows: Vec<Vec<f64>> = (0..120).map(|i| vec![i as f64, (i * 3 % 7) as f64]).collect();
        let targets: Vec<f64> = rows.iter().map(|r| r[0] * 2.0 + r[1] * r[1]).collect();
        let config =
            BoosterConfig { num_rounds: 8, subsample: 0.6, seed: 17, ..Default::default() };
        let pool = tasq_par::Pool::sequential();
        let baseline = Booster::train_with_pool(&rows, &targets, &config, &pool);
        let baseline_bits: Vec<u64> =
            baseline.predict(&rows).iter().map(|p| p.to_bits()).collect();

        for kill_at in 1..config.num_rounds {
            // "Crash" after `kill_at` rounds, keeping the last checkpoint.
            let mut saved = None;
            let halted = Booster::train_resumable_with_pool(
                &rows,
                &targets,
                &config,
                &pool,
                None,
                &mut |ckpt| {
                    saved = Some(ckpt.clone());
                    ckpt.round < kill_at
                },
            );
            assert!(halted.is_none(), "kill_at {kill_at}: training should have halted");
            let ckpt = saved.expect("at least one checkpoint");
            assert_eq!(ckpt.round, kill_at);

            // Resume and finish; the ensemble must match bit for bit.
            let resumed = Booster::train_resumable_with_pool(
                &rows,
                &targets,
                &config,
                &pool,
                Some(ckpt),
                &mut |_| true,
            )
            .expect("resumed training should finish");
            let resumed_bits: Vec<u64> =
                resumed.predict(&rows).iter().map(|p| p.to_bits()).collect();
            assert_eq!(baseline_bits, resumed_bits, "kill_at {kill_at}");
            assert_eq!(baseline.total_nodes(), resumed.total_nodes());
            assert_eq!(
                baseline.training_loss.len(),
                resumed.training_loss.len(),
                "loss curve must cover all rounds"
            );
        }
    }

    #[test]
    fn quantile_objective_covers_the_quantile() {
        let mut rng = StdRng::seed_from_u64(21);
        // Heteroscedastic target: y = 10x + noise scaled by x.
        let rows: Vec<Vec<f64>> = (0..800).map(|_| vec![rng.gen_range(1.0..5.0)]).collect();
        let targets: Vec<f64> = rows
            .iter()
            .map(|r| 10.0 * r[0] + r[0] * crate::rand_ext::standard_normal(&mut rng))
            .collect();
        let booster = Booster::train(
            &rows,
            &targets,
            &BoosterConfig {
                objective: Objective::Quantile(0.9),
                num_rounds: 120,
                learning_rate: 0.1,
                ..Default::default()
            },
        );
        let preds = booster.predict(&rows);
        let covered = preds
            .iter()
            .zip(&targets)
            .filter(|(p, y)| *p >= *y)
            .count() as f64
            / rows.len() as f64;
        assert!(
            (0.82..=0.97).contains(&covered),
            "P90 predictions should cover ~90% of targets, got {covered}"
        );
    }

    #[test]
    fn feature_importance_identifies_signal() {
        let mut rng = StdRng::seed_from_u64(5);
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|_| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
            .collect();
        // Only feature 0 matters. Use few rounds: once the signal is fit,
        // later trees would split noise on both features equally.
        let targets: Vec<f64> = rows.iter().map(|r| r[0] * 100.0).collect();
        let booster = Booster::train(
            &rows,
            &targets,
            &BoosterConfig { num_rounds: 10, learning_rate: 0.3, ..Default::default() },
        );
        let imp = booster.feature_importance();
        assert!(imp[0] > imp[1] * 2, "importance {imp:?}");
    }
}
