//! A single regression tree grown with histogram-based exact-gain splits.

use super::binning::{BinMapper, BinnedDataset};
use serde::{Deserialize, Serialize};
use tasq_par::Pool;

/// Below this many (sample x feature) histogram accumulations the split
/// search runs sequentially even on a multi-thread pool: at deep nodes
/// with few rows the fan-out costs more than the scan.
const PAR_SPLIT_MIN_WORK: usize = 4096;

/// A node in a [`Tree`]. Leaves carry a weight; internal nodes carry a
/// split on `feature <= threshold`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Node {
    /// Internal split node: samples with `value <= threshold` descend left.
    Split {
        /// Feature index.
        feature: usize,
        /// Raw-value threshold (left if `value <= threshold`).
        threshold: f64,
        /// Bin threshold used during training (left if `bin <= bin_threshold`).
        bin_threshold: u8,
        /// Index of the left child in the node arena.
        left: usize,
        /// Index of the right child.
        right: usize,
    },
    /// Terminal node with an output weight (pre-shrinkage).
    Leaf {
        /// Leaf output value.
        weight: f64,
    },
}

/// A regression tree stored as a node arena (index 0 is the root).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
}

/// Growth hyper-parameters for a single tree.
#[derive(Debug, Clone, Copy)]
pub struct GrowthParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// L2 regularization on leaf weights (XGBoost lambda).
    pub lambda: f64,
    /// Minimum loss reduction to split (XGBoost gamma).
    pub min_split_gain: f64,
    /// Minimum hessian sum in each child (XGBoost min_child_weight).
    pub min_child_weight: f64,
}

struct SplitCandidate {
    feature: usize,
    bin_threshold: u8,
    gain: f64,
    left_grad: f64,
    left_hess: f64,
}

impl Tree {
    /// Grow a tree on the given (possibly subsampled) sample indices.
    ///
    /// `grads`/`hess` are indexed by absolute sample id; `samples` selects
    /// which rows participate.
    pub fn grow(
        data: &BinnedDataset,
        mapper: &BinMapper,
        grads: &[f64],
        hess: &[f64],
        samples: &[usize],
        params: &GrowthParams,
    ) -> Self {
        Self::grow_with_pool(data, mapper, grads, hess, samples, params, &Pool::sequential())
    }

    /// [`Tree::grow`] with the per-feature histogram/split search fanned
    /// out over `pool`. Per-feature candidates are reduced in ascending
    /// feature order with the same strict-greater tie-break as the
    /// sequential scan, so the grown tree is bit-identical at any thread
    /// count.
    #[allow(clippy::too_many_arguments)]
    pub fn grow_with_pool(
        data: &BinnedDataset,
        mapper: &BinMapper,
        grads: &[f64],
        hess: &[f64],
        samples: &[usize],
        params: &GrowthParams,
        pool: &Pool,
    ) -> Self {
        let mut tree = Tree { nodes: Vec::new() };
        let root_indices: Vec<usize> = samples.to_vec();
        tree.nodes.push(Node::Leaf { weight: 0.0 });
        tree.grow_node(0, data, mapper, grads, hess, root_indices, 0, params, pool);
        tree
    }

    #[allow(clippy::too_many_arguments)]
    fn grow_node(
        &mut self,
        node_id: usize,
        data: &BinnedDataset,
        mapper: &BinMapper,
        grads: &[f64],
        hess: &[f64],
        indices: Vec<usize>,
        depth: usize,
        params: &GrowthParams,
        pool: &Pool,
    ) {
        let total_grad: f64 = indices.iter().map(|&i| grads[i]).sum();
        let total_hess: f64 = indices.iter().map(|&i| hess[i]).sum();
        let leaf_weight = -total_grad / (total_hess + params.lambda);

        let make_leaf = |tree: &mut Tree| {
            tree.nodes[node_id] = Node::Leaf { weight: leaf_weight };
        };

        if depth >= params.max_depth || indices.len() < 2 {
            make_leaf(self);
            return;
        }

        let best = Self::find_best_split(
            data, mapper, grads, hess, &indices, total_grad, total_hess, params, pool,
        );
        let Some(split) = best else {
            make_leaf(self);
            return;
        };
        if split.gain <= params.min_split_gain {
            make_leaf(self);
            return;
        }

        // Partition the indices.
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .into_iter()
            .partition(|&i| data.bin(split.feature, i) <= split.bin_threshold);
        debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());

        let left = self.nodes.len();
        self.nodes.push(Node::Leaf { weight: 0.0 });
        let right = self.nodes.len();
        self.nodes.push(Node::Leaf { weight: 0.0 });
        self.nodes[node_id] = Node::Split {
            feature: split.feature,
            threshold: mapper.threshold_value(split.feature, split.bin_threshold),
            bin_threshold: split.bin_threshold,
            left,
            right,
        };
        self.grow_node(left, data, mapper, grads, hess, left_idx, depth + 1, params, pool);
        self.grow_node(right, data, mapper, grads, hess, right_idx, depth + 1, params, pool);
    }

    /// Histogram scan of a single feature: fill `hist_grad`/`hist_hess`
    /// and return the best candidate for that feature alone (first bin
    /// wins ties via the strict-greater comparison).
    #[allow(clippy::too_many_arguments)]
    fn best_split_for_feature(
        data: &BinnedDataset,
        mapper: &BinMapper,
        grads: &[f64],
        hess: &[f64],
        indices: &[usize],
        total_grad: f64,
        total_hess: f64,
        params: &GrowthParams,
        f: usize,
        hist_grad: &mut [f64],
        hist_hess: &mut [f64],
    ) -> Option<SplitCandidate> {
        let parent_score = total_grad * total_grad / (total_hess + params.lambda);
        let nbins = mapper.num_bins(f);
        if nbins < 2 {
            return None;
        }
        hist_grad[..nbins].iter_mut().for_each(|x| *x = 0.0);
        hist_hess[..nbins].iter_mut().for_each(|x| *x = 0.0);
        let bins = data.feature_bins(f);
        for &i in indices {
            let b = bins[i] as usize;
            hist_grad[b] += grads[i];
            hist_hess[b] += hess[i];
        }
        let mut best: Option<SplitCandidate> = None;
        let mut left_grad = 0.0;
        let mut left_hess = 0.0;
        // Split candidates: "bin <= b" for b in 0..nbins-1.
        for b in 0..nbins - 1 {
            left_grad += hist_grad[b];
            left_hess += hist_hess[b];
            let right_grad = total_grad - left_grad;
            let right_hess = total_hess - left_hess;
            if left_hess < params.min_child_weight || right_hess < params.min_child_weight {
                continue;
            }
            let gain = 0.5
                * (left_grad * left_grad / (left_hess + params.lambda)
                    + right_grad * right_grad / (right_hess + params.lambda)
                    - parent_score);
            if best.as_ref().is_none_or(|s| gain > s.gain) {
                best = Some(SplitCandidate {
                    feature: f,
                    bin_threshold: b as u8,
                    gain,
                    left_grad,
                    left_hess,
                });
            }
        }
        best
    }

    #[allow(clippy::too_many_arguments)]
    fn find_best_split(
        data: &BinnedDataset,
        mapper: &BinMapper,
        grads: &[f64],
        hess: &[f64],
        indices: &[usize],
        total_grad: f64,
        total_hess: f64,
        params: &GrowthParams,
        pool: &Pool,
    ) -> Option<SplitCandidate> {
        let num_features = data.num_features();
        let max_bins = (0..num_features).map(|f| mapper.num_bins(f)).max()?;

        let mut best: Option<SplitCandidate> = None;
        if pool.threads() > 1 && indices.len() * num_features >= PAR_SPLIT_MIN_WORK {
            // One task per feature, each with its own histogram buffers;
            // candidates come back in feature order for the deterministic
            // lowest-feature-wins reduction below.
            let features: Vec<usize> = (0..num_features).collect();
            let per_feature = match pool.par_map_grain(&features, 1, |_, &f| {
                let mut hist_grad = vec![0.0f64; max_bins];
                let mut hist_hess = vec![0.0f64; max_bins];
                Self::best_split_for_feature(
                    data, mapper, grads, hess, indices, total_grad, total_hess, params, f,
                    &mut hist_grad, &mut hist_hess,
                )
            }) {
                Ok(v) => v,
                // The scan cannot panic on valid binned data; runtime bug.
                Err(e) => std::panic::resume_unwind(Box::new(e.to_string())),
            };
            for cand in per_feature.into_iter().flatten() {
                if best.as_ref().is_none_or(|s| cand.gain > s.gain) {
                    best = Some(cand);
                }
            }
        } else {
            // Reusable histogram buffers sized for the largest feature.
            let mut hist_grad = vec![0.0f64; max_bins];
            let mut hist_hess = vec![0.0f64; max_bins];
            for f in 0..num_features {
                let cand = Self::best_split_for_feature(
                    data, mapper, grads, hess, indices, total_grad, total_hess, params, f,
                    &mut hist_grad, &mut hist_hess,
                );
                if let Some(cand) = cand {
                    if best.as_ref().is_none_or(|s| cand.gain > s.gain) {
                        best = Some(cand);
                    }
                }
            }
        }
        // Reject splits that would leave a child empty of samples (possible
        // when all mass sits in one side's hessians but min_child_weight is 0).
        if let Some(s) = &best {
            // lint: allow(float-eq) — an empty child accumulates an exact
            // 0.0 gradient sum; approximate comparison would misclassify
            // genuinely tiny but populated children.
            if s.left_hess <= 0.0 && s.left_grad == 0.0 {
                return None;
            }
        }
        best
    }

    /// Number of nodes (internal + leaves).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf nodes.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Leaf { .. })).count()
    }

    /// Predict the raw leaf weight for a feature row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut id = 0usize;
        loop {
            match &self.nodes[id] {
                Node::Leaf { weight } => return *weight,
                Node::Split { feature, threshold, left, right, .. } => {
                    id = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Accumulate `feature -> number of splits` into `counts`.
    pub fn accumulate_split_counts(&self, counts: &mut [usize]) {
        for node in &self.nodes {
            if let Node::Split { feature, .. } = node {
                counts[*feature] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> GrowthParams {
        GrowthParams { max_depth: 4, lambda: 1.0, min_split_gain: 0.0, min_child_weight: 0.0 }
    }

    /// With squared-error style grads (g = pred - y at pred=0, h = 1), a
    /// tree on a step function should recover the step exactly.
    #[test]
    fn learns_step_function() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..100).map(|i| if i < 50 { 1.0 } else { 5.0 }).collect();
        let mapper = BinMapper::fit(&rows, 64);
        let data = BinnedDataset::new(&mapper, &rows);
        let grads: Vec<f64> = targets.iter().map(|y| -y).collect();
        let hess = vec![1.0; 100];
        let samples: Vec<usize> = (0..100).collect();
        let tree = Tree::grow(&data, &mapper, &grads, &hess, &samples, &params());
        // Predictions should separate the two levels (lambda shrinks slightly).
        let low = tree.predict_row(&[10.0]);
        let high = tree.predict_row(&[90.0]);
        assert!((low - 1.0).abs() < 0.2, "low {low}");
        assert!((high - 5.0).abs() < 0.2, "high {high}");
    }

    #[test]
    fn depth_zero_is_single_leaf() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let mapper = BinMapper::fit(&rows, 8);
        let data = BinnedDataset::new(&mapper, &rows);
        let grads = vec![-2.0; 10];
        let hess = vec![1.0; 10];
        let samples: Vec<usize> = (0..10).collect();
        let p = GrowthParams { max_depth: 0, ..params() };
        let tree = Tree::grow(&data, &mapper, &grads, &hess, &samples, &p);
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.num_leaves(), 1);
        // Optimal leaf: -G/(H+lambda) = 20/(10+1)
        assert!((tree.predict_row(&[0.0]) - 20.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn min_split_gain_prunes() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        // Nearly constant target: any split gain is tiny.
        let grads: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { -1.0 } else { -1.001 }).collect();
        let hess = vec![1.0; 100];
        let mapper = BinMapper::fit(&rows, 64);
        let data = BinnedDataset::new(&mapper, &rows);
        let samples: Vec<usize> = (0..100).collect();
        let p = GrowthParams { min_split_gain: 10.0, ..params() };
        let tree = Tree::grow(&data, &mapper, &grads, &hess, &samples, &p);
        assert_eq!(tree.num_leaves(), 1, "large min gain should produce a stump");
    }

    #[test]
    fn min_child_weight_blocks_unbalanced_splits() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let grads = vec![-1.0; 10];
        let hess = vec![0.1; 10];
        let mapper = BinMapper::fit(&rows, 16);
        let data = BinnedDataset::new(&mapper, &rows);
        let samples: Vec<usize> = (0..10).collect();
        // Total hess = 1.0; requiring 0.6 per child is unsatisfiable.
        let p = GrowthParams { min_child_weight: 0.6, ..params() };
        let tree = Tree::grow(&data, &mapper, &grads, &hess, &samples, &p);
        assert_eq!(tree.num_leaves(), 1);
    }

    #[test]
    fn respects_max_depth() {
        let rows: Vec<Vec<f64>> = (0..256).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..256).map(|i| (i % 7) as f64).collect();
        let grads: Vec<f64> = targets.iter().map(|y| -y).collect();
        let hess = vec![1.0; 256];
        let mapper = BinMapper::fit(&rows, 256);
        let data = BinnedDataset::new(&mapper, &rows);
        let samples: Vec<usize> = (0..256).collect();
        let p = GrowthParams { max_depth: 3, ..params() };
        let tree = Tree::grow(&data, &mapper, &grads, &hess, &samples, &p);
        assert!(tree.num_leaves() <= 8, "2^3 leaves max, got {}", tree.num_leaves());
    }

    #[test]
    fn split_counts_accumulate() {
        let rows: Vec<Vec<f64>> =
            (0..100).map(|i| vec![i as f64, 0.0]).collect(); // feature 1 constant
        let targets: Vec<f64> = (0..100).map(|i| if i < 50 { 0.0 } else { 10.0 }).collect();
        let grads: Vec<f64> = targets.iter().map(|y| -y).collect();
        let hess = vec![1.0; 100];
        let mapper = BinMapper::fit(&rows, 32);
        let data = BinnedDataset::new(&mapper, &rows);
        let samples: Vec<usize> = (0..100).collect();
        let tree = Tree::grow(&data, &mapper, &grads, &hess, &samples, &params());
        let mut counts = vec![0usize; 2];
        tree.accumulate_split_counts(&mut counts);
        assert!(counts[0] >= 1, "informative feature must be used");
        assert_eq!(counts[1], 0, "constant feature must never split");
    }
}
