//! Boosting objectives: per-sample gradient/hessian of the loss with
//! respect to the raw (margin) score.

use serde::{Deserialize, Serialize};

/// Training objective for the booster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// `0.5 * (raw - y)^2`; predictions are the raw scores.
    SquaredError,
    /// Gamma deviance with log link: the model predicts `mu = exp(raw)` and
    /// minimizes the Gamma negative log-likelihood `y/mu + ln(mu)` (up to
    /// terms constant in `raw`). This matches XGBoost's `reg:gamma` and is
    /// the objective the paper uses for run-time regression.
    GammaDeviance,
    /// Pinball (quantile) loss for the given quantile `q in (0, 1)`:
    /// predictions estimate the conditional q-quantile of the target.
    /// Used by the SLO extension to predict conservative (e.g. P90) run
    /// times. The hessian is constant 1 (the loss is piecewise linear).
    Quantile(f64),
}

impl Objective {
    /// Initial raw score fitted on the targets (the optimal constant).
    pub fn base_score(self, targets: &[f64]) -> f64 {
        let mean = if targets.is_empty() {
            0.0
        } else {
            targets.iter().sum::<f64>() / targets.len() as f64
        };
        match self {
            Objective::SquaredError => mean,
            Objective::GammaDeviance => mean.max(f64::MIN_POSITIVE).ln(),
            Objective::Quantile(q) => crate::stats::quantile(targets, q),
        }
    }

    /// Gradient of the loss w.r.t. the raw score.
    #[inline]
    pub fn gradient(self, raw: f64, target: f64) -> f64 {
        match self {
            Objective::SquaredError => raw - target,
            // d/draw [ y*exp(-raw) + raw ] = 1 - y*exp(-raw)
            Objective::GammaDeviance => 1.0 - target * (-raw).exp(),
            // Pinball: -q below the target, (1-q) above it.
            Objective::Quantile(q) => {
                if raw < target {
                    -q
                } else {
                    1.0 - q
                }
            }
        }
    }

    /// Hessian (second derivative) of the loss w.r.t. the raw score.
    #[inline]
    pub fn hessian(self, raw: f64, target: f64) -> f64 {
        match self {
            Objective::SquaredError => 1.0,
            // d^2/draw^2 = y*exp(-raw)
            Objective::GammaDeviance => (target * (-raw).exp()).max(1e-12),
            // Piecewise-linear loss: use a unit surrogate hessian.
            Objective::Quantile(_) => 1.0,
        }
    }

    /// Transform a raw score into the prediction space.
    #[inline]
    pub fn transform(self, raw: f64) -> f64 {
        match self {
            Objective::SquaredError | Objective::Quantile(_) => raw,
            Objective::GammaDeviance => raw.exp(),
        }
    }

    /// Whether targets must be strictly positive.
    pub fn requires_positive_targets(self) -> bool {
        matches!(self, Objective::GammaDeviance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_error_grad_is_residual() {
        let o = Objective::SquaredError;
        assert_eq!(o.gradient(3.0, 5.0), -2.0);
        assert_eq!(o.hessian(3.0, 5.0), 1.0);
        assert_eq!(o.transform(4.2), 4.2);
    }

    #[test]
    fn gamma_gradient_zero_at_optimum() {
        // At raw = ln(y), gradient must vanish.
        let o = Objective::GammaDeviance;
        let y = 7.5_f64;
        let raw = y.ln();
        assert!(o.gradient(raw, y).abs() < 1e-12);
        assert!(o.hessian(raw, y) > 0.0);
    }

    #[test]
    fn gamma_grad_matches_finite_difference() {
        let o = Objective::GammaDeviance;
        let loss = |raw: f64, y: f64| y * (-raw).exp() + raw;
        let h = 1e-6;
        for &(raw, y) in &[(0.5, 2.0), (2.0, 10.0), (-1.0, 0.3)] {
            let numeric = (loss(raw + h, y) - loss(raw - h, y)) / (2.0 * h);
            assert!((numeric - o.gradient(raw, y)).abs() < 1e-5);
            // Wider step for the second derivative: the central second
            // difference cancels catastrophically at h = 1e-6.
            let h2 = 1e-4;
            let numeric2 =
                (loss(raw + h2, y) - 2.0 * loss(raw, y) + loss(raw - h2, y)) / (h2 * h2);
            assert!((numeric2 - o.hessian(raw, y)).abs() < 1e-3);
        }
    }

    #[test]
    fn base_scores() {
        let ys = [1.0, 2.0, 3.0];
        assert_eq!(Objective::SquaredError.base_score(&ys), 2.0);
        assert!((Objective::GammaDeviance.base_score(&ys) - 2.0f64.ln()).abs() < 1e-12);
        assert_eq!(Objective::SquaredError.base_score(&[]), 0.0);
    }

    #[test]
    fn gamma_transform_is_exp() {
        assert!((Objective::GammaDeviance.transform(0.0) - 1.0).abs() < 1e-12);
        assert!((Objective::GammaDeviance.transform(2.0) - 2.0f64.exp()).abs() < 1e-12);
    }

    #[test]
    fn quantile_gradient_signs() {
        let o = Objective::Quantile(0.9);
        assert_eq!(o.gradient(5.0, 10.0), -0.9, "below target pushes up");
        assert!((o.gradient(15.0, 10.0) - 0.1).abs() < 1e-12, "above target pushes down gently");
        assert_eq!(o.hessian(0.0, 1.0), 1.0);
        assert_eq!(o.transform(3.5), 3.5);
    }

    #[test]
    fn quantile_base_score_is_empirical_quantile() {
        let ys: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let base = Objective::Quantile(0.9).base_score(&ys);
        assert!((89.0..=91.0).contains(&base), "{base}");
    }
}
