//! Lloyd's k-means with k-means++ initialization.
//!
//! Used by the paper's job-subset-selection procedure (Section 5.1, step 2):
//! the workload population is clustered so that a stratified sample can
//! match cluster-size proportions.

#![allow(clippy::needless_range_loop)] // parallel-array indexing is clearer here

use crate::matrix::Matrix;
use crate::rand_ext;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tasq_par::Pool;

/// Configuration for [`kmeans`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iterations: usize,
    /// Stop when total centroid movement falls below this.
    pub tolerance: f64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self { k: 8, max_iterations: 100, tolerance: 1e-6 }
    }
}

/// A fitted k-means model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeans {
    /// Cluster centroids, `k x dims`.
    pub centroids: Matrix,
    /// Cluster assignment of each training point.
    pub assignments: Vec<usize>,
    /// Total within-cluster sum of squared distances.
    pub inertia: f64,
    /// Iterations actually run.
    pub iterations: usize,
}

impl KMeans {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.rows()
    }

    /// Predict the nearest centroid for a single point.
    ///
    /// # Panics
    /// Panics if the point dimensionality does not match the centroids.
    pub fn predict(&self, point: &[f64]) -> usize {
        assert_eq!(point.len(), self.centroids.cols(), "KMeans::predict: dim mismatch");
        nearest_centroid(&self.centroids, point).0
    }

    /// Predict assignments for every row of `data`.
    pub fn predict_batch(&self, data: &Matrix) -> Vec<usize> {
        (0..data.rows()).map(|r| self.predict(data.row(r))).collect()
    }

    /// Cluster sizes over the training assignments.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn nearest_centroid(centroids: &Matrix, point: &[f64]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for c in 0..centroids.rows() {
        let d = squared_distance(centroids.row(c), point);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

/// k-means++ seeding: the first centroid is uniform, each next one is chosen
/// with probability proportional to its squared distance from the nearest
/// already-chosen centroid.
fn kmeans_pp_init<R: Rng + ?Sized>(rng: &mut R, data: &Matrix, k: usize) -> Matrix {
    let n = data.rows();
    let mut centroids = Matrix::zeros(k, data.cols());
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(data.row(first));

    let mut dist_sq: Vec<f64> =
        (0..n).map(|r| squared_distance(data.row(r), centroids.row(0))).collect();

    for c in 1..k {
        let total: f64 = dist_sq.iter().sum();
        let chosen = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut idx = n - 1;
            for (i, &d) in dist_sq.iter().enumerate() {
                if target < d {
                    idx = i;
                    break;
                }
                target -= d;
            }
            idx
        };
        centroids.row_mut(c).copy_from_slice(data.row(chosen));
        for r in 0..n {
            let d = squared_distance(data.row(r), centroids.row(c));
            if d < dist_sq[r] {
                dist_sq[r] = d;
            }
        }
    }
    centroids
}

/// Run k-means on the rows of `data`.
///
/// # Panics
/// Panics if `data` is empty or `k == 0`. If `k > n`, `k` is reduced to `n`.
pub fn kmeans<R: Rng + ?Sized>(rng: &mut R, data: &Matrix, config: &KMeansConfig) -> KMeans {
    kmeans_with_pool(rng, data, config, &Pool::sequential())
}

/// [`kmeans`] with the assignment step fanned out over `pool`.
///
/// The assignment step is pure (each row's nearest centroid depends only
/// on the shared centroid matrix), so parallelizing it is bit-identical
/// to the sequential loop; the update step and the empty-cluster re-seed
/// draw from `rng` and stay sequential to preserve the RNG stream.
pub fn kmeans_with_pool<R: Rng + ?Sized>(
    rng: &mut R,
    data: &Matrix,
    config: &KMeansConfig,
    pool: &Pool,
) -> KMeans {
    let n = data.rows();
    assert!(n > 0, "kmeans: empty data");
    assert!(config.k > 0, "kmeans: k must be positive");
    let k = config.k.min(n);

    let mut centroids = kmeans_pp_init(rng, data, k);
    let mut assignments = vec![0usize; n];
    let mut iterations = 0;

    for iter in 0..config.max_iterations {
        iterations = iter + 1;
        // Assignment step (parallel over row blocks).
        assign_rows(data, &centroids, &mut assignments, pool);
        // Update step.
        let mut sums = Matrix::zeros(k, data.cols());
        let mut counts = vec![0usize; k];
        for r in 0..n {
            let a = assignments[r];
            counts[a] += 1;
            for (s, &x) in sums.row_mut(a).iter_mut().zip(data.row(r)) {
                *s += x;
            }
        }
        let mut movement = 0.0;
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at a random point.
                let r = rng.gen_range(0..n);
                movement += squared_distance(centroids.row(c), data.row(r)).sqrt();
                centroids.row_mut(c).copy_from_slice(data.row(r));
                continue;
            }
            let inv = 1.0 / counts[c] as f64;
            let mut move_sq = 0.0;
            for (cent, &s) in centroids.row_mut(c).iter_mut().zip(sums.row(c)) {
                let new = s * inv;
                move_sq += (new - *cent) * (new - *cent);
                *cent = new;
            }
            movement += move_sq.sqrt();
        }
        if movement < config.tolerance {
            break;
        }
    }

    // Final assignment + per-row distances in parallel; the inertia sum
    // stays sequential in row order so float accumulation matches the
    // single-threaded path bit-for-bit.
    let mut distances = vec![0.0f64; n];
    assign_rows_with_distances(data, &centroids, &mut assignments, &mut distances, pool);
    let inertia = distances.iter().sum();
    KMeans { centroids, assignments, inertia, iterations }
}

/// Rows per parallel assignment task; small enough to balance, large
/// enough that a task amortizes scheduling.
const ASSIGN_CHUNK: usize = 64;

fn assign_rows(data: &Matrix, centroids: &Matrix, assignments: &mut [usize], pool: &Pool) {
    let result = pool.par_for_chunks(assignments, ASSIGN_CHUNK, |ci, chunk| {
        let base = ci * ASSIGN_CHUNK;
        for (j, slot) in chunk.iter_mut().enumerate() {
            *slot = nearest_centroid(centroids, data.row(base + j)).0;
        }
    });
    if let Err(e) = result {
        // nearest_centroid cannot panic for matching dims; runtime bug.
        std::panic::resume_unwind(Box::new(e.to_string()));
    }
}

fn assign_rows_with_distances(
    data: &Matrix,
    centroids: &Matrix,
    assignments: &mut [usize],
    distances: &mut [f64],
    pool: &Pool,
) {
    let n = assignments.len();
    // Pair up (assignment, distance) per row so one parallel sweep fills
    // both output arrays without sharing mutable state across tasks.
    let mut pairs: Vec<(usize, f64)> = vec![(0, 0.0); n];
    let result = pool.par_for_chunks(&mut pairs, ASSIGN_CHUNK, |ci, chunk| {
        let base = ci * ASSIGN_CHUNK;
        for (j, slot) in chunk.iter_mut().enumerate() {
            *slot = nearest_centroid(centroids, data.row(base + j));
        }
    });
    if let Err(e) = result {
        std::panic::resume_unwind(Box::new(e.to_string()));
    }
    for (r, (a, d)) in pairs.into_iter().enumerate() {
        assignments[r] = a;
        distances[r] = d;
    }
}

/// Run `restarts` independently seeded k-means fits in parallel and keep
/// the best (lowest inertia; ties broken by lowest restart index).
///
/// Each restart's RNG is pre-split from `base_seed` via
/// [`rand_ext::split_seed`], so the winner — and every field of the
/// returned model — is bit-identical at any thread count.
///
/// # Panics
/// Panics if `restarts == 0` or on empty data / `k == 0` (as [`kmeans`]).
pub fn kmeans_restarts(
    data: &Matrix,
    config: &KMeansConfig,
    base_seed: u64,
    restarts: usize,
    pool: &Pool,
) -> KMeans {
    assert!(restarts > 0, "kmeans_restarts: need at least one restart");
    let seeds: Vec<u64> =
        (0..restarts).map(|i| rand_ext::split_seed(base_seed, i as u64)).collect();
    let fits = match pool.par_map_grain(&seeds, 1, |_, &seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        // Restarts are the parallel axis; each fit assigns sequentially.
        kmeans_with_pool(&mut rng, data, config, &Pool::sequential())
    }) {
        Ok(fits) => fits,
        Err(e) => std::panic::resume_unwind(Box::new(e.to_string())),
    };
    let mut iter = fits.into_iter();
    let Some(mut best) = iter.next() else {
        // Unreachable: restarts > 0 is asserted above.
        let mut rng = StdRng::seed_from_u64(base_seed);
        return kmeans(&mut rng, data, config);
    };
    for fit in iter {
        if fit.inertia < best.inertia {
            best = fit;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn three_blobs(rng: &mut StdRng, per_blob: usize) -> Matrix {
        let centers = [(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)];
        let mut rows = Vec::new();
        for &(cx, cy) in &centers {
            for _ in 0..per_blob {
                rows.push(vec![
                    cx + crate::rand_ext::standard_normal(rng) * 0.5,
                    cy + crate::rand_ext::standard_normal(rng) * 0.5,
                ]);
            }
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn separates_well_separated_blobs() {
        let mut rng = StdRng::seed_from_u64(17);
        let data = three_blobs(&mut rng, 50);
        let model = kmeans(&mut rng, &data, &KMeansConfig { k: 3, ..Default::default() });
        let sizes = model.cluster_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 150);
        // Every cluster should capture exactly one blob.
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![50, 50, 50], "sizes {sizes:?}");
        // All points in the same blob share an assignment.
        for blob in 0..3 {
            let first = model.assignments[blob * 50];
            assert!(model.assignments[blob * 50..(blob + 1) * 50].iter().all(|&a| a == first));
        }
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let mut rng = StdRng::seed_from_u64(23);
        let data = three_blobs(&mut rng, 40);
        let m1 = kmeans(&mut rng, &data, &KMeansConfig { k: 1, ..Default::default() });
        let m3 = kmeans(&mut rng, &data, &KMeansConfig { k: 3, ..Default::default() });
        assert!(m3.inertia < m1.inertia * 0.2, "{} vs {}", m3.inertia, m1.inertia);
    }

    #[test]
    fn predict_matches_training_assignment() {
        let mut rng = StdRng::seed_from_u64(5);
        let data = three_blobs(&mut rng, 30);
        let model = kmeans(&mut rng, &data, &KMeansConfig { k: 3, ..Default::default() });
        for r in 0..data.rows() {
            assert_eq!(model.predict(data.row(r)), model.assignments[r]);
        }
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let mut rng = StdRng::seed_from_u64(9);
        let data = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]);
        let model = kmeans(&mut rng, &data, &KMeansConfig { k: 10, ..Default::default() });
        assert_eq!(model.k(), 2);
    }

    #[test]
    fn parallel_assignment_bit_identical_to_sequential() {
        let mut rng = StdRng::seed_from_u64(41);
        let data = three_blobs(&mut rng, 60);
        let config = KMeansConfig { k: 5, ..Default::default() };
        let mut rng_seq = StdRng::seed_from_u64(77);
        let seq = kmeans(&mut rng_seq, &data, &config);
        for threads in [2, 4] {
            let mut rng_par = StdRng::seed_from_u64(77);
            let par = kmeans_with_pool(&mut rng_par, &data, &config, &Pool::new(threads));
            assert_eq!(par.centroids, seq.centroids, "threads={threads}");
            assert_eq!(par.assignments, seq.assignments);
            assert_eq!(par.inertia.to_bits(), seq.inertia.to_bits());
            assert_eq!(par.iterations, seq.iterations);
        }
    }

    #[test]
    fn restarts_deterministic_across_thread_counts() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = three_blobs(&mut rng, 40);
        let config = KMeansConfig { k: 3, ..Default::default() };
        let base = kmeans_restarts(&data, &config, 99, 6, &Pool::sequential());
        for threads in [2, 4] {
            let par = kmeans_restarts(&data, &config, 99, 6, &Pool::new(threads));
            assert_eq!(par.centroids, base.centroids, "threads={threads}");
            assert_eq!(par.assignments, base.assignments);
            assert_eq!(par.inertia.to_bits(), base.inertia.to_bits());
        }
        // More restarts can only improve (or match) the best inertia.
        let single = kmeans_restarts(&data, &config, 99, 1, &Pool::sequential());
        assert!(base.inertia <= single.inertia);
    }

    #[test]
    fn single_point_converges() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = Matrix::from_rows(&[vec![3.0, 4.0]]);
        let model = kmeans(&mut rng, &data, &KMeansConfig { k: 1, ..Default::default() });
        assert_eq!(model.centroids.row(0), &[3.0, 4.0]);
        assert_eq!(model.inertia, 0.0);
    }
}
