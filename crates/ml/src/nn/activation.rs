//! Element-wise activation functions and their derivatives.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Element-wise activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// `ln(1 + e^x)` — smooth, strictly positive; used for the
    /// sign-constrained PCC output heads.
    Softplus,
    /// Logistic sigmoid `1 / (1 + e^-x)`.
    Sigmoid,
    /// Pass-through.
    Identity,
}

impl Activation {
    /// Apply the activation to a scalar.
    #[inline]
    pub fn apply_scalar(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Softplus => softplus(x),
            Activation::Sigmoid => sigmoid(x),
            Activation::Identity => x,
        }
    }

    /// Derivative with respect to the *pre-activation* input, expressed in
    /// terms of that input.
    #[inline]
    pub fn derivative_scalar(self, x: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            // d/dx softplus(x) = sigmoid(x)
            Activation::Softplus => sigmoid(x),
            Activation::Sigmoid => {
                let s = sigmoid(x);
                s * (1.0 - s)
            }
            Activation::Identity => 1.0,
        }
    }

    /// Apply element-wise to a matrix.
    pub fn apply(self, m: &Matrix) -> Matrix {
        m.map(|x| self.apply_scalar(x))
    }

    /// Element-wise derivative matrix given the pre-activation matrix.
    pub fn derivative(self, pre: &Matrix) -> Matrix {
        pre.map(|x| self.derivative_scalar(x))
    }
}

/// Numerically stable softplus: `ln(1 + e^x)`.
#[inline]
pub fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Inverse of softplus: returns `x` such that `softplus(x) = y` for `y > 0`.
#[inline]
pub fn softplus_inverse(y: f64) -> f64 {
    debug_assert!(y > 0.0);
    if y > 30.0 {
        y
    } else {
        (y.exp() - 1.0).max(f64::MIN_POSITIVE).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_basics() {
        assert_eq!(Activation::Relu.apply_scalar(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply_scalar(3.0), 3.0);
        assert_eq!(Activation::Relu.derivative_scalar(-1.0), 0.0);
        assert_eq!(Activation::Relu.derivative_scalar(1.0), 1.0);
    }

    #[test]
    fn softplus_is_positive_and_stable() {
        assert!(softplus(-100.0) >= 0.0);
        assert!((softplus(100.0) - 100.0).abs() < 1e-9);
        assert!((softplus(0.0) - 2f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn softplus_inverse_roundtrips() {
        for &y in &[0.01, 0.5, 1.0, 3.0, 40.0] {
            let x = softplus_inverse(y);
            assert!((softplus(x) - y).abs() < 1e-9, "y={y}");
        }
    }

    #[test]
    fn sigmoid_symmetry() {
        for &x in &[-5.0, -1.0, 0.0, 2.0, 7.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
    }

    /// Check each derivative against a central finite difference.
    #[test]
    fn derivatives_match_finite_differences() {
        let acts = [
            Activation::Relu,
            Activation::Tanh,
            Activation::Softplus,
            Activation::Sigmoid,
            Activation::Identity,
        ];
        let h = 1e-6;
        for act in acts {
            for &x in &[-2.3, -0.7, 0.4, 1.9] {
                let numeric = (act.apply_scalar(x + h) - act.apply_scalar(x - h)) / (2.0 * h);
                let analytic = act.derivative_scalar(x);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{act:?} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn matrix_apply_matches_scalar() {
        let m = Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]);
        let out = Activation::Tanh.apply(&m);
        for (o, &x) in out.as_slice().iter().zip(m.as_slice()) {
            assert!((o - x.tanh()).abs() < 1e-15);
        }
    }
}
