//! Fully-connected (affine) layer with explicit forward cache and backward
//! pass.

use crate::matrix::Matrix;
use crate::rand_ext;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An affine layer `y = x W + b` with `W: in x out`, `b: 1 x out`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weight matrix, `in_dim x out_dim`.
    pub weight: Matrix,
    /// Bias row vector, `1 x out_dim`.
    pub bias: Matrix,
}

/// Values cached during [`Linear::forward_cached`] that the backward pass
/// needs.
#[derive(Debug, Clone)]
pub struct LinearCache {
    /// The layer input (batch x in_dim).
    pub input: Matrix,
}

/// Gradients produced by [`Linear::backward`].
#[derive(Debug, Clone)]
pub struct LinearGrads {
    /// dLoss/dW, same shape as `weight`.
    pub weight: Matrix,
    /// dLoss/db, same shape as `bias`.
    pub bias: Matrix,
    /// dLoss/dInput, same shape as the cached input.
    pub input: Matrix,
}

impl Linear {
    /// He-uniform initialization, appropriate for ReLU-family activations.
    pub fn he_init<R: Rng + ?Sized>(rng: &mut R, in_dim: usize, out_dim: usize) -> Self {
        let scale = (2.0 / in_dim.max(1) as f64).sqrt();
        let weight =
            Matrix::from_fn(in_dim, out_dim, |_, _| rand_ext::standard_normal(rng) * scale);
        Self { weight, bias: Matrix::zeros(1, out_dim) }
    }

    /// Xavier/Glorot-uniform initialization, appropriate for tanh/sigmoid.
    pub fn xavier_init<R: Rng + ?Sized>(rng: &mut R, in_dim: usize, out_dim: usize) -> Self {
        let bound = (6.0 / (in_dim + out_dim).max(1) as f64).sqrt();
        let weight = Matrix::from_fn(in_dim, out_dim, |_, _| rng.gen_range(-bound..bound));
        Self { weight, bias: Matrix::zeros(1, out_dim) }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// Number of trainable parameters (weights + biases).
    pub fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// Forward pass: `x W + b` for a batch `x: batch x in_dim`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        self.forward_with(x, &tasq_par::Pool::sequential())
    }

    /// [`Linear::forward`] with the gemm row-blocked over `pool`
    /// (bit-identical at any thread count; small batches fall back to the
    /// sequential kernel automatically).
    pub fn forward_with(&self, x: &Matrix, pool: &tasq_par::Pool) -> Matrix {
        let mut out = x.matmul_par(&self.weight, pool);
        out.add_row_broadcast(self.bias.as_slice());
        out
    }

    /// Forward pass that also returns the cache needed for `backward`.
    pub fn forward_cached(&self, x: &Matrix) -> (Matrix, LinearCache) {
        (self.forward(x), LinearCache { input: x.clone() })
    }

    /// [`Linear::forward_cached`] with a parallel gemm.
    pub fn forward_cached_with(&self, x: &Matrix, pool: &tasq_par::Pool) -> (Matrix, LinearCache) {
        (self.forward_with(x, pool), LinearCache { input: x.clone() })
    }

    /// Backward pass given upstream gradient `d_out: batch x out_dim`.
    pub fn backward(&self, cache: &LinearCache, d_out: &Matrix) -> LinearGrads {
        self.backward_with(cache, d_out, &tasq_par::Pool::sequential())
    }

    /// [`Linear::backward`] with both gemms row-blocked over `pool`.
    pub fn backward_with(
        &self,
        cache: &LinearCache,
        d_out: &Matrix,
        pool: &tasq_par::Pool,
    ) -> LinearGrads {
        // dW = x^T d_out ; db = column sums of d_out ; dX = d_out W^T
        let weight = cache.input.t_matmul_par(d_out, pool);
        let bias = Matrix::row_vector(&d_out.col_sums());
        let input = d_out.matmul_t_par(&self.weight, pool);
        LinearGrads { weight, bias, input }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_known_values() {
        let layer = Linear {
            weight: Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]),
            bias: Matrix::from_vec(1, 2, vec![0.5, -0.5]),
        };
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let y = layer.forward(&x);
        assert_eq!(y.as_slice(), &[4.5, 5.5]);
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::he_init(&mut rng, 10, 4);
        assert_eq!(layer.param_count(), 44);
    }

    /// Full gradient check against central finite differences on a random
    /// layer, random batch, and loss = sum of outputs squared.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut layer = Linear::xavier_init(&mut rng, 3, 2);
        let x = Matrix::from_fn(4, 3, |_, _| rng.gen_range(-1.0..1.0));

        let loss = |layer: &Linear, x: &Matrix| -> f64 {
            layer.forward(x).as_slice().iter().map(|v| v * v).sum()
        };
        let (y, cache) = layer.forward_cached(&x);
        let d_out = y.scale(2.0); // d(sum y^2)/dy = 2y
        let grads = layer.backward(&cache, &d_out);

        let h = 1e-6;
        // Weight gradients.
        for i in 0..layer.weight.len() {
            let orig = layer.weight.as_slice()[i];
            layer.weight.as_mut_slice()[i] = orig + h;
            let up = loss(&layer, &x);
            layer.weight.as_mut_slice()[i] = orig - h;
            let down = loss(&layer, &x);
            layer.weight.as_mut_slice()[i] = orig;
            let numeric = (up - down) / (2.0 * h);
            assert!(
                (numeric - grads.weight.as_slice()[i]).abs() < 1e-4,
                "weight[{i}]: numeric {numeric} vs {}",
                grads.weight.as_slice()[i]
            );
        }
        // Bias gradients.
        for i in 0..layer.bias.len() {
            let orig = layer.bias.as_slice()[i];
            layer.bias.as_mut_slice()[i] = orig + h;
            let up = loss(&layer, &x);
            layer.bias.as_mut_slice()[i] = orig - h;
            let down = loss(&layer, &x);
            layer.bias.as_mut_slice()[i] = orig;
            let numeric = (up - down) / (2.0 * h);
            assert!((numeric - grads.bias.as_slice()[i]).abs() < 1e-4);
        }
        // Input gradients.
        let mut x_pert = x.clone();
        for i in 0..x_pert.len() {
            let orig = x_pert.as_slice()[i];
            x_pert.as_mut_slice()[i] = orig + h;
            let up = loss(&layer, &x_pert);
            x_pert.as_mut_slice()[i] = orig - h;
            let down = loss(&layer, &x_pert);
            x_pert.as_mut_slice()[i] = orig;
            let numeric = (up - down) / (2.0 * h);
            assert!((numeric - grads.input.as_slice()[i]).abs() < 1e-4);
        }
    }
}
