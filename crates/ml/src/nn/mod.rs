//! Feed-forward neural networks with manual reverse-mode gradients.
//!
//! The paper's NN model (Section 4.4) is a small multi-layer fully-connected
//! network (2,216 parameters in Table 7) that maps aggregated job-level
//! features to the two power-law PCC parameters. The building blocks here —
//! [`Linear`] layers, [`Activation`] functions, and the [`Mlp`] container —
//! keep forward caches explicitly so gradients can be computed without an
//! autodiff tape.

mod activation;
mod linear;
mod mlp;

pub use activation::{sigmoid, softplus, softplus_inverse, Activation};
pub use linear::{Linear, LinearCache, LinearGrads};
pub use mlp::{Mlp, MlpCache, MlpGrads};
