//! Multi-layer perceptron composed of [`Linear`] layers and activations.

use super::activation::Activation;
use super::linear::{Linear, LinearCache};
use crate::matrix::Matrix;
use crate::optim::{Adam, AdamConfig, ParamId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A feed-forward network: alternating affine layers and activations.
///
/// The activation after the final layer is configurable (use
/// [`Activation::Identity`] for raw outputs; the TASQ PCC heads apply
/// softplus transforms *outside* the MLP so the loss can see the raw
/// pre-activations).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    hidden_activation: Activation,
    output_activation: Activation,
}

/// Forward cache for one batch: per-layer input caches and pre-activations.
#[derive(Debug, Clone)]
pub struct MlpCache {
    layer_caches: Vec<LinearCache>,
    pre_activations: Vec<Matrix>,
}

/// Per-layer gradients plus the gradient w.r.t. the network input.
#[derive(Debug, Clone)]
pub struct MlpGrads {
    /// `(dW, db)` per layer, front to back.
    pub layers: Vec<(Matrix, Matrix)>,
    /// dLoss/dInput for the whole batch.
    pub input: Matrix,
}

impl Mlp {
    /// Build an MLP with the given layer sizes, e.g. `[51, 32, 16, 2]`.
    ///
    /// Hidden layers use He initialization when the hidden activation is
    /// ReLU and Xavier otherwise.
    ///
    /// # Panics
    /// Panics if fewer than two sizes are given.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        sizes: &[usize],
        hidden_activation: Activation,
        output_activation: Activation,
    ) -> Self {
        assert!(sizes.len() >= 2, "Mlp::new: need at least input and output sizes");
        let layers = sizes
            .windows(2)
            .map(|w| match hidden_activation {
                Activation::Relu => Linear::he_init(rng, w[0], w[1]),
                _ => Linear::xavier_init(rng, w[0], w[1]),
            })
            .collect();
        Self { layers, hidden_activation, output_activation }
    }

    /// Number of affine layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers.first().map_or(0, Linear::in_dim)
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().map_or(0, Linear::out_dim)
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Linear::param_count).sum()
    }

    /// Immutable access to the layers.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Mutable access to the layers (needed by composite models — e.g. the
    /// GNN — that own an `Mlp` head and drive a shared optimizer).
    pub fn layers_mut(&mut self) -> &mut [Linear] {
        &mut self.layers
    }

    /// Forward pass for a batch `x: batch x in_dim`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        self.forward_with(x, &tasq_par::Pool::sequential())
    }

    /// [`Mlp::forward`] with every layer gemm row-blocked over `pool`
    /// (bit-identical to the sequential pass at any thread count).
    pub fn forward_with(&self, x: &Matrix, pool: &tasq_par::Pool) -> Matrix {
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let pre = layer.forward_with(&h, pool);
            let act = if i == last { self.output_activation } else { self.hidden_activation };
            h = act.apply(&pre);
        }
        h
    }

    /// Forward pass keeping the caches needed by [`Mlp::backward`].
    pub fn forward_cached(&self, x: &Matrix) -> (Matrix, MlpCache) {
        self.forward_cached_with(x, &tasq_par::Pool::sequential())
    }

    /// [`Mlp::forward_cached`] with parallel layer gemms.
    pub fn forward_cached_with(&self, x: &Matrix, pool: &tasq_par::Pool) -> (Matrix, MlpCache) {
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        let mut layer_caches = Vec::with_capacity(self.layers.len());
        let mut pre_activations = Vec::with_capacity(self.layers.len());
        for (i, layer) in self.layers.iter().enumerate() {
            let (pre, cache) = layer.forward_cached_with(&h, pool);
            layer_caches.push(cache);
            let act = if i == last { self.output_activation } else { self.hidden_activation };
            h = act.apply(&pre);
            pre_activations.push(pre);
        }
        (h, MlpCache { layer_caches, pre_activations })
    }

    /// Backward pass given the upstream gradient w.r.t. the network output.
    pub fn backward(&self, cache: &MlpCache, d_output: &Matrix) -> MlpGrads {
        self.backward_with(cache, d_output, &tasq_par::Pool::sequential())
    }

    /// [`Mlp::backward`] with parallel layer gemms.
    pub fn backward_with(
        &self,
        cache: &MlpCache,
        d_output: &Matrix,
        pool: &tasq_par::Pool,
    ) -> MlpGrads {
        let last = self.layers.len() - 1;
        let mut grads: Vec<(Matrix, Matrix)> = Vec::with_capacity(self.layers.len());
        let mut d = d_output.clone();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let act = if i == last { self.output_activation } else { self.hidden_activation };
            let d_pre = d.hadamard(&act.derivative(&cache.pre_activations[i]));
            let lg = layer.backward_with(&cache.layer_caches[i], &d_pre, pool);
            grads.push((lg.weight, lg.bias));
            d = lg.input;
        }
        grads.reverse();
        MlpGrads { layers: grads, input: d }
    }

    /// Register all parameters with an Adam optimizer; returns the ids in
    /// layer order as `(weight_id, bias_id)` pairs.
    pub fn register_params(&self, adam: &mut Adam) -> Vec<(ParamId, ParamId)> {
        self.layers
            .iter()
            .map(|l| {
                let w = adam.register(l.weight.rows(), l.weight.cols());
                let b = adam.register(l.bias.rows(), l.bias.cols());
                (w, b)
            })
            .collect()
    }

    /// Apply one optimizer step with the given per-layer gradients.
    pub fn apply_grads(&mut self, adam: &mut Adam, ids: &[(ParamId, ParamId)], grads: MlpGrads) {
        assert_eq!(ids.len(), self.layers.len());
        assert_eq!(grads.layers.len(), self.layers.len());
        let mut pairs: Vec<(ParamId, &mut Matrix, Matrix)> = Vec::new();
        for (layer, (&(wid, bid), (gw, gb))) in
            self.layers.iter_mut().zip(ids.iter().zip(grads.layers))
        {
            pairs.push((wid, &mut layer.weight, gw));
            pairs.push((bid, &mut layer.bias, gb));
        }
        adam.step(&mut pairs);
    }

    /// Convenience: default Adam optimizer wired to this network.
    pub fn make_optimizer(&self, config: AdamConfig) -> (Adam, Vec<(ParamId, ParamId)>) {
        let mut adam = Adam::new(config);
        let ids = self.register_params(&mut adam);
        (adam, ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_and_param_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(&mut rng, &[5, 8, 2], Activation::Relu, Activation::Identity);
        assert_eq!(mlp.in_dim(), 5);
        assert_eq!(mlp.out_dim(), 2);
        // (5*8 + 8) + (8*2 + 2) = 48 + 18 = 66
        assert_eq!(mlp.param_count(), 66);
        let x = Matrix::zeros(3, 5);
        assert_eq!(mlp.forward(&x).shape(), (3, 2));
    }

    /// The paper's NN has 2,216 parameters (Table 7); our default TASQ NN
    /// topology must be in the same ballpark (we verify the arithmetic
    /// rather than the exact paper value since the feature count differs).
    #[test]
    fn paper_scale_topology() {
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(&mut rng, &[51, 32, 16, 2], Activation::Relu, Activation::Identity);
        assert_eq!(mlp.param_count(), 51 * 32 + 32 + 32 * 16 + 16 + 16 * 2 + 2);
    }

    /// End-to-end gradient check through two hidden layers.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut mlp = Mlp::new(&mut rng, &[3, 4, 2], Activation::Tanh, Activation::Identity);
        let x = Matrix::from_fn(2, 3, |_, _| rng.gen_range(-1.0..1.0));

        let loss =
            |mlp: &Mlp, x: &Matrix| -> f64 { mlp.forward(x).as_slice().iter().map(|v| v * v).sum() };

        let (y, cache) = mlp.forward_cached(&x);
        let grads = mlp.backward(&cache, &y.scale(2.0));

        let h = 1e-6;
        for li in 0..mlp.layers.len() {
            for i in 0..mlp.layers[li].weight.len() {
                let orig = mlp.layers[li].weight.as_slice()[i];
                mlp.layers[li].weight.as_mut_slice()[i] = orig + h;
                let up = loss(&mlp, &x);
                mlp.layers[li].weight.as_mut_slice()[i] = orig - h;
                let down = loss(&mlp, &x);
                mlp.layers[li].weight.as_mut_slice()[i] = orig;
                let numeric = (up - down) / (2.0 * h);
                let analytic = grads.layers[li].0.as_slice()[i];
                assert!(
                    (numeric - analytic).abs() < 1e-4,
                    "layer {li} weight[{i}]: {numeric} vs {analytic}"
                );
            }
            for i in 0..mlp.layers[li].bias.len() {
                let orig = mlp.layers[li].bias.as_slice()[i];
                mlp.layers[li].bias.as_mut_slice()[i] = orig + h;
                let up = loss(&mlp, &x);
                mlp.layers[li].bias.as_mut_slice()[i] = orig - h;
                let down = loss(&mlp, &x);
                mlp.layers[li].bias.as_mut_slice()[i] = orig;
                let numeric = (up - down) / (2.0 * h);
                let analytic = grads.layers[li].1.as_slice()[i];
                assert!((numeric - analytic).abs() < 1e-4);
            }
        }
    }

    /// Train on a simple synthetic regression problem; loss must drop
    /// dramatically.
    #[test]
    fn learns_simple_function() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut mlp = Mlp::new(&mut rng, &[2, 16, 1], Activation::Relu, Activation::Identity);
        let (mut adam, ids) = mlp.make_optimizer(AdamConfig { learning_rate: 0.01, ..Default::default() });

        // Target: y = x0 + 2*x1
        let x = Matrix::from_fn(64, 2, |_, _| rng.gen_range(-1.0..1.0));
        let target = Matrix::from_fn(64, 1, |r, _| x[(r, 0)] + 2.0 * x[(r, 1)]);

        let mse = |mlp: &Mlp| {
            let y = mlp.forward(&x);
            y.sub(&target).as_slice().iter().map(|e| e * e).sum::<f64>() / 64.0
        };
        let initial = mse(&mlp);
        for _ in 0..500 {
            let (y, cache) = mlp.forward_cached(&x);
            let d = y.sub(&target).scale(2.0 / 64.0);
            let grads = mlp.backward(&cache, &d);
            mlp.apply_grads(&mut adam, &ids, grads);
        }
        let final_loss = mse(&mlp);
        assert!(
            final_loss < initial * 0.01,
            "loss should drop 100x: {initial} -> {final_loss}"
        );
    }

    #[test]
    fn input_gradient_flows() {
        let mut rng = StdRng::seed_from_u64(5);
        let mlp = Mlp::new(&mut rng, &[3, 5, 2], Activation::Relu, Activation::Identity);
        let x = Matrix::from_fn(1, 3, |_, _| rng.gen_range(-1.0..1.0));
        let (y, cache) = mlp.forward_cached(&x);
        let grads = mlp.backward(&cache, &y.scale(2.0));
        assert_eq!(grads.input.shape(), (1, 3));

        let h = 1e-6;
        let loss =
            |x: &Matrix| -> f64 { mlp.forward(x).as_slice().iter().map(|v| v * v).sum() };
        let mut xp = x.clone();
        for i in 0..xp.len() {
            let orig = xp.as_slice()[i];
            xp.as_mut_slice()[i] = orig + h;
            let up = loss(&xp);
            xp.as_mut_slice()[i] = orig - h;
            let down = loss(&xp);
            xp.as_mut_slice()[i] = orig;
            let numeric = (up - down) / (2.0 * h);
            assert!((numeric - grads.input.as_slice()[i]).abs() < 1e-4);
        }
    }
}
