//! Adam optimizer with bias correction and global-norm gradient clipping.
//!
//! The optimizer owns one slot of first/second-moment state per parameter
//! tensor; callers register tensors once (getting back a [`ParamId`]) and
//! then call [`Adam::step`] with matching gradients each iteration.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Handle to a parameter tensor registered with an [`Adam`] optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamId(usize);

/// Hyper-parameters for [`Adam`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate (alpha).
    pub learning_rate: f64,
    /// Exponential decay for the first moment.
    pub beta1: f64,
    /// Exponential decay for the second moment.
    pub beta2: f64,
    /// Numerical-stability constant.
    pub epsilon: f64,
    /// If set, gradients are rescaled so their global L2 norm does not
    /// exceed this value.
    pub clip_global_norm: Option<f64>,
    /// Decoupled weight decay (AdamW style); 0 disables.
    pub weight_decay: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            learning_rate: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            clip_global_norm: Some(5.0),
            weight_decay: 0.0,
        }
    }
}

/// Adam optimizer state over a set of registered parameter tensors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    config: AdamConfig,
    first_moments: Vec<Matrix>,
    second_moments: Vec<Matrix>,
    step_count: u64,
}

impl Adam {
    /// Create an optimizer with the given configuration and no registered
    /// parameters.
    pub fn new(config: AdamConfig) -> Self {
        Self { config, first_moments: Vec::new(), second_moments: Vec::new(), step_count: 0 }
    }

    /// Register a parameter tensor shape; returns its id.
    pub fn register(&mut self, rows: usize, cols: usize) -> ParamId {
        let id = ParamId(self.first_moments.len());
        self.first_moments.push(Matrix::zeros(rows, cols));
        self.second_moments.push(Matrix::zeros(rows, cols));
        id
    }

    /// The optimizer configuration.
    pub fn config(&self) -> &AdamConfig {
        &self.config
    }

    /// Mutable access to the configuration (e.g. for learning-rate decay).
    pub fn config_mut(&mut self) -> &mut AdamConfig {
        &mut self.config
    }

    /// Number of `step` calls so far.
    pub fn step_count(&self) -> u64 {
        self.step_count
    }

    /// Apply one Adam update.
    ///
    /// `params_and_grads` pairs each registered parameter (by id) with its
    /// parameter matrix and gradient. Gradients are clipped jointly by
    /// global norm if configured.
    ///
    /// # Panics
    /// Panics if a gradient shape does not match the registered shape.
    pub fn step(&mut self, params_and_grads: &mut [(ParamId, &mut Matrix, Matrix)]) {
        self.step_count += 1;
        let t = self.step_count as i32;

        let clip_scale = match self.config.clip_global_norm {
            Some(max_norm) => {
                let total_sq: f64 = params_and_grads
                    .iter()
                    .map(|(_, _, g)| g.as_slice().iter().map(|x| x * x).sum::<f64>())
                    .sum();
                let norm = total_sq.sqrt();
                if norm > max_norm && norm > 0.0 {
                    max_norm / norm
                } else {
                    1.0
                }
            }
            None => 1.0,
        };

        let bias1 = 1.0 - self.config.beta1.powi(t);
        let bias2 = 1.0 - self.config.beta2.powi(t);
        let lr = self.config.learning_rate;
        let (b1, b2, eps) = (self.config.beta1, self.config.beta2, self.config.epsilon);
        let wd = self.config.weight_decay;

        for (id, param, grad) in params_and_grads.iter_mut() {
            let m = &mut self.first_moments[id.0];
            let v = &mut self.second_moments[id.0];
            assert_eq!(m.shape(), grad.shape(), "Adam::step: gradient shape mismatch");
            assert_eq!(m.shape(), param.shape(), "Adam::step: parameter shape mismatch");

            for i in 0..grad.len() {
                let g = grad.as_slice()[i] * clip_scale;
                let mi = b1 * m.as_slice()[i] + (1.0 - b1) * g;
                let vi = b2 * v.as_slice()[i] + (1.0 - b2) * g * g;
                m.as_mut_slice()[i] = mi;
                v.as_mut_slice()[i] = vi;
                let m_hat = mi / bias1;
                let v_hat = vi / bias2;
                let p = &mut param.as_mut_slice()[i];
                *p -= lr * (m_hat / (v_hat.sqrt() + eps) + wd * *p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizing f(x) = (x - 3)^2 should converge to x = 3.
    #[test]
    fn converges_on_quadratic() {
        let mut adam = Adam::new(AdamConfig { learning_rate: 0.1, ..Default::default() });
        let id = adam.register(1, 1);
        let mut x = Matrix::from_vec(1, 1, vec![-4.0]);
        for _ in 0..500 {
            let grad = Matrix::from_vec(1, 1, vec![2.0 * (x[(0, 0)] - 3.0)]);
            adam.step(&mut [(id, &mut x, grad)]);
        }
        assert!((x[(0, 0)] - 3.0).abs() < 1e-3, "x = {}", x[(0, 0)]);
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut adam = Adam::new(AdamConfig {
            learning_rate: 1.0,
            clip_global_norm: Some(1.0),
            ..Default::default()
        });
        let id = adam.register(1, 2);
        let mut x = Matrix::zeros(1, 2);
        let grad = Matrix::from_vec(1, 2, vec![1e6, 1e6]);
        adam.step(&mut [(id, &mut x, grad)]);
        // With clipping, the effective gradient has norm 1, so the Adam
        // update is bounded by roughly the learning rate.
        assert!(x.as_slice().iter().all(|&v| v.abs() <= 1.1), "{x:?}");
    }

    #[test]
    fn multiple_params_update_independently() {
        let mut adam = Adam::new(AdamConfig { learning_rate: 0.05, ..Default::default() });
        let id_a = adam.register(1, 1);
        let id_b = adam.register(1, 1);
        let mut a = Matrix::from_vec(1, 1, vec![0.0]);
        let mut b = Matrix::from_vec(1, 1, vec![0.0]);
        for _ in 0..800 {
            let ga = Matrix::from_vec(1, 1, vec![2.0 * (a[(0, 0)] - 1.0)]);
            let gb = Matrix::from_vec(1, 1, vec![2.0 * (b[(0, 0)] + 2.0)]);
            adam.step(&mut [(id_a, &mut a, ga), (id_b, &mut b, gb)]);
        }
        assert!((a[(0, 0)] - 1.0).abs() < 1e-2);
        assert!((b[(0, 0)] + 2.0).abs() < 1e-2);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut adam = Adam::new(AdamConfig {
            learning_rate: 0.01,
            weight_decay: 0.5,
            clip_global_norm: None,
            ..Default::default()
        });
        let id = adam.register(1, 1);
        let mut x = Matrix::from_vec(1, 1, vec![10.0]);
        for _ in 0..2000 {
            // Zero loss gradient; only decay acts.
            let grad = Matrix::zeros(1, 1);
            adam.step(&mut [(id, &mut x, grad)]);
        }
        assert!(x[(0, 0)].abs() < 1.0, "decay should shrink x, got {}", x[(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let mut adam = Adam::new(AdamConfig::default());
        let id = adam.register(2, 2);
        let mut x = Matrix::zeros(2, 2);
        let grad = Matrix::zeros(1, 2);
        adam.step(&mut [(id, &mut x, grad)]);
    }
}
