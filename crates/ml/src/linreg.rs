//! Ordinary least squares, including the simple (single-feature) case used
//! for power-law PCC fitting in log-log space.
//!
//! The paper (Section 4.1) fits `log(runtime) = log(b) + a * log(tokens)`
//! with linear regression; [`simple_ols`] is that fit, and
//! [`weighted_simple_ols`] supports the weighted variants used when
//! augmented points should count less than ground truth.

use serde::{Deserialize, Serialize};

/// Result of a simple (one-feature) least-squares fit `y = intercept + slope*x`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimpleFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (0 when `y` is constant).
    pub r_squared: f64,
}

impl SimpleFit {
    /// Predict `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fit `y = intercept + slope * x` by least squares.
///
/// Returns `None` when fewer than 2 points are given or all `x` are equal
/// (the slope would be undefined).
pub fn simple_ols(xs: &[f64], ys: &[f64]) -> Option<SimpleFit> {
    let weights = vec![1.0; xs.len()];
    weighted_simple_ols(xs, ys, &weights)
}

/// Weighted least squares for `y = intercept + slope * x`.
///
/// Weights must be non-negative; points with zero weight are ignored.
/// Returns `None` when the fit is degenerate.
pub fn weighted_simple_ols(xs: &[f64], ys: &[f64], weights: &[f64]) -> Option<SimpleFit> {
    assert_eq!(xs.len(), ys.len(), "weighted_simple_ols: length mismatch");
    assert_eq!(xs.len(), weights.len(), "weighted_simple_ols: weights length mismatch");
    let w_total: f64 = weights.iter().sum();
    if xs.len() < 2 || w_total <= 0.0 {
        return None;
    }
    let mean_x = xs.iter().zip(weights).map(|(x, w)| x * w).sum::<f64>() / w_total;
    let mean_y = ys.iter().zip(weights).map(|(y, w)| y * w).sum::<f64>() / w_total;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for ((&x, &y), &w) in xs.iter().zip(ys).zip(weights) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += w * dx * dx;
        sxy += w * dx * dy;
        syy += w * dy * dy;
    }
    if sxx <= f64::EPSILON * w_total {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy > 0.0 { (sxy * sxy / (sxx * syy)).clamp(0.0, 1.0) } else { 0.0 };
    Some(SimpleFit { slope, intercept, r_squared })
}

/// Multiple linear regression via normal equations with ridge damping.
///
/// Solves `min ||X beta - y||^2 + lambda ||beta||^2` where `X` includes a
/// leading column of ones added internally for the intercept. Returns the
/// coefficient vector `[intercept, beta_1, ..., beta_p]`, or `None` if the
/// system is singular even after damping.
pub fn ridge_regression(rows: &[Vec<f64>], ys: &[f64], lambda: f64) -> Option<Vec<f64>> {
    assert_eq!(rows.len(), ys.len(), "ridge_regression: length mismatch");
    let n = rows.len();
    if n == 0 {
        return None;
    }
    let p = rows[0].len() + 1; // + intercept
    // Build X^T X and X^T y with the implicit ones column.
    let mut xtx = vec![vec![0.0; p]; p];
    let mut xty = vec![0.0; p];
    for (row, &y) in rows.iter().zip(ys) {
        assert_eq!(row.len() + 1, p, "ridge_regression: ragged rows");
        let mut full = Vec::with_capacity(p);
        full.push(1.0);
        full.extend_from_slice(row);
        for i in 0..p {
            xty[i] += full[i] * y;
            for j in 0..p {
                xtx[i][j] += full[i] * full[j];
            }
        }
    }
    for (i, row) in xtx.iter_mut().enumerate() {
        if i > 0 {
            row[i] += lambda; // do not penalize the intercept
        }
    }
    solve_gaussian(xtx, xty)
}

/// Solve a dense linear system by Gaussian elimination with partial
/// pivoting. Returns `None` if the matrix is (numerically) singular.
#[allow(clippy::needless_range_loop)] // row/column index arithmetic
fn solve_gaussian(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            // lint: allow(float-eq) — exact-zero skip of a no-op
            // elimination row; any nonzero factor must be applied.
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x - 1.0).collect();
        let fit = simple_ols(&xs, &ys).unwrap();
        assert!((fit.slope - 2.5).abs() < 1e-12);
        assert!((fit.intercept + 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(simple_ols(&[1.0], &[2.0]).is_none());
        assert!(simple_ols(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(simple_ols(&[], &[]).is_none());
    }

    #[test]
    fn weighted_fit_ignores_zero_weight_outlier() {
        let xs = [1.0, 2.0, 3.0, 10.0];
        let ys = [1.0, 2.0, 3.0, 100.0]; // last point is a wild outlier
        let weights = [1.0, 1.0, 1.0, 0.0];
        let fit = weighted_simple_ols(&xs, &ys, &weights).unwrap();
        assert!((fit.slope - 1.0).abs() < 1e-9);
        assert!(fit.intercept.abs() < 1e-9);
    }

    #[test]
    fn power_law_in_log_space() {
        // runtime = 500 * tokens^-0.7
        let tokens = [10.0, 20.0, 50.0, 100.0, 200.0];
        let log_t: Vec<f64> = tokens.iter().map(|t: &f64| t.ln()).collect();
        let log_r: Vec<f64> =
            tokens.iter().map(|t| (500.0 * t.powf(-0.7)).ln()).collect();
        let fit = simple_ols(&log_t, &log_r).unwrap();
        assert!((fit.slope + 0.7).abs() < 1e-9, "a = {}", fit.slope);
        assert!((fit.intercept.exp() - 500.0).abs() < 1e-6, "b = {}", fit.intercept.exp());
    }

    #[test]
    fn ridge_recovers_plane() {
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let ys: Vec<f64> = rows.iter().map(|r| 3.0 + 2.0 * r[0] - 0.5 * r[1]).collect();
        let beta = ridge_regression(&rows, &ys, 1e-9).unwrap();
        assert!((beta[0] - 3.0).abs() < 1e-6);
        assert!((beta[1] - 2.0).abs() < 1e-6);
        assert!((beta[2] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn ridge_handles_singular_with_damping() {
        // Duplicate feature columns: singular without lambda.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, i as f64]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| r[0] * 4.0).collect();
        let beta = ridge_regression(&rows, &ys, 1e-3).unwrap();
        // Coefficients split the weight but predictions stay accurate.
        let pred = beta[0] + beta[1] * 5.0 + beta[2] * 5.0;
        assert!((pred - 20.0).abs() < 0.1, "pred {pred}");
    }

    #[test]
    fn r_squared_zero_for_constant_y() {
        let fit = simple_ols(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.r_squared, 0.0);
        assert_eq!(fit.slope, 0.0);
    }
}
