//! Dense row-major `f64` matrices.
//!
//! This is intentionally a small, predictable linear-algebra core rather
//! than a general tensor library: the networks in this workspace are tiny
//! (thousands to tens of thousands of parameters, per the paper's Table 7),
//! so a cache-friendly row-major layout with straightforward triple loops is
//! both fast enough and easy to audit. Matmuls are written `ikj`-ordered so
//! the inner loop streams contiguous memory.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Products below this many scalar multiply-adds run sequentially even on
/// a multi-thread pool — fan-out costs more than it saves.
const PAR_GEMM_MIN_FLOPS: usize = 32 * 32 * 32;

/// The gemm kernels themselves cannot panic on shape-checked inputs, so a
/// `ParError` here means a runtime bug; re-raise it as a panic rather
/// than forcing every matmul call site to thread a `Result`.
fn propagate_par_error(result: Result<(), tasq_par::ParError>) {
    if let Err(e) = result {
        std::panic::resume_unwind(Box::new(e.to_string()));
    }
}

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create a `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Create a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Create a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Create a matrix from a slice of rows.
    ///
    /// # Panics
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: nrows, cols: ncols, data }
    }

    /// Create a 1 x n row vector.
    pub fn row_vector(values: &[f64]) -> Self {
        Self { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// Create an n x 1 column vector.
    pub fn col_vector(values: &[f64]) -> Self {
        Self { rows: values.len(), cols: 1, data: values.to_vec() }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` into a new `Vec`.
    ///
    /// Allocates on every call — hot paths should use the strided view
    /// [`Matrix::col_iter`] or reuse a buffer via [`Matrix::copy_col_into`].
    pub fn col(&self, c: usize) -> Vec<f64> {
        self.col_iter(c).collect()
    }

    /// Allocation-free view of column `c` as a strided iterator.
    pub fn col_iter(&self, c: usize) -> impl Iterator<Item = f64> + '_ {
        assert!(c < self.cols);
        self.data.iter().skip(c).step_by(self.cols.max(1)).copied()
    }

    /// Copy column `c` into `out`, reusing `out`'s allocation.
    pub fn copy_col_into(&self, c: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.col_iter(c));
    }

    /// Iterate over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Transpose into a new matrix.
    ///
    /// Tiled so both the read and write sides stay within a cache-line
    /// window per block instead of striding the full matrix per element.
    pub fn transpose(&self) -> Matrix {
        const TILE: usize = 32;
        let mut out = Matrix::zeros(self.cols, self.rows);
        for rb in (0..self.rows).step_by(TILE) {
            let r_end = (rb + TILE).min(self.rows);
            for cb in (0..self.cols).step_by(TILE) {
                let c_end = (cb + TILE).min(self.cols);
                for r in rb..r_end {
                    let row = &self.data[r * self.cols..(r + 1) * self.cols];
                    for (c, &v) in row.iter().enumerate().take(c_end).skip(cb) {
                        out.data[c * self.rows + r] = v;
                    }
                }
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: inner dimensions mismatch ({}x{} * {}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj loop order: inner loop streams rhs row + out row contiguously.
        for i in 0..self.rows {
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                // lint: allow(float-eq) — exact-zero skip: bit-identical
                // results, just fewer FMAs on sparse rows.
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self^T * rhs` without materializing the transpose.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "t_matmul: dimensions mismatch ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let b_row = &rhs.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in a_row.iter().enumerate() {
                // lint: allow(float-eq) — exact-zero skip, as in `matmul`.
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self * rhs^T` without materializing the transpose.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_t: dimensions mismatch {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..rhs.rows {
                let b_row = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// Row-blocked parallel `self * rhs`.
    ///
    /// Output rows are partitioned into contiguous blocks (one stealable
    /// task per block); every block runs the same `ikj` kernel as
    /// [`Matrix::matmul`] in the same accumulation order, so the result
    /// is **bit-identical** to the sequential product at any thread
    /// count. Small products fall back to the sequential kernel where
    /// fan-out overhead would dominate.
    pub fn matmul_par(&self, rhs: &Matrix, pool: &tasq_par::Pool) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul_par: inner dimensions mismatch ({}x{} * {}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        if pool.threads() == 1 || self.rows * self.cols * rhs.cols < PAR_GEMM_MIN_FLOPS {
            return self.matmul(rhs);
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let block_rows = self.rows.div_ceil(pool.threads() * 2).max(1);
        let lhs = self;
        let result = pool.par_for_chunks(&mut out.data, block_rows * rhs.cols, |bi, chunk| {
            for (local_r, out_row) in chunk.chunks_mut(rhs.cols).enumerate() {
                let i = bi * block_rows + local_r;
                for k in 0..lhs.cols {
                    let a = lhs.data[i * lhs.cols + k];
                    // lint: allow(float-eq) — exact-zero skip as in `matmul`.
                    if a == 0.0 {
                        continue;
                    }
                    let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                    for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                        *o += a * b;
                    }
                }
            }
        });
        propagate_par_error(result);
        out
    }

    /// Row-blocked parallel `self^T * rhs` (blocks over *output* rows,
    /// i.e. columns of `self`); bit-identical to [`Matrix::t_matmul`].
    pub fn t_matmul_par(&self, rhs: &Matrix, pool: &tasq_par::Pool) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "t_matmul_par: dimensions mismatch ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        if pool.threads() == 1 || self.rows * self.cols * rhs.cols < PAR_GEMM_MIN_FLOPS {
            return self.t_matmul(rhs);
        }
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        let block_rows = self.cols.div_ceil(pool.threads() * 2).max(1);
        let lhs = self;
        let result = pool.par_for_chunks(&mut out.data, block_rows * rhs.cols, |bi, chunk| {
            for (local_k, out_row) in chunk.chunks_mut(rhs.cols).enumerate() {
                let k = bi * block_rows + local_k;
                // Same i-ascending accumulation order as the sequential
                // kernel, restricted to this block's output rows.
                for i in 0..lhs.rows {
                    let a = lhs.data[i * lhs.cols + k];
                    // lint: allow(float-eq) — exact-zero skip as in `matmul`.
                    if a == 0.0 {
                        continue;
                    }
                    let b_row = &rhs.data[i * rhs.cols..(i + 1) * rhs.cols];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        });
        propagate_par_error(result);
        out
    }

    /// Row-blocked parallel `self * rhs^T`; bit-identical to
    /// [`Matrix::matmul_t`].
    pub fn matmul_t_par(&self, rhs: &Matrix, pool: &tasq_par::Pool) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_t_par: dimensions mismatch {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        if pool.threads() == 1 || self.rows * self.cols * rhs.rows < PAR_GEMM_MIN_FLOPS {
            return self.matmul_t(rhs);
        }
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        let block_rows = self.rows.div_ceil(pool.threads() * 2).max(1);
        let lhs = self;
        let result = pool.par_for_chunks(&mut out.data, block_rows * rhs.rows, |bi, chunk| {
            for (local_r, out_row) in chunk.chunks_mut(rhs.rows).enumerate() {
                let i = bi * block_rows + local_r;
                let a_row = &lhs.data[i * lhs.cols..(i + 1) * lhs.cols];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                    let mut acc = 0.0;
                    for (&a, &b) in a_row.iter().zip(b_row) {
                        acc += a * b;
                    }
                    *o = acc;
                }
            }
        });
        propagate_par_error(result);
        out
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise map in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise sum `self + rhs` into a new matrix.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a + b)
    }

    /// Element-wise difference `self - rhs` into a new matrix.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a - b)
    }

    /// Element-wise product (Hadamard) into a new matrix.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a * b)
    }

    /// Element-wise combine with another matrix of the same shape.
    pub fn zip(&self, rhs: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "zip: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// `self += alpha * rhs` in place.
    pub fn axpy(&mut self, alpha: f64, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Scale all elements in place.
    pub fn scale_inplace(&mut self, alpha: f64) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Scale into a new matrix.
    pub fn scale(&self, alpha: f64) -> Matrix {
        self.map(|x| x * alpha)
    }

    /// Add a 1 x cols row vector to every row (broadcast), in place.
    pub fn add_row_broadcast(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "add_row_broadcast: width mismatch");
        for r in 0..self.rows {
            for (x, &b) in self.row_mut(r).iter_mut().zip(row) {
                *x += b;
            }
        }
    }

    /// Sum of each column as a `Vec` of length `cols`.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for row in self.rows_iter() {
            for (s, &x) in sums.iter_mut().zip(row) {
                *s += x;
            }
        }
        sums
    }

    /// Mean of each column as a `Vec` of length `cols`.
    pub fn col_means(&self) -> Vec<f64> {
        let mut sums = self.col_sums();
        if self.rows > 0 {
            let inv = 1.0 / self.rows as f64;
            for s in &mut sums {
                *s *= inv;
            }
        }
        sums
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// True if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Set all elements to zero, reusing the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for (i, row) in self.rows_iter().take(max_rows).enumerate() {
            write!(f, "  [{i}] ")?;
            for v in row.iter().take(12) {
                write!(f, "{v:>10.4} ")?;
            }
            if self.cols > 12 {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ... ({} more rows)", self.rows - max_rows)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f64) -> bool {
        a.shape() == b.shape()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_bad_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        let i = Matrix::identity(4);
        assert!(approx_eq(&m.matmul(&i), &m, 1e-12));
        assert!(approx_eq(&i.matmul(&m), &m, 1e-12));
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 7 + c * 3) as f64);
        assert!(approx_eq(&m.transpose().transpose(), &m, 0.0));
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |r, c| (r + c) as f64 * 0.5);
        let b = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f64);
        assert!(approx_eq(&a.t_matmul(&b), &a.transpose().matmul(&b), 1e-12));
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r + 2 * c) as f64 * 0.25);
        let b = Matrix::from_fn(5, 4, |r, c| (r * 3 + c) as f64);
        assert!(approx_eq(&a.matmul_t(&b), &a.matmul(&b.transpose()), 1e-12));
    }

    #[test]
    fn broadcast_add_row() {
        let mut m = Matrix::zeros(2, 3);
        m.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn col_sums_and_means() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.col_sums(), vec![4.0, 6.0]);
        assert_eq!(m.col_means(), vec![2.0, 3.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 2, 3.0);
        a.axpy(2.0, &b);
        assert!(a.as_slice().iter().all(|&x| x == 7.0));
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn hadamard_and_zip() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).as_slice(), &[3.0, 3.0, 3.0]);
    }

    #[test]
    fn col_iter_matches_col_without_alloc() {
        let m = Matrix::from_fn(5, 3, |r, c| (r * 10 + c) as f64);
        for c in 0..3 {
            assert_eq!(m.col_iter(c).collect::<Vec<_>>(), m.col(c));
        }
        let mut buf = Vec::new();
        m.copy_col_into(2, &mut buf);
        assert_eq!(buf, m.col(2));
    }

    #[test]
    fn blocked_transpose_matches_naive() {
        // Sizes straddling the tile boundary.
        for (r, c) in [(1, 1), (7, 33), (32, 32), (33, 65), (100, 3)] {
            let m = Matrix::from_fn(r, c, |i, j| (i * 131 + j * 17) as f64);
            let t = m.transpose();
            assert_eq!(t.shape(), (c, r));
            for i in 0..r {
                for j in 0..c {
                    assert_eq!(t[(j, i)], m[(i, j)]);
                }
            }
        }
    }

    #[test]
    fn parallel_gemm_bit_identical_to_sequential() {
        let a = Matrix::from_fn(67, 45, |r, c| ((r * 31 + c * 7) % 13) as f64 * 0.37 - 1.0);
        let b = Matrix::from_fn(45, 52, |r, c| ((r * 5 + c * 11) % 17) as f64 * 0.21 - 0.8);
        let bt = b.transpose();
        for threads in [1, 2, 4] {
            let pool = tasq_par::Pool::new(threads);
            assert_eq!(a.matmul_par(&b, &pool).as_slice(), a.matmul(&b).as_slice());
            assert_eq!(a.t_matmul_par(&a, &pool).as_slice(), a.t_matmul(&a).as_slice());
            assert_eq!(a.matmul_t_par(&bt, &pool).as_slice(), a.matmul_t(&bt).as_slice());
        }
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut m = Matrix::zeros(2, 2);
        assert!(m.is_finite());
        m[(1, 1)] = f64::NAN;
        assert!(!m.is_finite());
    }
}
