//! Natural cubic smoothing spline (Reinsch algorithm).
//!
//! The paper's "XGBoost SS" variant smooths a set of run-time point
//! predictions at nearby token counts into a curve (Section 4.4). This
//! module implements the classic penalized regression spline: minimize
//! `sum (y_i - f(x_i))^2 + lambda * integral f''(t)^2 dt` over natural
//! cubic splines `f`. Following Green & Silverman, the solution solves the
//! pentadiagonal system `(R + lambda Q^T Q) gamma = Q^T y` for the interior
//! second derivatives `gamma`, after which the fitted values are
//! `f = y - lambda Q gamma`.

use serde::{Deserialize, Serialize};

/// A fitted natural cubic smoothing spline.
///
/// # Examples
///
/// ```
/// use tasq_ml::spline::SmoothingSpline;
///
/// let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
/// let ys = [10.0, 7.6, 6.1, 5.2, 4.9];
/// // lambda = 0 interpolates; larger values smooth toward a line.
/// let spline = SmoothingSpline::fit(&xs, &ys, 0.5).unwrap();
/// let mid = spline.evaluate(1.5);
/// assert!(mid > 6.1 && mid < 7.6);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmoothingSpline {
    /// Knot locations (strictly increasing).
    knots: Vec<f64>,
    /// Fitted values at the knots.
    values: Vec<f64>,
    /// Second derivatives at the knots (zero at the boundary — "natural").
    second_derivs: Vec<f64>,
}

impl SmoothingSpline {
    /// Fit a smoothing spline to `(xs, ys)` with smoothing parameter
    /// `lambda >= 0` (`0` interpolates; large values approach the least
    /// squares line).
    ///
    /// Points are sorted internally; duplicate `x` values are averaged.
    /// Returns `None` if fewer than 2 distinct `x` values remain.
    pub fn fit(xs: &[f64], ys: &[f64], lambda: f64) -> Option<Self> {
        assert_eq!(xs.len(), ys.len(), "SmoothingSpline::fit: length mismatch");
        assert!(lambda >= 0.0, "SmoothingSpline::fit: lambda must be non-negative");
        let (knots, mut y) = dedup_sorted(xs, ys);
        let n = knots.len();
        if n < 2 {
            return None;
        }
        if n == 2 {
            // A natural spline through two points is the connecting line.
            return Some(Self { knots, values: y, second_derivs: vec![0.0, 0.0] });
        }

        let h: Vec<f64> = knots.windows(2).map(|w| w[1] - w[0]).collect();
        let m = n - 2; // interior knots

        // R (m x m, tridiagonal) and Q^T Q (m x m, pentadiagonal), stored as
        // symmetric bands: band0 = diagonal, band1 = first sub-diagonal,
        // band2 = second sub-diagonal.
        let mut band0 = vec![0.0; m];
        let mut band1 = vec![0.0; m.saturating_sub(1)];
        let mut band2 = vec![0.0; m.saturating_sub(2)];

        // Column j of Q (j = 0..m-1, corresponding to interior knot j+1) has
        // entries at rows j, j+1, j+2:
        //   q[j][j]   =  1/h[j]
        //   q[j+1][j] = -1/h[j] - 1/h[j+1]
        //   q[j+2][j] =  1/h[j+1]
        let q_col = |j: usize| -> [f64; 3] {
            [1.0 / h[j], -1.0 / h[j] - 1.0 / h[j + 1], 1.0 / h[j + 1]]
        };

        for j in 0..m {
            let qj = q_col(j);
            // R diagonal and off-diagonal.
            band0[j] += (h[j] + h[j + 1]) / 3.0;
            if j + 1 < m {
                band1[j] += h[j + 1] / 6.0;
            }
            // lambda * Q^T Q contributions.
            band0[j] += lambda * qj.iter().map(|v| v * v).sum::<f64>();
            if j + 1 < m {
                let qn = q_col(j + 1);
                // Columns j and j+1 overlap at rows j+1 and j+2.
                band1[j] += lambda * (qj[1] * qn[0] + qj[2] * qn[1]);
            }
            if j + 2 < m {
                let qn = q_col(j + 2);
                // Columns j and j+2 overlap at row j+2 only.
                band2[j] += lambda * qj[2] * qn[0];
            }
        }

        // rhs = Q^T y  (second divided differences of y).
        let rhs: Vec<f64> = (0..m)
            .map(|j| {
                let qj = q_col(j);
                qj[0] * y[j] + qj[1] * y[j + 1] + qj[2] * y[j + 2]
            })
            .collect();

        let gamma_interior = solve_banded_ldl(&band0, &band1, &band2, &rhs)?;

        // f = y - lambda * Q * gamma.
        for (j, &g) in gamma_interior.iter().enumerate() {
            let qj = q_col(j);
            y[j] -= lambda * qj[0] * g;
            y[j + 1] -= lambda * qj[1] * g;
            y[j + 2] -= lambda * qj[2] * g;
        }

        let mut second_derivs = Vec::with_capacity(n);
        second_derivs.push(0.0);
        second_derivs.extend(gamma_interior);
        second_derivs.push(0.0);

        Some(Self { knots, values: y, second_derivs })
    }

    /// Fitted values at the (deduplicated, sorted) knots.
    pub fn fitted_values(&self) -> &[f64] {
        &self.values
    }

    /// Knot locations.
    pub fn knots(&self) -> &[f64] {
        &self.knots
    }

    /// Evaluate the spline at `x`. Outside the knot range the natural
    /// spline extrapolates linearly (second derivative is zero at the
    /// boundary).
    pub fn evaluate(&self, x: f64) -> f64 {
        let n = self.knots.len();
        if n == 1 {
            return self.values[0];
        }
        // Linear extrapolation using the boundary derivative.
        if x <= self.knots[0] {
            let d = self.derivative_at_knot(0);
            return self.values[0] + d * (x - self.knots[0]);
        }
        if x >= self.knots[n - 1] {
            let d = self.derivative_at_knot(n - 1);
            return self.values[n - 1] + d * (x - self.knots[n - 1]);
        }
        let i = match self.knots.binary_search_by(|k| k.total_cmp(&x)) {
            Ok(i) => return self.values[i],
            Err(i) => i - 1,
        };
        let h = self.knots[i + 1] - self.knots[i];
        let a = (self.knots[i + 1] - x) / h;
        let b = (x - self.knots[i]) / h;
        a * self.values[i]
            + b * self.values[i + 1]
            + ((a * a * a - a) * self.second_derivs[i]
                + (b * b * b - b) * self.second_derivs[i + 1])
                * h
                * h
                / 6.0
    }

    /// First derivative at knot `i` (one-sided at the boundaries).
    fn derivative_at_knot(&self, i: usize) -> f64 {
        if i == 0 {
            let h = self.knots[1] - self.knots[0];
            (self.values[1] - self.values[0]) / h
                - h / 6.0 * (2.0 * self.second_derivs[0] + self.second_derivs[1])
        } else {
            let h = self.knots[i] - self.knots[i - 1];
            (self.values[i] - self.values[i - 1]) / h
                + h / 6.0 * (self.second_derivs[i - 1] + 2.0 * self.second_derivs[i])
        }
    }

    /// True if the fitted values are non-increasing across the knots
    /// (within `tolerance` of relative slack). Used by the paper's
    /// "Pattern" metric for XGBoost SS predictions.
    pub fn is_non_increasing(&self, tolerance: f64) -> bool {
        self.values.windows(2).all(|w| w[1] <= w[0] * (1.0 + tolerance) + tolerance)
    }
}

/// Average ys at duplicate x values and return sorted arrays.
fn dedup_sorted(xs: &[f64], ys: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut pairs: Vec<(f64, f64)> = xs.iter().copied().zip(ys.iter().copied()).collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out_x = Vec::with_capacity(pairs.len());
    let mut out_y = Vec::with_capacity(pairs.len());
    let mut i = 0;
    while i < pairs.len() {
        let x = pairs[i].0;
        let mut sum = 0.0;
        let mut count = 0usize;
        while i < pairs.len() && pairs[i].0 == x {
            sum += pairs[i].1;
            count += 1;
            i += 1;
        }
        out_x.push(x);
        out_y.push(sum / count as f64);
    }
    (out_x, out_y)
}

/// Solve a symmetric positive-definite pentadiagonal system via LDL^T.
///
/// `band0` is the diagonal (length m), `band1` the first sub-diagonal
/// (length m-1), `band2` the second sub-diagonal (length m-2).
fn solve_banded_ldl(
    band0: &[f64],
    band1: &[f64],
    band2: &[f64],
    rhs: &[f64],
) -> Option<Vec<f64>> {
    let m = band0.len();
    if m == 0 {
        return Some(Vec::new());
    }
    // Factor A = L D L^T with L unit-lower-triangular, bandwidth 2.
    let mut d = vec![0.0; m]; // D diagonal
    let mut l1 = vec![0.0; m.saturating_sub(1)]; // L sub-diagonal 1
    let mut l2 = vec![0.0; m.saturating_sub(2)]; // L sub-diagonal 2

    for i in 0..m {
        let mut di = band0[i];
        if i >= 1 {
            di -= l1[i - 1] * l1[i - 1] * d[i - 1];
        }
        if i >= 2 {
            di -= l2[i - 2] * l2[i - 2] * d[i - 2];
        }
        if di <= 0.0 || !di.is_finite() {
            return None; // not SPD (should not happen for valid inputs)
        }
        d[i] = di;
        if i + 1 < m {
            let mut v = band1[i];
            if i >= 1 {
                v -= l2[i - 1] * l1[i - 1] * d[i - 1];
            }
            l1[i] = v / di;
        }
        if i + 2 < m {
            l2[i] = band2[i] / di;
        }
    }

    // Forward solve L z = rhs.
    let mut z = rhs.to_vec();
    for i in 0..m {
        if i >= 1 {
            z[i] -= l1[i - 1] * z[i - 1];
        }
        if i >= 2 {
            z[i] -= l2[i - 2] * z[i - 2];
        }
    }
    // Diagonal solve.
    for i in 0..m {
        z[i] /= d[i];
    }
    // Backward solve L^T x = z.
    for i in (0..m).rev() {
        if i + 1 < m {
            z[i] -= l1[i] * z[i + 1];
        }
        if i + 2 < m {
            z[i] -= l2[i] * z[i + 2];
        }
    }
    Some(z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_zero_interpolates() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, 3.0, 2.0, 5.0, 4.0];
        let s = SmoothingSpline::fit(&xs, &ys, 0.0).unwrap();
        for (&x, &y) in xs.iter().zip(&ys) {
            assert!((s.evaluate(x) - y).abs() < 1e-9, "at {x}: {} vs {y}", s.evaluate(x));
        }
    }

    #[test]
    fn large_lambda_approaches_line() {
        // Noisy line: with huge smoothing the fit should be nearly linear.
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + if (*x as usize).is_multiple_of(2) { 0.5 } else { -0.5 }).collect();
        let s = SmoothingSpline::fit(&xs, &ys, 1e9).unwrap();
        // Check near-linearity: second differences of fitted values ~ 0.
        let f = s.fitted_values();
        for w in f.windows(3) {
            let second_diff = w[2] - 2.0 * w[1] + w[0];
            assert!(second_diff.abs() < 1e-3, "second diff {second_diff}");
        }
        // And slope near 2.
        let slope = (f[19] - f[0]) / 19.0;
        assert!((slope - 2.0).abs() < 0.05, "slope {slope}");
    }

    #[test]
    fn smoothing_reduces_roughness() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64 * 0.3).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| (-0.5 * x).exp() * 100.0 + if i % 2 == 0 { 4.0 } else { -4.0 })
            .collect();
        let rough = |vals: &[f64]| -> f64 {
            vals.windows(3).map(|w| (w[2] - 2.0 * w[1] + w[0]).powi(2)).sum()
        };
        let s0 = SmoothingSpline::fit(&xs, &ys, 0.0).unwrap();
        let s1 = SmoothingSpline::fit(&xs, &ys, 10.0).unwrap();
        assert!(rough(s1.fitted_values()) < rough(s0.fitted_values()) * 0.5);
    }

    #[test]
    fn evaluate_between_knots_is_continuous() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 1.0, 4.0, 9.0];
        let s = SmoothingSpline::fit(&xs, &ys, 0.1).unwrap();
        // Sample densely; adjacent evaluations must stay close.
        let mut prev = s.evaluate(0.0);
        let mut x = 0.0;
        while x < 3.0 {
            x += 0.01;
            let v = s.evaluate(x);
            assert!((v - prev).abs() < 0.5, "jump at {x}: {prev} -> {v}");
            prev = v;
        }
    }

    #[test]
    fn extrapolates_linearly() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 1.0, 2.0];
        let s = SmoothingSpline::fit(&xs, &ys, 0.0).unwrap();
        assert!((s.evaluate(-1.0) + 1.0).abs() < 1e-9);
        assert!((s.evaluate(5.0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_x_values_averaged() {
        let xs = [1.0, 1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 5.0, 6.0];
        let s = SmoothingSpline::fit(&xs, &ys, 0.0).unwrap();
        assert_eq!(s.knots(), &[1.0, 2.0, 3.0]);
        assert!((s.evaluate(1.0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn too_few_points_returns_none() {
        assert!(SmoothingSpline::fit(&[1.0], &[2.0], 0.0).is_none());
        assert!(SmoothingSpline::fit(&[], &[], 0.0).is_none());
        assert!(SmoothingSpline::fit(&[1.0, 1.0], &[2.0, 3.0], 0.0).is_none());
    }

    #[test]
    fn two_points_gives_line() {
        let s = SmoothingSpline::fit(&[0.0, 2.0], &[0.0, 4.0], 1.0).unwrap();
        assert!((s.evaluate(1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn monotonicity_check() {
        let dec = SmoothingSpline::fit(&[1.0, 2.0, 3.0], &[5.0, 3.0, 1.0], 0.0).unwrap();
        assert!(dec.is_non_increasing(0.0));
        let inc = SmoothingSpline::fit(&[1.0, 2.0, 3.0], &[1.0, 3.0, 5.0], 0.0).unwrap();
        assert!(!inc.is_non_increasing(0.0));
    }
}
