//! # tasq-ml — from-scratch ML substrate for the TASQ reproduction
//!
//! The TASQ paper (EDBT 2022) compares three model families — XGBoost,
//! feed-forward neural networks, and graph neural networks — for predicting
//! performance-characteristic-curve (PCC) parameters of big-data jobs.
//! There are no mature Rust crates for the GNN the paper uses (a
//! SimGNN-style GCN + attention-pooling network) nor a suitable
//! gradient-boosted tree implementation with a Gamma-deviance objective, so
//! this crate implements the entire ML stack from first principles:
//!
//! * [`matrix`] — dense row-major matrices with the linear algebra needed by
//!   the networks (matmul in all transpose flavours, broadcasting helpers).
//! * [`rand_ext`] — normal / lognormal / Pareto / truncated sampling built on
//!   top of `rand` (so no extra distribution crate is needed).
//! * [`optim`] — Adam optimizer with bias correction and gradient clipping.
//! * [`nn`] — multi-layer perceptrons with manual reverse-mode gradients.
//! * [`gnn`] — graph convolution layers and SimGNN-style attention pooling
//!   with manual reverse-mode gradients.
//! * [`gbdt`] — second-order gradient-boosted regression trees ("XGBoost
//!   from scratch"): exact greedy splits, shrinkage, L2 leaf regularization,
//!   squared-error and Gamma-deviance (log link) objectives.
//! * [`spline`] — natural cubic smoothing spline (Reinsch algorithm).
//! * [`kmeans`] — Lloyd's algorithm with k-means++ initialization.
//! * [`linreg`] — ordinary least squares (used for log-log power-law fits).
//! * [`stats`] — quantiles, two-sample Kolmogorov–Smirnov test, and the
//!   error metrics the paper reports (MAE, MedianAE%, MeanAPE, MedianAPE).
//!
//! Everything is deterministic given a seed; nothing here does I/O.

#![warn(missing_docs)]

pub mod gbdt;
pub mod gnn;
pub mod kmeans;
pub mod linreg;
pub mod matrix;
pub mod nn;
pub mod optim;
pub mod rand_ext;
pub mod spline;
pub mod stats;

pub use matrix::Matrix;
