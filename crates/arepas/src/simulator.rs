//! The AREPAS skyline simulator (the paper's Algorithm 1).

use crate::sections::{split_sections, SectionKind};
use serde::{Deserialize, Serialize};

/// Result of simulating a skyline at a new allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulatedSkyline {
    /// The simulated per-second token usage.
    pub samples: Vec<f64>,
    /// The allocation threshold the simulation ran at.
    pub allocation: f64,
}

impl SimulatedSkyline {
    /// Simulated run time in seconds.
    pub fn runtime_secs(&self) -> usize {
        self.samples.len()
    }

    /// Area (token-seconds) of the simulated skyline.
    pub fn area(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Peak of the simulated skyline.
    pub fn peak(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }
}

/// Simulate the skyline of the same job at a new token allocation.
///
/// Sections of the input skyline at or under `new_allocation` are copied
/// unchanged; sections over it are flattened to the allocation and
/// lengthened to preserve their area (the paper's area-preservation design
/// choice). The paper's pseudo-code truncates the new section length with
/// `int(secArea/Nt)`, which silently drops up to one allocation-second of
/// work per section; this implementation instead emits `floor(area/Nt)`
/// full seconds plus one fractional-usage second, so the total area is
/// preserved *exactly* (the property Section 5.2 validates).
///
/// # Examples
///
/// ```
/// // A job that used up to 7 tokens, re-simulated with only 3.
/// let skyline = [2.0, 7.0, 7.0, 2.0];
/// let sim = arepas::simulate(&skyline, 3.0);
/// assert_eq!(sim.peak(), 3.0);                  // never exceeds the allocation
/// assert_eq!(sim.area(), 18.0);                 // token-seconds preserved
/// assert!(sim.runtime_secs() > skyline.len());  // the job got slower
/// ```
///
/// # Panics
/// Panics if `new_allocation <= 0` or any sample is negative/non-finite.
pub fn simulate(skyline: &[f64], new_allocation: f64) -> SimulatedSkyline {
    assert!(
        new_allocation > 0.0 && new_allocation.is_finite(),
        "simulate: allocation must be positive and finite"
    );
    assert!(
        skyline.iter().all(|s| s.is_finite() && *s >= 0.0),
        "simulate: skyline samples must be finite and non-negative"
    );

    let mut samples = Vec::with_capacity(skyline.len());
    for section in split_sections(skyline, new_allocation) {
        match section.kind {
            SectionKind::Under => samples.extend_from_slice(&section.samples),
            SectionKind::Over => {
                let area = section.area();
                let full_seconds = (area / new_allocation).floor() as usize;
                let remainder = area - full_seconds as f64 * new_allocation;
                samples.extend(std::iter::repeat_n(new_allocation, full_seconds));
                if remainder > 1e-9 {
                    samples.push(remainder);
                }
            }
        }
    }
    SimulatedSkyline { samples, allocation: new_allocation }
}

/// Shortcut: only the simulated run time in seconds.
pub fn simulate_runtime(skyline: &[f64], new_allocation: f64) -> usize {
    simulate(skyline, new_allocation).runtime_secs()
}

/// The paper's *literal* Algorithm 1: over-sections are replaced by
/// `int(secArea/Nt)` seconds at the allocation, truncating the fractional
/// tail — so up to one allocation-second of work is silently dropped per
/// over-section. Kept for the rounding ablation
/// (`experiments/ablation_arepas_rounding`); production code should use
/// [`simulate`], which preserves area exactly.
pub fn simulate_truncating(skyline: &[f64], new_allocation: f64) -> SimulatedSkyline {
    assert!(
        new_allocation > 0.0 && new_allocation.is_finite(),
        "simulate_truncating: allocation must be positive and finite"
    );
    let mut samples = Vec::with_capacity(skyline.len());
    for section in split_sections(skyline, new_allocation) {
        match section.kind {
            SectionKind::Under => samples.extend_from_slice(&section.samples),
            SectionKind::Over => {
                let new_len = (section.area() / new_allocation) as usize;
                samples.extend(std::iter::repeat_n(new_allocation, new_len));
            }
        }
    }
    SimulatedSkyline { samples, allocation: new_allocation }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_above_peak_is_identity() {
        let skyline = [2.0, 5.0, 3.0, 1.0];
        let sim = simulate(&skyline, 10.0);
        assert_eq!(sim.samples, skyline.to_vec());
        assert_eq!(sim.runtime_secs(), 4);
    }

    #[test]
    fn area_is_preserved_exactly() {
        let skyline = [1.0, 8.0, 7.0, 2.0, 9.0, 1.0, 4.0];
        let original_area: f64 = skyline.iter().sum();
        for alloc in [1.0, 2.0, 3.0, 4.5, 6.0, 8.0, 20.0] {
            let sim = simulate(&skyline, alloc);
            assert!(
                (sim.area() - original_area).abs() < 1e-9,
                "alloc {alloc}: area {} vs {original_area}",
                sim.area()
            );
        }
    }

    #[test]
    fn never_exceeds_allocation() {
        let skyline = [1.0, 8.0, 7.0, 2.0, 9.0, 1.0];
        for alloc in [1.5, 3.0, 5.0] {
            let sim = simulate(&skyline, alloc);
            assert!(sim.peak() <= alloc + 1e-12, "alloc {alloc}, peak {}", sim.peak());
        }
    }

    #[test]
    fn runtime_non_decreasing_as_allocation_shrinks() {
        let skyline = [3.0, 10.0, 12.0, 4.0, 1.0, 9.0, 2.0];
        let mut prev = 0usize;
        for alloc in [12.0, 9.0, 6.0, 4.0, 2.0, 1.0] {
            let rt = simulate_runtime(&skyline, alloc);
            assert!(rt >= prev, "alloc {alloc}: runtime {rt} < previous {prev}");
            prev = rt;
        }
    }

    /// The paper's Figure 7 example: an over section of area ~2x the new
    /// allocation takes a bit more than twice as long.
    #[test]
    fn figure7_redistribution() {
        // 4 seconds at 7 tokens = 28 token-secs, new allocation 3.
        let skyline = [7.0, 7.0, 7.0, 7.0];
        let sim = simulate(&skyline, 3.0);
        // floor(28/3) = 9 full seconds + remainder 1.0 => 10 seconds.
        assert_eq!(sim.runtime_secs(), 10);
        assert!((sim.area() - 28.0).abs() < 1e-12);
        assert_eq!(sim.samples[..9], [3.0; 9]);
        assert!((sim.samples[9] - 1.0).abs() < 1e-12);
    }

    /// Figure 6: sections already under the allocation are untouched.
    #[test]
    fn under_sections_unchanged() {
        let skyline = [2.0, 1.0, 9.0, 9.0, 1.0, 2.0];
        let sim = simulate(&skyline, 3.0);
        // Leading and trailing under-sections appear verbatim.
        assert_eq!(&sim.samples[..2], &[2.0, 1.0]);
        let n = sim.samples.len();
        assert_eq!(&sim.samples[n - 2..], &[1.0, 2.0]);
    }

    /// Figure 8's observation: cutting each job to 50% of its own peak,
    /// a flat job slows down ~2x while a peaky job (short tall spike over
    /// a long low baseline) barely slows at all.
    #[test]
    fn peaky_jobs_tolerate_reduction_better_than_flat() {
        // Flat job: constant 10 tokens for 100 s.
        let flat: Vec<f64> = vec![10.0; 100];
        // Peaky job: 90 s at 1 token + a 10 s spike at 100 tokens.
        let mut peaky: Vec<f64> = vec![1.0; 90];
        peaky.extend(std::iter::repeat_n(100.0, 10));

        let flat_slowdown =
            simulate_runtime(&flat, 5.0) as f64 / flat.len() as f64; // 50% of peak 10
        let peaky_slowdown =
            simulate_runtime(&peaky, 50.0) as f64 / peaky.len() as f64; // 50% of peak 100
        assert!((flat_slowdown - 2.0).abs() < 0.05, "flat {flat_slowdown}");
        assert!(peaky_slowdown < 1.2, "peaky {peaky_slowdown}");
    }

    #[test]
    fn empty_skyline_gives_empty_result() {
        let sim = simulate(&[], 5.0);
        assert!(sim.samples.is_empty());
        assert_eq!(sim.runtime_secs(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_allocation_panics() {
        let _ = simulate(&[1.0], 0.0);
    }

    #[test]
    fn truncating_variant_drops_fractional_area() {
        // 28 token-secs over at alloc 3: int(28/3) = 9 seconds, area 27.
        let skyline = [7.0, 7.0, 7.0, 7.0];
        let truncated = simulate_truncating(&skyline, 3.0);
        assert_eq!(truncated.runtime_secs(), 9);
        assert!((truncated.area() - 27.0).abs() < 1e-12, "one token-second dropped");
        // The exact variant keeps all 28.
        assert!((simulate(&skyline, 3.0).area() - 28.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic() {
        let skyline = [4.0, 9.0, 2.0, 8.0];
        assert_eq!(simulate(&skyline, 3.0), simulate(&skyline, 3.0));
    }
}
