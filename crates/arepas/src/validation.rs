//! Validation analyses for AREPAS (paper Section 5.2, Figures 12–13,
//! Table 3).
//!
//! The core assumption — token-seconds stay constant across allocations —
//! is checked by comparing the area under the skyline across pairs of
//! flights of the same job; the simulator's accuracy is summarized with
//! mean/median absolute percentage errors against re-executed ground
//! truth.

use serde::{Deserialize, Serialize};

/// Relative area difference between two flights' skylines:
/// `|a - b| / max(a, b)`.
pub fn relative_area_difference(area_a: f64, area_b: f64) -> f64 {
    let hi = area_a.max(area_b);
    if hi <= 0.0 {
        0.0
    } else {
        (area_a - area_b).abs() / hi
    }
}

/// For the C(n,2) execution pairs of each job, the fraction whose relative
/// area difference is within `tolerance` (one point of the paper's
/// Figure 12 CDF).
pub fn area_match_fraction(job_areas: &[Vec<f64>], tolerance: f64) -> f64 {
    let mut total_pairs = 0usize;
    let mut matches = 0usize;
    for areas in job_areas {
        for i in 0..areas.len() {
            for j in i + 1..areas.len() {
                total_pairs += 1;
                if relative_area_difference(areas[i], areas[j]) <= tolerance {
                    matches += 1;
                }
            }
        }
    }
    if total_pairs == 0 {
        0.0
    } else {
        matches as f64 / total_pairs as f64
    }
}

/// Count outliers per job: an execution is an outlier if it fails the area
/// tolerance against the *majority* of the job's other executions
/// (paper Figure 12 bottom: "number of outliers per job that violate the
/// constant-area assumption").
pub fn count_outliers_per_job(areas: &[f64], tolerance: f64) -> usize {
    let n = areas.len();
    if n < 2 {
        return 0;
    }
    (0..n)
        .filter(|&i| {
            let mismatches = (0..n)
                .filter(|&j| {
                    j != i && relative_area_difference(areas[i], areas[j]) > tolerance
                })
                .count();
            mismatches * 2 > n - 1
        })
        .count()
}

/// Full area-conservation report over a set of flighted jobs
/// (the paper's Figure 12).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AreaConservationReport {
    /// `(tolerance, fraction of execution pairs matching)` — the CDF.
    pub match_cdf: Vec<(f64, f64)>,
    /// Histogram of outlier counts per job at each reported tolerance:
    /// `(tolerance, counts[num_outliers] = num_jobs)`.
    pub outlier_histograms: Vec<(f64, Vec<usize>)>,
}

impl AreaConservationReport {
    /// Build the report from per-job lists of flight areas.
    pub fn build(job_areas: &[Vec<f64>], tolerances: &[f64]) -> Self {
        let match_cdf = tolerances
            .iter()
            .map(|&t| (t, area_match_fraction(job_areas, t)))
            .collect();
        let max_flights = job_areas.iter().map(Vec::len).max().unwrap_or(0);
        let outlier_histograms = tolerances
            .iter()
            .map(|&t| {
                let mut hist = vec![0usize; max_flights + 1];
                for areas in job_areas {
                    hist[count_outliers_per_job(areas, t)] += 1;
                }
                (t, hist)
            })
            .collect();
        Self { match_cdf, outlier_histograms }
    }

    /// Fraction of jobs with at most `k` outliers at the given tolerance
    /// (the paper reports 83% of jobs have <=1 outlier at 30% tolerance).
    pub fn fraction_with_at_most(&self, tolerance: f64, k: usize) -> Option<f64> {
        self.outlier_histograms
            .iter()
            .find(|(t, _)| (*t - tolerance).abs() < 1e-12)
            .map(|(_, hist)| {
                let total: usize = hist.iter().sum();
                if total == 0 {
                    return 0.0;
                }
                let within: usize = hist.iter().take(k + 1).sum();
                within as f64 / total as f64
            })
    }
}

/// Percent-error summary of simulated vs. ground-truth run times
/// (the paper's Table 3: MedianAPE 9% / MeanAPE 14% on the non-anomalous
/// subset).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ErrorSummary {
    /// Number of (simulation, ground-truth) comparisons.
    pub n: usize,
    /// Median absolute percentage error, as a fraction.
    pub median_ape: f64,
    /// Mean absolute percentage error, as a fraction.
    pub mean_ape: f64,
    /// Worst-case absolute percentage error, as a fraction.
    pub max_ape: f64,
}

impl ErrorSummary {
    /// Summarize predictions against ground truth. Pairs whose ground
    /// truth is (numerically) zero are skipped — an exact-zero test would
    /// still divide by denormal values and blow the percentage up.
    pub fn from_pairs(predicted: &[f64], actual: &[f64]) -> Self {
        assert_eq!(predicted.len(), actual.len(), "ErrorSummary: length mismatch");
        let mut apes: Vec<f64> = predicted
            .iter()
            .zip(actual)
            .filter(|(_, a)| a.abs() > 1e-12)
            .map(|(p, a)| ((p - a) / a).abs())
            .collect();
        apes.sort_by(|a, b| a.total_cmp(b));
        let n = apes.len();
        let median_ape = if n == 0 {
            0.0
        } else if n % 2 == 1 {
            apes[n / 2]
        } else {
            0.5 * (apes[n / 2 - 1] + apes[n / 2])
        };
        let mean_ape = if n == 0 { 0.0 } else { apes.iter().sum::<f64>() / n as f64 };
        let max_ape = apes.last().copied().unwrap_or(0.0);
        Self { n, median_ape, mean_ape, max_ape }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_difference_symmetric() {
        assert_eq!(relative_area_difference(100.0, 100.0), 0.0);
        assert!((relative_area_difference(100.0, 80.0) - 0.2).abs() < 1e-12);
        assert_eq!(
            relative_area_difference(80.0, 100.0),
            relative_area_difference(100.0, 80.0)
        );
        assert_eq!(relative_area_difference(0.0, 0.0), 0.0);
    }

    #[test]
    fn match_fraction_counts_pairs() {
        // One job with 3 flights: areas 100, 101, 150.
        // Pairs: (100,101) diff ~1%, (100,150) ~33%, (101,150) ~32.7%.
        let jobs = vec![vec![100.0, 101.0, 150.0]];
        assert!((area_match_fraction(&jobs, 0.05) - 1.0 / 3.0).abs() < 1e-12);
        assert!((area_match_fraction(&jobs, 0.40) - 1.0).abs() < 1e-12);
        assert_eq!(area_match_fraction(&[], 0.5), 0.0);
    }

    #[test]
    fn outlier_detection() {
        // Three consistent flights + one wild one.
        let areas = [100.0, 102.0, 98.0, 300.0];
        assert_eq!(count_outliers_per_job(&areas, 0.1), 1);
        // All consistent.
        assert_eq!(count_outliers_per_job(&[100.0, 101.0], 0.1), 0);
        // Single flight cannot be an outlier.
        assert_eq!(count_outliers_per_job(&[55.0], 0.1), 0);
    }

    #[test]
    fn report_cdf_is_monotone_in_tolerance() {
        let jobs = vec![
            vec![100.0, 110.0, 95.0, 140.0],
            vec![50.0, 52.0, 49.0, 51.0],
            vec![10.0, 20.0, 10.5, 11.0],
        ];
        let tolerances = [0.05, 0.1, 0.3, 0.5, 1.0];
        let report = AreaConservationReport::build(&jobs, &tolerances);
        for w in report.match_cdf.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be monotone: {:?}", report.match_cdf);
        }
        assert!((report.match_cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_with_at_most_outliers() {
        let jobs = vec![
            vec![100.0, 100.0, 100.0, 100.0], // 0 outliers
            vec![100.0, 100.0, 100.0, 400.0], // 1 outlier
        ];
        let report = AreaConservationReport::build(&jobs, &[0.1]);
        assert_eq!(report.fraction_with_at_most(0.1, 0), Some(0.5));
        assert_eq!(report.fraction_with_at_most(0.1, 1), Some(1.0));
        assert_eq!(report.fraction_with_at_most(0.99, 1), None);
    }

    #[test]
    fn error_summary_known_values() {
        let predicted = [110.0, 90.0, 100.0];
        let actual = [100.0, 100.0, 100.0];
        let s = ErrorSummary::from_pairs(&predicted, &actual);
        assert_eq!(s.n, 3);
        assert!((s.median_ape - 0.1).abs() < 1e-12);
        assert!((s.mean_ape - 0.2 / 3.0).abs() < 1e-12);
        assert!((s.max_ape - 0.1).abs() < 1e-12);
    }

    #[test]
    fn error_summary_empty() {
        let s = ErrorSummary::from_pairs(&[], &[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.median_ape, 0.0);
    }
}
