//! Skyline section splitting (lines 1–4 of the paper's Algorithm 1).

use serde::{Deserialize, Serialize};

/// Whether a section sits at-or-under or over the allocation threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SectionKind {
    /// Every sample `<= threshold`: copied unchanged by the simulator.
    Under,
    /// Every sample `> threshold`: flattened and lengthened, preserving area.
    Over,
}

/// A maximal contiguous run of skyline samples on one side of the
/// threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Section {
    /// Side of the threshold.
    pub kind: SectionKind,
    /// Start index (seconds) in the original skyline.
    pub start: usize,
    /// The samples of this section.
    pub samples: Vec<f64>,
}

impl Section {
    /// Area (token-seconds) of this section.
    pub fn area(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Duration in seconds.
    pub fn duration(&self) -> usize {
        self.samples.len()
    }
}

/// Split a skyline into maximal sections entirely under (`<= threshold`) or
/// over (`> threshold`) the new allocation, in order.
///
/// Returns an empty vector for an empty skyline.
pub fn split_sections(skyline: &[f64], threshold: f64) -> Vec<Section> {
    let mut sections: Vec<Section> = Vec::new();
    for (i, &s) in skyline.iter().enumerate() {
        let kind = if s > threshold { SectionKind::Over } else { SectionKind::Under };
        match sections.last_mut() {
            Some(last) if last.kind == kind => last.samples.push(s),
            _ => sections.push(Section { kind, start: i, samples: vec![s] }),
        }
    }
    sections
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_threshold_crossings() {
        let skyline = [1.0, 2.0, 5.0, 6.0, 2.0, 1.0, 7.0];
        let sections = split_sections(&skyline, 3.0);
        assert_eq!(sections.len(), 4);
        assert_eq!(sections[0].kind, SectionKind::Under);
        assert_eq!(sections[0].samples, vec![1.0, 2.0]);
        assert_eq!(sections[1].kind, SectionKind::Over);
        assert_eq!(sections[1].samples, vec![5.0, 6.0]);
        assert_eq!(sections[2].kind, SectionKind::Under);
        assert_eq!(sections[2].samples, vec![2.0, 1.0]);
        assert_eq!(sections[3].kind, SectionKind::Over);
        assert_eq!(sections[3].start, 6);
    }

    #[test]
    fn boundary_value_is_under() {
        // Exactly at the threshold counts as under (fits the allocation).
        let sections = split_sections(&[3.0, 3.0], 3.0);
        assert_eq!(sections.len(), 1);
        assert_eq!(sections[0].kind, SectionKind::Under);
    }

    #[test]
    fn all_over_single_section() {
        let sections = split_sections(&[10.0, 12.0, 11.0], 3.0);
        assert_eq!(sections.len(), 1);
        assert_eq!(sections[0].kind, SectionKind::Over);
        assert_eq!(sections[0].area(), 33.0);
        assert_eq!(sections[0].duration(), 3);
    }

    #[test]
    fn empty_skyline() {
        assert!(split_sections(&[], 5.0).is_empty());
    }

    #[test]
    fn sections_partition_the_skyline() {
        let skyline = [1.0, 9.0, 1.0, 9.0, 1.0];
        let sections = split_sections(&skyline, 4.0);
        let total_len: usize = sections.iter().map(Section::duration).sum();
        let total_area: f64 = sections.iter().map(Section::area).sum();
        assert_eq!(total_len, skyline.len());
        assert_eq!(total_area, skyline.iter().sum::<f64>());
        // Starts are contiguous.
        let mut expected_start = 0;
        for s in &sections {
            assert_eq!(s.start, expected_start);
            expected_start += s.duration();
        }
    }
}
