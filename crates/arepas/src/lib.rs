//! # arepas — Area-Preserving Allocation Simulator
//!
//! AREPAS (TASQ paper, Section 3.2) synthesizes a job's resource skyline at
//! an alternative (lower) token allocation from a single observed skyline,
//! under the core assumption that *the total amount of work — the area
//! under the skyline in token-seconds — stays constant*.
//!
//! Algorithm (the paper's Algorithm 1):
//!
//! 1. Split the skyline into maximal contiguous sections that are entirely
//!    at-or-under or entirely over the new allocation threshold.
//! 2. Sections at or under the threshold are copied unchanged (Figure 6).
//! 3. Sections over the threshold are flattened to the threshold and
//!    lengthened so their area is preserved (Figure 7).
//! 4. Concatenating the sections yields the simulated skyline; its length
//!    is the simulated run time.
//!
//! The module also provides the validation analyses of Section 5.2:
//! area-conservation tolerance matching across flights of the same job,
//! per-job outlier counting, and percent-error summaries against ground
//! truth re-executions.

#![warn(missing_docs)]

pub mod sections;
pub mod simulator;
pub mod validation;

pub use sections::{split_sections, Section, SectionKind};
pub use simulator::{simulate, simulate_runtime, simulate_truncating, SimulatedSkyline};
pub use validation::{
    area_match_fraction, count_outliers_per_job, AreaConservationReport, ErrorSummary,
};
