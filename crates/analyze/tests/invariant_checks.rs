//! End-to-end tests of the semantic invariant layer as `tasq-analyze`
//! exercises it: malformed inputs produce *typed* rejections, and the
//! seeded executor is provably deterministic and race-free under the
//! happens-before checker.

use scope_sim::{
    validate_job, validate_plan, validate_stage_graph, ExecTrace, ExecutionConfig, PlanViolation,
    StageGraph, StageViolation, TraceOp, WorkloadConfig, WorkloadGenerator,
};
use tasq::validate::{
    validate_curve, validate_pcc, CurveViolation, PccViolation, CURVE_TOLERANCE,
};
use tasq::PowerLawPcc;
use tasq_analyze::hb::check_log;

fn generated_job(seed: u64) -> scope_sim::Job {
    WorkloadGenerator::new(WorkloadConfig { num_jobs: 1, seed, ..Default::default() })
        .generate()
        .remove(0)
}

#[test]
fn cyclic_dag_is_rejected_with_a_typed_violation() {
    let mut job = generated_job(7);
    // Close a loop behind `JobPlan::new`'s back, as a corrupted workload
    // file would.
    let n = job.plan.operators.len();
    job.plan.edges.push((n - 1, 0));
    let err = validate_job(&job).expect_err("cycle must be rejected");
    assert!(err.plan.contains(&PlanViolation::Cycle), "{err:?}");
    assert!(validate_plan(&job.plan).is_err());
}

#[test]
fn token_conservation_violations_are_typed() {
    let job = generated_job(9);
    let mut graph = StageGraph::from_plan(&job.plan, job.seed);
    graph.stages[0].task_durations[0] += 25.0; // leak 25 token-seconds
    let errs = validate_stage_graph(&job.plan, &graph).expect_err("leak must be rejected");
    assert!(
        errs.iter().any(|v| matches!(v, StageViolation::WorkNotConserved { stage: 0, .. })),
        "{errs:?}"
    );
}

#[test]
fn non_monotone_pcc_is_rejected() {
    // a > 0 means runtime *rises* with tokens — never valid.
    let rising = PowerLawPcc::new(0.5, 10.0);
    let violations = validate_pcc(&rising).expect_err("rising curve must be rejected");
    assert!(
        violations.iter().any(|v| matches!(v, PccViolation::IncreasingCurve { .. })),
        "{violations:?}"
    );

    // a < -1 - tolerance claims super-linear scaling, beyond Amdahl.
    let superlinear = PowerLawPcc::new(-1.5, 100.0);
    let violations = validate_pcc(&superlinear).expect_err("super-linear must be rejected");
    assert!(
        violations.iter().any(|v| matches!(v, PccViolation::SuperLinearScaling { .. })),
        "{violations:?}"
    );

    // Negative scale is meaningless. `PowerLawPcc::new` asserts it away,
    // so forge the value as a corrupted artifact file would.
    let negative = validate_pcc(&PowerLawPcc { a: -0.5, b: -3.0 }).expect_err("b < 0");
    assert!(
        negative.iter().any(|v| matches!(v, PccViolation::NonPositiveScale { .. })),
        "{negative:?}"
    );
}

#[test]
fn non_monotone_curve_is_rejected_pointwise() {
    let rising = vec![(1u32, 100.0), (2, 60.0), (4, 80.0), (8, 30.0)];
    let violations =
        validate_curve(&rising, CURVE_TOLERANCE).expect_err("33% rise must be rejected");
    assert!(
        violations.iter().any(|v| matches!(v, CurveViolation::NonMonotone { index: 2, .. })),
        "{violations:?}"
    );
    // A rise within tolerance is measurement noise, not a violation.
    let noisy = vec![(1u32, 100.0), (2, 60.0), (4, 61.0), (8, 30.0)];
    assert_eq!(validate_curve(&noisy, CURVE_TOLERANCE), Ok(()));
}

#[test]
fn same_seed_executor_runs_are_deterministic_and_race_free() {
    let job = generated_job(21);
    let executor = job.executor();
    let config = ExecutionConfig::default();

    let mut first = ExecTrace::new();
    let mut second = ExecTrace::new();
    executor.run_traced(8, &config, &mut first).expect("runs");
    executor.run_traced(8, &config, &mut second).expect("runs");
    assert_eq!(first, second, "same-seed traces must be bit-identical");
    assert!(!first.is_empty());

    let log = first.sync_log();
    let races = check_log(&log).expect("log replays to completion");
    assert_eq!(races, vec![], "executor synchronization must be race-free");
}

#[test]
fn dropping_a_recv_edge_exposes_the_scheduler_race() {
    // Mutation test: remove the scheduler's first Recv from the log. The
    // scheduler's later Read of that task's state is now unordered
    // against the task's Write — the checker must call it out.
    let job = generated_job(23);
    let executor = job.executor();
    let mut trace = ExecTrace::new();
    executor.run_traced(8, &ExecutionConfig::default(), &mut trace).expect("runs");
    let mut log = trace.sync_log();
    let pos = log
        .events
        .iter()
        .position(|e| {
            e.actor == scope_sim::trace::SCHEDULER_ACTOR
                && matches!(e.op, TraceOp::Recv { .. })
        })
        .expect("scheduler receives completions");
    log.events.remove(pos);
    let races = check_log(&log).expect("log still replays");
    assert!(!races.is_empty(), "dropping the channel edge must surface a race");
}

#[test]
fn fitted_pcc_from_simulated_curve_is_valid() {
    let job = generated_job(25);
    let executor = job.executor();
    let config = ExecutionConfig::default();
    let mut points = Vec::new();
    for tokens in [1u32, 2, 4, 8, 16, 32] {
        let result = executor.run(tokens, &config).expect("runs");
        points.push((f64::from(tokens), result.runtime_secs));
    }
    let pcc = PowerLawPcc::fit(&points).expect("fits");
    assert_eq!(validate_pcc(&pcc), Ok(()), "a = {}, b = {}", pcc.a, pcc.b);
}
