//! Fixture-driven tests of the lint engine: each rule has a positive
//! fixture (every line it must flag) and a negative fixture (traps it must
//! not fall for — strings, comments, raw strings, `#[cfg(test)]` bodies,
//! inline allows).

use tasq_analyze::rules::{
    lint_source, FLOAT_EQ, NO_PANIC, UNBOUNDED_CHANNEL, UNSEEDED_RNG, WALL_CLOCK,
};

/// Lint a fixture as if it lived at `path`, returning `(rule, line)`.
fn hits(path: &str, source: &str) -> Vec<(String, usize)> {
    lint_source(path, source).into_iter().map(|d| (d.rule, d.line)).collect()
}

fn rules_only(path: &str, source: &str) -> Vec<String> {
    hits(path, source).into_iter().map(|(r, _)| r).collect()
}

#[test]
fn no_panic_positive_fixture_flags_every_construct() {
    let src = include_str!("fixtures/panics_positive.rs");
    let found = hits("crates/core/src/fixture.rs", src);
    let panics: Vec<usize> =
        found.iter().filter(|(r, _)| r == NO_PANIC).map(|&(_, l)| l).collect();
    // unwrap, expect, panic!, todo!, unimplemented!, unreachable!
    assert_eq!(panics, vec![3, 4, 6, 9, 10, 11], "{found:?}");
}

#[test]
fn no_panic_negative_fixture_is_clean() {
    let src = include_str!("fixtures/panics_negative.rs");
    assert_eq!(rules_only("crates/core/src/fixture.rs", src), Vec::<String>::new());
}

#[test]
fn float_eq_positive_fixture_flags_each_comparison() {
    let src = include_str!("fixtures/float_eq_positive.rs");
    let found = hits("crates/core/src/fixture.rs", src);
    let lines: Vec<usize> =
        found.iter().filter(|(r, _)| r == FLOAT_EQ).map(|&(_, l)| l).collect();
    assert_eq!(lines, vec![3, 4, 5], "{found:?}");
}

#[test]
fn float_eq_negative_fixture_is_clean() {
    let src = include_str!("fixtures/float_eq_negative.rs");
    assert_eq!(rules_only("crates/core/src/fixture.rs", src), Vec::<String>::new());
}

#[test]
fn rng_and_clock_positive_fixture() {
    let src = include_str!("fixtures/rng_clock_positive.rs");
    // In the simulator both rules apply.
    let found = hits("crates/scope-sim/src/fixture.rs", src);
    let rng: Vec<usize> =
        found.iter().filter(|(r, _)| r == UNSEEDED_RNG).map(|&(_, l)| l).collect();
    let clock: Vec<usize> =
        found.iter().filter(|(r, _)| r == WALL_CLOCK).map(|&(_, l)| l).collect();
    assert_eq!(rng, vec![3, 4, 5], "{found:?}");
    assert_eq!(clock, vec![6, 7], "{found:?}");
    // Outside the simulator the wall-clock rule is out of scope.
    let outside = rules_only("crates/core/src/fixture.rs", src);
    assert!(outside.iter().all(|r| r == UNSEEDED_RNG), "{outside:?}");
}

#[test]
fn rng_and_clock_negative_fixture_is_clean() {
    let src = include_str!("fixtures/rng_clock_negative.rs");
    assert_eq!(rules_only("crates/scope-sim/src/fixture.rs", src), Vec::<String>::new());
}

#[test]
fn channel_fixtures_scope_to_concurrent_crates() {
    let pos = include_str!("fixtures/channels_positive.rs");
    let found = hits("crates/serve/src/fixture.rs", pos);
    let lines: Vec<usize> =
        found.iter().filter(|(r, _)| r == UNBOUNDED_CHANNEL).map(|&(_, l)| l).collect();
    assert_eq!(lines, vec![3, 4], "{found:?}");
    // The rule does not apply outside serve / scope-sim.
    assert!(rules_only("crates/core/src/fixture.rs", pos).is_empty());

    let neg = include_str!("fixtures/channels_negative.rs");
    assert!(rules_only("crates/serve/src/fixture.rs", neg).is_empty());
}

#[test]
fn experiments_tree_waives_panics_and_float_eq() {
    let src = include_str!("fixtures/panics_positive.rs");
    assert!(rules_only("crates/experiments/src/fixture.rs", src).is_empty());
    let feq = include_str!("fixtures/float_eq_positive.rs");
    assert!(rules_only("crates/experiments/src/fixture.rs", feq).is_empty());
}

#[test]
fn vendored_and_test_trees_are_never_linted() {
    let src = include_str!("fixtures/panics_positive.rs");
    assert!(rules_only("vendor/rand/src/fixture.rs", src).is_empty());
    assert!(rules_only("crates/core/tests/fixture.rs", src).is_empty());
    assert!(rules_only("crates/bench/benches/fixture.rs", src).is_empty());
}

#[test]
fn diagnostics_carry_precise_spans() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let diags = lint_source("crates/core/src/fixture.rs", src);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].line, 1);
    assert_eq!(diags[0].col, 32, "column of `.unwrap()`: {diags:?}");
    let rendered = diags[0].to_string();
    assert!(
        rendered.contains("crates/core/src/fixture.rs:1:32"),
        "span must render clickable: {rendered}"
    );
}

#[test]
fn no_panic_and_float_eq_cover_the_syscall_and_recovery_crates() {
    // The raw-syscall networking stack and the checkpoint/recovery layer
    // are exactly where a stray panic or a bitwise float comparison does
    // the most damage — pin that the rules are in force there, so a
    // future path-allowlist edit cannot silently exempt them.
    let panics = include_str!("fixtures/panics_positive.rs");
    let floats = include_str!("fixtures/float_eq_positive.rs");
    for path in ["crates/net/src/server.rs", "crates/resil/src/checkpoint.rs"] {
        assert!(
            rules_only(path, panics).iter().any(|r| r == NO_PANIC),
            "no-panic must apply to {path}"
        );
        assert!(
            rules_only(path, floats).iter().any(|r| r == FLOAT_EQ),
            "float-eq must apply to {path}"
        );
    }
}
