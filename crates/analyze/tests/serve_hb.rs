//! Happens-before audit of the real concurrent serving stack.
//!
//! A traced [`ScoringServer`] run — real worker threads, real bounded
//! channels — must produce a synchronization log the vector-clock checker
//! proves race-free, and two same-seed runs must record the same number of
//! events. A mutation test then drops one worker `Recv` edge from the log
//! and demands the checker expose the resulting unordered request-buffer
//! access.

use scope_sim::{EventLog, EventTrace, TraceOp, WorkloadConfig, WorkloadGenerator};
use std::sync::Arc;
use tasq::models::{NnTrainConfig, XgbTrainConfig};
use tasq::pipeline::{
    JobRepository, ModelChoice, ModelStore, PipelineConfig, ScoringConfig, TasqPipeline,
};
use tasq_analyze::hb::check_log;
use tasq_serve::{CacheConfig, ModelRegistry, ScoringServer, ServeConfig, Ticket};

/// Train a small registry and run `requests` jobs through a traced server.
fn traced_run(requests: usize, seed: u64) -> EventLog {
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: requests,
        seed,
        ..Default::default()
    })
    .generate();
    let repo = JobRepository::new();
    repo.ingest(jobs.clone());
    let store = ModelStore::new();
    TasqPipeline::new(PipelineConfig {
        xgb: XgbTrainConfig { num_rounds: 10, ..Default::default() },
        nn: NnTrainConfig { epochs: 4, ..Default::default() },
        ..Default::default()
    })
    .train(&repo, &store)
    .expect("trains");
    let registry = Arc::new(
        ModelRegistry::deploy(&store, ModelChoice::Nn, ScoringConfig::default())
            .expect("deploys"),
    );

    let trace = EventTrace::new();
    let server = ScoringServer::start(
        registry,
        ServeConfig {
            workers: 3,
            cache: CacheConfig { enabled: false, ..Default::default() },
            trace: Some(trace.clone()),
            ..Default::default()
        },
    );
    let tickets: Vec<Ticket> =
        jobs.into_iter().map(|j| server.submit(j).expect("admitted")).collect();
    for ticket in tickets {
        assert!(ticket.wait().is_some(), "every admitted request must be answered");
    }
    server.shutdown();
    trace.snapshot()
}

#[test]
fn traced_server_runs_are_race_free_and_consistent() {
    let first = traced_run(16, 83);
    let second = traced_run(16, 83);

    // Thread interleavings differ between runs, so the logs need not be
    // identical — but the event *count* is determined by the request
    // stream, and both must replay race-free.
    assert_eq!(first.len(), second.len(), "same-seed runs record the same events");
    assert!(first.len() >= 16 * 8, "submit + worker + waiter events per request");

    for log in [&first, &second] {
        let races = check_log(log).expect("server log replays to completion");
        assert_eq!(races, vec![], "serving stack must be race-free");
    }
}

#[test]
fn dropping_a_worker_recv_exposes_the_request_buffer_race() {
    let mut log = traced_run(8, 89);
    // Remove one worker-side queue Recv: the worker's Read of that
    // request's buffer is now unordered against the submitter's Write.
    let pos = log
        .events
        .iter()
        .position(|e| {
            matches!(e.op, TraceOp::Recv { chan, .. } if chan == tasq_serve::server::CHAN_QUEUE)
        })
        .expect("workers receive from the queue channel");
    log.events.remove(pos);
    let races = check_log(&log).expect("mutated log still replays");
    assert!(
        !races.is_empty(),
        "dropping the queue edge must surface the request-buffer race"
    );
}
