// Fixture: seeded RNG construction the rules must NOT flag.
fn clean(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let other = SmallRng::seed_from_u64(seed ^ 1);
    // Mentioning thread_rng() in a comment is fine; so is the string:
    let s = "call thread_rng() or Instant::now() — not code";
    seed + s.len() as u64
}
