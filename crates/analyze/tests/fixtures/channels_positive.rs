// Fixture: unbounded channel constructions the rule must flag.
fn violations() {
    let (tx, rx) = mpsc::channel::<u32>();
    let (ctx, crx) = crossbeam::channel::unbounded::<u32>();
    drop((tx, rx, ctx, crx));
}
