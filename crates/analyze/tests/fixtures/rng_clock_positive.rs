// Fixture: unseeded RNG and wall-clock reads the rules must flag.
fn violations() -> u64 {
    let mut rng = rand::thread_rng();
    let other = SmallRng::from_entropy();
    let n: u64 = rand::random();
    let t = Instant::now();
    let w = SystemTime::now();
    n
}
