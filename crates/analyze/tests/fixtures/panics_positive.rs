// Fixture: every construct the no-panic rule must flag, one per line.
fn violations(x: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = x.unwrap();
    let b = r.expect("boom");
    if a > b {
        panic!("a > b");
    }
    match a {
        0 => todo!(),
        1 => unimplemented!(),
        _ => unreachable!(),
    }
}
