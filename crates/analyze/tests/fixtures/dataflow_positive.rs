//! Positive dataflow-pass fixture: every function below plants exactly
//! one defect the parser → CFG → dataflow pipeline must flag. The tests
//! assert exact `line:col` spans, so the layout here is load-bearing —
//! do not reflow.

pub fn leaks_on_error_path() -> io::Result<()> {
    let ep = sys::epoll_create1()?;
    let fd = sys::socket()?;
    sys::close(ep);
    sys::close(fd);
    Ok(())
}

pub fn closes_twice() -> io::Result<()> {
    let fd = sys::socket()?;
    sys::close(fd);
    sys::close(fd);
    Ok(())
}

pub fn peeks_without_justification(buf: &[u8]) -> u8 {
    let p = buf.as_ptr();
    unsafe { *p }
}

pub fn holds_guard_across_read(m: &Mutex<u32>, fd: i32, buf: &mut [u8]) -> io::Result<usize> {
    let g = m.lock();
    let n = sys::read(fd, buf)?;
    drop(g);
    Ok(n)
}
