// Fixture: constructs the no-panic rule must NOT flag.
fn clean(x: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = x.unwrap_or(0);
    let b = x.unwrap_or_else(|| 1);
    let c = x.unwrap_or_default();
    let d = r.expect_err("fine: not .expect(");
    assert!(a <= 10, "assert! is allowed; it states an invariant");
    debug_assert!(b <= 10);
    // The words unwrap() and panic!() in a comment are not code.
    let s = "strings with .unwrap() and panic!(...) are not code";
    let raw = r#"raw strings with "quotes" and .unwrap() are not code"#;
    a + b + c + s.len() as u32 + raw.len() as u32
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_freely() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let w: Result<u32, ()> = Ok(4);
        assert_eq!(w.expect("in tests"), 4);
        if v.is_none() {
            panic!("unreachable in this test");
        }
    }
}
