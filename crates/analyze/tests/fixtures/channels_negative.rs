// Fixture: bounded channel constructions the rule must NOT flag.
fn clean() {
    let (tx, rx) = mpsc::sync_channel::<u32>(64);
    let (ctx, crx) = crossbeam::channel::bounded::<u32>(64);
    drop((tx, rx, ctx, crx));
}
