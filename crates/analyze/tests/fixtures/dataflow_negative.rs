//! Negative dataflow-pass fixture: correct resource, lock, and unsafe
//! handling the pipeline must stay silent on. Analyzed under an
//! allowlisted path (`crates/net/src/sys.rs`) so the justified `unsafe`
//! is in bounds.

pub fn closes_on_both_paths() -> io::Result<()> {
    let fd = sys::socket()?;
    match sys::accept4(fd) {
        Ok(c) => {
            sys::close(c);
        }
        Err(_) => {}
    }
    sys::close(fd);
    Ok(())
}

pub fn transfers_ownership() -> io::Result<Conn> {
    let fd = sys::socket()?;
    Ok(Conn::new(fd))
}

pub fn justified_unsafe(buf: &[u8]) -> u8 {
    let p = buf.as_ptr();
    // SAFETY: `p` points into `buf`, which the caller keeps alive for
    // the duration of this read.
    unsafe { *p }
}

pub fn drops_guard_before_read(m: &Mutex<u32>, fd: i32, buf: &mut [u8]) -> io::Result<usize> {
    let g = m.lock();
    let v = *g;
    drop(g);
    let n = sys::read(fd, buf)?;
    Ok(n + v as usize)
}

pub fn scoped_guard_then_block(m: &Mutex<u32>, fd: i32, buf: &mut [u8]) -> io::Result<usize> {
    {
        let g = m.lock();
        touch(&g);
    }
    sys::read(fd, buf)
}

pub fn waived_leak_is_silent() -> io::Result<i32> {
    // lint: allow(resource-leak) — the fd is inherited by a child exec
    // and closed by the kernel on its exit.
    let fd = sys::socket()?;
    register(fd);
    Ok(0)
}
