// Fixture: comparisons the float-eq rule must NOT flag.
fn clean(a: f64, n: u32) -> bool {
    let p = (a - 0.5).abs() < 1e-9; // tolerance compare: fine
    let q = n == 3; // integer literal: fine
    let r = a <= 0.0; // ordering, not equality: fine
    let s = a >= 1.5;
    // lint: allow(float-eq) — exact sentinel propagated unchanged.
    let t = a == 0.0;
    p || q || r || s || t
}
