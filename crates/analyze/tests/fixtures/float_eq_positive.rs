// Fixture: float-literal equality comparisons the rule must flag.
fn violations(a: f64, b: f64) -> bool {
    let x = a == 0.0;
    let y = 1e-3 != b;
    let z = a == 2.5f64;
    x || y || z
}
