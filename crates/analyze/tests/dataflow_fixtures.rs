//! Fixture-driven tests of the parser → CFG → dataflow pipeline: planted
//! defects must be flagged at exact `line:col` spans, clean code must
//! stay silent, and the parser must fully cover the crates whose unsafe
//! and fd handling the passes gate (`crates/net`, `crates/par`).

use std::path::Path;
use tasq_analyze::passes::{analyze_file, PASS_NAMES};
use tasq_analyze::{report, run_check, CheckOptions, Severity};

/// Analyze a fixture as if it lived at `path`, returning
/// `(rule, line, col, message)` per finding.
fn findings(path: &str, source: &str) -> Vec<(String, usize, usize, String)> {
    let out = analyze_file(path, source, &PASS_NAMES);
    assert_eq!(out.functions_unparsed, 0, "fixture must parse fully");
    out.diagnostics.into_iter().map(|d| (d.rule, d.line, d.col, d.message)).collect()
}

#[test]
fn planted_defects_are_flagged_at_exact_spans() {
    let src = include_str!("fixtures/dataflow_positive.rs");
    let found = findings("crates/serve/src/fixture.rs", src);
    let spans: Vec<(&str, usize, usize)> =
        found.iter().map(|(r, l, c, _)| (r.as_str(), *l, *c)).collect();
    assert_eq!(
        spans,
        vec![
            ("resource-leak", 8, 5),
            ("resource-leak", 17, 5),
            ("unsafe-boundary", 23, 5),
            ("lock-discipline", 28, 22),
        ],
        "{found:#?}"
    );
    assert!(found[0].3.contains("fd `ep`") && found[0].3.contains("error path"), "{found:#?}");
    assert!(found[1].3.contains("double close"), "{found:#?}");
    assert!(found[2].3.contains("outside the audited boundary"), "{found:#?}");
    assert!(found[3].3.contains("guard `g`") && found[3].3.contains("sys::read"), "{found:#?}");
}

#[test]
fn clean_code_produces_no_findings() {
    let src = include_str!("fixtures/dataflow_negative.rs");
    // Analyzed under an allowlisted path so the SAFETY-commented unsafe
    // is inside the audited boundary.
    let found = findings("crates/net/src/sys.rs", src);
    assert!(found.is_empty(), "{found:#?}");
}

#[test]
fn missing_safety_comment_is_flagged_even_inside_the_boundary() {
    let src = "pub fn f(b: &[u8]) -> u8 {\n    let p = b.as_ptr();\n    unsafe { *p }\n}\n";
    let found = findings("crates/net/src/sys.rs", src);
    assert_eq!(found.len(), 1, "{found:#?}");
    assert_eq!((found[0].1, found[0].2), (3, 5));
    assert!(found[0].3.contains("SAFETY"), "{found:#?}");
}

/// The parser must handle every non-test function in the crates whose
/// coverage the gate denies on — otherwise the dataflow passes silently
/// skip the exact code they exist to audit.
#[test]
fn parser_fully_covers_the_gated_crates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("crates dir");
    for krate in ["net", "par"] {
        let src_dir = root.join(krate).join("src");
        let mut parsed = 0usize;
        for entry in std::fs::read_dir(&src_dir).expect("src dir") {
            let path = entry.expect("dir entry").path();
            if path.extension().is_none_or(|e| e != "rs") {
                continue;
            }
            let source = std::fs::read_to_string(&path).expect("source");
            let rel = format!("crates/{krate}/src/{}", path.file_name().unwrap().to_string_lossy());
            let out = analyze_file(&rel, &source, &PASS_NAMES);
            assert_eq!(out.functions_unparsed, 0, "{rel}: {:#?}", out.diagnostics);
            parsed += out.functions_parsed;
        }
        assert!(parsed > 10, "only {parsed} functions parsed under {}", src_dir.display());
    }
}

/// End-to-end through `run_check` and both renderers: a planted leak in
/// a scratch workspace shows up with its `path:line:col` span in the
/// human report and as structured fields in the JSON report.
#[test]
fn reports_render_exact_spans_in_human_and_json() {
    let root = std::env::temp_dir().join(format!("tasq-analyze-fixture-{}", std::process::id()));
    let src_dir = root.join("crates/net/src");
    std::fs::create_dir_all(&src_dir).expect("scratch workspace");
    std::fs::write(
        src_dir.join("leaky.rs"),
        "pub fn acquire() -> io::Result<i32> {\n    let fd = sys::socket()?;\n    let ep = sys::epoll_create1()?;\n    sys::close(ep);\n    Ok(fd)\n}\n",
    )
    .expect("fixture source");

    let check = run_check(&CheckOptions {
        root: root.clone(),
        static_only: true,
        pass: Some("resource-leak".to_string()),
    })
    .expect("check runs");
    std::fs::remove_dir_all(&root).ok();

    assert!(!check.ok());
    assert_eq!(check.functions_parsed, 1);
    assert_eq!(check.diagnostics.len(), 1, "{:#?}", check.diagnostics);
    let d = &check.diagnostics[0];
    assert_eq!(d.severity, Severity::Deny);
    // `let ep = …?;` on line 3 leaks `fd` (line 2) down the error edge.
    assert_eq!((d.path.as_str(), d.line, d.col), ("crates/net/src/leaky.rs", 3, 5));

    let human = report::to_human(&check);
    assert!(
        human.contains("deny: crates/net/src/leaky.rs:3:5: [resource-leak]"),
        "human report missing the span:\n{human}"
    );
    let json = report::to_json(&check);
    assert!(json.contains("\"schema\": 2"), "{json}");
    assert!(json.contains("\"passes\": [\"resource-leak\"]"), "{json}");
    assert!(
        json.contains("\"rule\": \"resource-leak\"")
            && json.contains("\"line\": 3")
            && json.contains("\"col\": 5"),
        "json report missing the span:\n{json}"
    );
}

/// An unknown pass name must be a hard error, not a silent no-op run.
#[test]
fn unknown_pass_name_is_rejected() {
    let err = run_check(&CheckOptions {
        root: std::path::PathBuf::from("does-not-matter"),
        static_only: true,
        pass: Some("resource-laek".to_string()),
    })
    .expect_err("typo'd pass must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    assert!(err.to_string().contains("resource-leak"), "{err}");
}

/// Regression gate for the real workspace: the three dataflow passes,
/// the lints, and the lock-order audit must all be clean over the tree
/// as committed — every remaining `unsafe`, guard scope, and fd path is
/// either correct or carries a justified inline waiver.
#[test]
fn committed_workspace_is_clean_under_every_static_pass() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let check =
        run_check(&CheckOptions { root, static_only: true, pass: None }).expect("check runs");
    let denies: Vec<_> =
        check.diagnostics.iter().filter(|d| d.severity == Severity::Deny).collect();
    assert!(denies.is_empty(), "{denies:#?}");
    assert_eq!(check.functions_unparsed, 0, "parser coverage regressed");
    assert_eq!(check.passes, PASS_NAMES.to_vec());
}
