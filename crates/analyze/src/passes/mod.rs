//! Dataflow-driven analysis passes (parser → CFG → worklist solver).
//!
//! Where [`crate::rules`] sees one blanked line at a time, these passes
//! see whole functions: [`crate::parser`] builds per-function ASTs,
//! [`crate::cfg`] lowers them to control-flow graphs with explicit
//! `?`-error and panic edges, and [`crate::dataflow`] runs each pass's
//! transfer function to a fixed point. That is what it takes to prove
//! statements like "this fd is closed on *every* path" or "no guard is
//! held when this thread blocks".
//!
//! | pass | question it answers |
//! |------|---------------------|
//! | [`resource_leak`] | does every acquired fd reach `sys::close` (or an ownership transfer) on all paths, error paths included? |
//! | [`unsafe_boundary`] | is `unsafe` confined to the audited shim, justified in writing, and free of dangling-pointer patterns? |
//! | [`lock_discipline`] | is any lock guard held across `recv`/`epoll_wait`/`park`/`join`? |
//!
//! Findings respect the same `// lint: allow(rule) — reason` waivers as
//! the line-oriented rules, and functions the parser cannot handle are
//! surfaced as `parse-coverage` diagnostics (deny inside the crates the
//! passes are contracted to cover, warn elsewhere) instead of being
//! silently skipped — an analyzer that quietly sees nothing is worse
//! than none.

pub mod lock_discipline;
pub mod resource_leak;
pub mod unsafe_boundary;

use crate::cfg::build_all;
use crate::lexer::scan;
use crate::parser::parse_file;
use crate::{Diagnostic, Severity};

/// Rule id for functions the parser could not handle.
pub const PARSE_COVERAGE: &str = "parse-coverage";

/// Names of the dataflow passes, in canonical order.
pub const PASS_NAMES: [&str; 3] =
    [resource_leak::RULE, unsafe_boundary::RULE, lock_discipline::RULE];

/// Crates whose sources the passes are contracted to fully parse:
/// an unparsed non-test function there is a deny, not a shrug.
const COVERAGE_GATED: [&str; 2] = ["crates/net/", "crates/par/"];

/// One pass finding before it is tied to a file path.
#[derive(Debug)]
pub struct Finding {
    /// Rule id (`resource-leak`, …).
    pub rule: &'static str,
    /// Deny fails the check.
    pub severity: Severity,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

/// The pass results for one file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Functions the parser handled (test regions included).
    pub functions_parsed: usize,
    /// Non-test functions the parser could not handle.
    pub functions_unparsed: usize,
    /// Findings, with inline waivers already applied.
    pub diagnostics: Vec<Diagnostic>,
}

/// Run the selected passes (`names` ⊆ [`PASS_NAMES`]) over one source
/// file. `path` is the workspace-relative path findings report.
pub fn analyze_file(path: &str, source: &str, names: &[&str]) -> FileOutcome {
    let scanned = scan(source);
    let parsed = parse_file(&scanned);
    let mut outcome = FileOutcome {
        functions_parsed: parsed.functions.len(),
        ..FileOutcome::default()
    };
    let mut findings: Vec<Finding> = Vec::new();

    for u in &parsed.unparsed {
        if u.in_test {
            continue;
        }
        outcome.functions_unparsed += 1;
        let gated = COVERAGE_GATED.iter().any(|p| path.starts_with(p));
        findings.push(Finding {
            rule: PARSE_COVERAGE,
            severity: if gated { Severity::Deny } else { Severity::Warn },
            line: u.span.line,
            col: u.span.col,
            message: format!(
                "`{}` could not be parsed, so the dataflow passes did not audit it: {}",
                u.name, u.error
            ),
        });
    }

    if names.contains(&unsafe_boundary::RULE) {
        findings.extend(unsafe_boundary::run(path, &scanned, &parsed));
    }
    let leak = names.contains(&resource_leak::RULE);
    let lock = names.contains(&lock_discipline::RULE);
    if leak || lock {
        for f in &parsed.functions {
            if f.in_test {
                continue;
            }
            for cfg in build_all(f) {
                if leak {
                    findings.extend(resource_leak::run(&cfg));
                }
                if lock {
                    findings.extend(lock_discipline::run(&cfg));
                }
            }
        }
    }

    for f in findings {
        let waived = scanned
            .lines
            .get(f.line.wrapping_sub(1))
            .is_some_and(|l| l.allows.iter().any(|a| a == f.rule));
        if waived {
            continue;
        }
        outcome.diagnostics.push(Diagnostic {
            rule: f.rule.to_string(),
            severity: f.severity,
            path: path.to_string(),
            line: f.line,
            col: f.col,
            message: f.message,
        });
    }
    outcome.diagnostics.sort_by_key(|d| (d.line, d.col));
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leak_finding_carries_path_and_span() {
        let src = "fn f() -> io::Result<()> {\n    let fd = sys::socket()?;\n    Ok(())\n}\n";
        let out = analyze_file("crates/net/src/x.rs", src, &PASS_NAMES);
        assert_eq!(out.functions_parsed, 1);
        assert_eq!(out.functions_unparsed, 0);
        assert_eq!(out.diagnostics.len(), 1, "{:?}", out.diagnostics);
        let d = &out.diagnostics[0];
        assert_eq!(d.rule, "resource-leak");
        assert_eq!(d.path, "crates/net/src/x.rs");
    }

    #[test]
    fn inline_allow_waives_a_pass_finding() {
        let src = "fn f() -> io::Result<()> {\n    // lint: allow(resource-leak) — fd intentionally inherited by exec.\n    let fd = sys::socket()?;\n    Ok(())\n}\n";
        let out = analyze_file("crates/net/src/x.rs", src, &PASS_NAMES);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
    }

    #[test]
    fn unparsed_fn_denies_in_gated_crates_warns_elsewhere() {
        // A genuinely unparseable body: stray closing brace imbalance is
        // resynced, so use an exotic construct instead.
        let src = "fn f() {\n    let x = yield 3;\n}\n";
        let gated = analyze_file("crates/net/src/x.rs", src, &PASS_NAMES);
        let free = analyze_file("crates/tasq/src/x.rs", src, &PASS_NAMES);
        assert_eq!(gated.functions_unparsed, 1);
        assert_eq!(gated.diagnostics.len(), 1);
        assert_eq!(gated.diagnostics[0].severity, Severity::Deny);
        assert_eq!(free.diagnostics[0].severity, Severity::Warn);
    }

    #[test]
    fn pass_selection_limits_what_runs() {
        let src = "fn f(p: *const u8) -> io::Result<u8> {\n    let fd = sys::socket()?;\n    let v = unsafe { *p };\n    Ok(v)\n}\n";
        let only_unsafe = analyze_file("crates/serve/src/x.rs", src, &["unsafe-boundary"]);
        assert!(only_unsafe.diagnostics.iter().all(|d| d.rule == "unsafe-boundary"));
        let only_leak = analyze_file("crates/serve/src/x.rs", src, &["resource-leak"]);
        assert!(only_leak.diagnostics.iter().all(|d| d.rule == "resource-leak"));
        assert!(!only_leak.diagnostics.is_empty());
    }
}
