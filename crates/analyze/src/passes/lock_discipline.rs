//! Lock-discipline audit: no mutex/rwlock guard may be held across a
//! blocking operation.
//!
//! A guard held across `recv`, `epoll_wait`, `accept4`, `park`, or a
//! thread `join` turns one slow producer into a fleet-wide stall — every
//! other thread that wants the lock queues behind a sleeper. The serving
//! stack's shards and the trainer's registry are exactly the places this
//! bites.
//!
//! The analysis tracks the **held set** as a forward dataflow fact: a map
//! from guard binding to its acquisition site. Guards enter the set at
//! `let g = m.lock().unwrap()` bindings (and `if let Ok(g) = m.lock()`
//! pattern binds), and leave it at the [`NodeKind::ScopeEnd`] where the
//! binding drops, at an explicit `drop(g)`, or at a rebind. A post-pass
//! flags every node that evaluates a blocking operation while the
//! entering held set is non-empty, plus the same-expression case where a
//! *temporary* guard is blocked on directly
//! (`shared.lock().unwrap().recv()`).

use crate::cfg::{Cfg, Edge, EdgeKind, NodeKind};
use crate::dataflow::{solve, Analysis};
use crate::parser::{Expr, Span};
use crate::passes::Finding;
use crate::Severity;
use std::collections::BTreeMap;

/// Rule id reported by this pass.
pub const RULE: &str = "lock-discipline";

/// Guard-producing zero-argument methods.
const GUARD_METHODS: [&str; 3] = ["lock", "read", "write"];

/// Result-peeling wrappers between the lock call and the binding.
const UNWRAPS: [&str; 3] = ["unwrap", "expect", "unwrap_or_else"];

/// Methods that block the calling thread.
const BLOCKING_METHODS: [&str; 6] =
    ["recv", "recv_timeout", "recv_deadline", "park_timeout", "wait", "wait_timeout"];

/// Free-function call-path suffixes that block.
const BLOCKING_CALLS: [[&str; 2]; 8] = [
    ["thread", "park"],
    ["thread", "park_timeout"],
    ["thread", "sleep"],
    ["sys", "read"],
    ["sys", "write"],
    ["sys", "writev"],
    ["sys", "epoll_wait"],
    ["sys", "accept4"],
];

/// Pattern constructors that receive a lock result's success payload.
const OK_CTORS: [&str; 2] = ["Ok", "Some"];

type Fact = BTreeMap<String, (usize, usize)>;

fn peel_unwraps(e: &Expr) -> &Expr {
    match e {
        Expr::Try { inner, .. } => peel_unwraps(inner),
        Expr::MethodCall { recv, method, .. } if UNWRAPS.contains(&method.as_str()) => {
            peel_unwraps(recv)
        }
        _ => e,
    }
}

/// Does this initializer produce a lock guard?
fn acquires_guard(e: &Expr) -> bool {
    matches!(peel_unwraps(e), Expr::MethodCall { method, args, .. }
        if GUARD_METHODS.contains(&method.as_str()) && args.is_empty())
}

/// The blocking operation inside `e`, if any: `(span, description)`.
/// Closure bodies are skipped — they block *their* caller, not this
/// function.
fn blocking_op(e: &Expr) -> Option<(Span, String)> {
    let mut found = None;
    e.walk_pruned(&mut |x| {
        if found.is_some() || matches!(x, Expr::Closure { .. }) {
            return false;
        }
        match x {
            Expr::MethodCall { method, args, span, .. }
                if BLOCKING_METHODS.contains(&method.as_str())
                    || (method == "join" && args.is_empty()) =>
            {
                found = Some((*span, format!(".{method}()")));
            }
            Expr::Call { callee, span, .. } => {
                if let Expr::Path { segs, .. } = &**callee {
                    let n = segs.len();
                    for suffix in BLOCKING_CALLS {
                        if n >= 2 && segs[n - 2] == suffix[0] && segs[n - 1] == suffix[1] {
                            found = Some((*span, segs.join("::")));
                        }
                    }
                }
            }
            _ => {}
        }
        true
    });
    found
}

/// A blocking method invoked directly on a just-acquired temporary guard
/// (`shared.lock().unwrap().recv()`): the guard lives until the end of
/// the whole statement, so the receive happens under the lock.
fn blocked_temporary(e: &Expr) -> Option<(Span, String)> {
    let mut found = None;
    e.walk_pruned(&mut |x| {
        if found.is_some() || matches!(x, Expr::Closure { .. }) {
            return false;
        }
        if let Expr::MethodCall { recv, method, span, .. } = x {
            let blocking = BLOCKING_METHODS.contains(&method.as_str());
            let mut guarded = false;
            recv.walk(&mut |r| {
                if let Expr::MethodCall { method: m, args, .. } = r {
                    if GUARD_METHODS.contains(&m.as_str()) && args.is_empty() {
                        guarded = true;
                    }
                }
            });
            if blocking && guarded {
                found = Some((*span, format!(".{method}()")));
            }
        }
        true
    });
    found
}

/// `drop(g)` releases of tracked guards inside `e`.
fn drops_of(e: &Expr, fact: &Fact, out: &mut Vec<String>) {
    e.walk_pruned(&mut |x| {
        if matches!(x, Expr::Closure { .. }) {
            return false;
        }
        if let Expr::Call { callee, args, .. } = x {
            if matches!(&**callee, Expr::Path { segs, .. }
                if segs.len() == 1 && segs[0] == "drop")
            {
                if let Some(Expr::Path { segs, .. }) = args.first() {
                    if segs.len() == 1 && fact.contains_key(&segs[0]) {
                        out.push(segs[0].clone());
                    }
                }
            }
        }
        true
    });
}

/// The guard a [`NodeKind::Bind`] acquires, looking through the pred
/// `Branch` scrutinee for `if let Ok(g) = m.lock()` pattern binds.
fn bind_guard(cfg: &Cfg, node: usize) -> bool {
    let NodeKind::Bind { vars, init, ctor } = &cfg.nodes[node].kind else { return false };
    if vars.len() != 1 {
        return false;
    }
    if let Some(e) = init {
        return acquires_guard(e);
    }
    if !matches!(ctor.as_deref(), Some(c) if OK_CTORS.contains(&c)) {
        return false;
    }
    cfg.preds(node).any(|p| {
        matches!(&cfg.nodes[p.from].kind, NodeKind::Branch { cond: Some(c) }
            if acquires_guard(c))
    })
}

struct Held;

impl Analysis for Held {
    type Fact = Fact;

    fn boundary(&self, _cfg: &Cfg) -> Fact {
        Fact::new()
    }

    fn transfer(&self, cfg: &Cfg, node: usize, edge: &Edge, fact: &Fact) -> Fact {
        let mut out = fact.clone();
        let n = &cfg.nodes[node];
        match &n.kind {
            NodeKind::Bind { vars, init, .. } => {
                if let Some(e) = init {
                    let mut dropped = Vec::new();
                    drops_of(e, &out, &mut dropped);
                    for d in dropped {
                        out.remove(&d);
                    }
                }
                for v in vars {
                    out.remove(v);
                }
                if edge.kind != EdgeKind::Err
                    && edge.kind != EdgeKind::Panic
                    && bind_guard(cfg, node)
                {
                    out.insert(vars[0].clone(), (n.span.line, n.span.col));
                }
            }
            NodeKind::Eval(e) | NodeKind::Ret(e) | NodeKind::Branch { cond: Some(e) } => {
                let mut dropped = Vec::new();
                drops_of(e, &out, &mut dropped);
                for d in dropped {
                    out.remove(&d);
                }
            }
            NodeKind::ScopeEnd(vars) => {
                for v in vars {
                    out.remove(v);
                }
            }
            _ => {}
        }
        out
    }

    fn join(&self, a: &Fact, b: &Fact) -> Fact {
        let mut out = a.clone();
        for (k, v) in b {
            out.entry(k.clone()).or_insert(*v);
        }
        out
    }
}

/// Run the pass over one function CFG.
pub fn run(cfg: &Cfg) -> Vec<Finding> {
    let facts = solve(&Held, cfg);
    let mut out = Vec::new();
    for (id, n) in cfg.nodes.iter().enumerate() {
        let Some(fact) = &facts[id] else { continue };
        let expr = match &n.kind {
            NodeKind::Bind { init: Some(e), .. }
            | NodeKind::Eval(e)
            | NodeKind::Ret(e)
            | NodeKind::Branch { cond: Some(e) } => e,
            _ => continue,
        };
        // A guard acquired *by this very node* is not yet held while its
        // initializer runs, and the lock() call itself is not blocking.
        if let Some((span, desc)) = blocking_op(expr) {
            for (g, (line, col)) in fact {
                out.push(Finding {
                    rule: RULE,
                    severity: Severity::Deny,
                    line: span.line,
                    col: span.col,
                    message: format!(
                        "guard `{g}` (acquired at {line}:{col}) is held across blocking \
                         `{desc}` in `{}`",
                        cfg.name
                    ),
                });
            }
        }
        if let Some((span, desc)) = blocked_temporary(expr) {
            out.push(Finding {
                rule: RULE,
                severity: Severity::Deny,
                line: span.line,
                col: span.col,
                message: format!(
                    "temporary lock guard is held across blocking `{desc}` in `{}`; bind \
                     the guard and drop it before blocking",
                    cfg.name
                ),
            });
        }
    }
    out.sort_by_key(|f| (f.line, f.col));
    out.dedup_by(|a, b| a.line == b.line && a.col == b.col && a.message == b.message);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build;
    use crate::lexer::scan;
    use crate::parser::parse_file;

    fn findings(src: &str) -> Vec<Finding> {
        let parsed = parse_file(&scan(src));
        assert!(parsed.unparsed.is_empty(), "{:?}", parsed.unparsed);
        run(&build(&parsed.functions[0]))
    }

    #[test]
    fn guard_across_recv_flagged() {
        let src = "fn f(m: &M, rx: &R) {\n    let g = m.lock().unwrap();\n    let job = rx.recv().unwrap();\n    g.push(job);\n}\n";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`g`"), "{}", f[0].message);
        assert!(f[0].message.contains("recv"), "{}", f[0].message);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn drop_before_blocking_is_clean() {
        let src = "fn f(m: &M, rx: &R) {\n    let g = m.lock().unwrap();\n    let n = g.len();\n    drop(g);\n    let job = rx.recv().unwrap();\n    use_it(n, job);\n}\n";
        let f = findings(src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn scope_end_releases_guard() {
        let src = "fn f(m: &M, rx: &R) {\n    {\n        let g = m.lock().unwrap();\n        g.touch();\n    }\n    let job = rx.recv().unwrap();\n    use_it(job);\n}\n";
        let f = findings(src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn guard_across_epoll_wait_flagged() {
        let src = "fn f(m: &M, ep: i32) {\n    let g = m.write().unwrap();\n    let n = sys::epoll_wait(ep, evs, -1);\n    g.note(n);\n}\n";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("sys::epoll_wait"), "{}", f[0].message);
    }

    #[test]
    fn guard_across_writev_flagged() {
        let src = "fn f(m: &M, fd: i32, iovs: &V) {\n    let g = m.lock().unwrap();\n    let n = sys::writev(fd, iovs);\n    g.note(n);\n}\n";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("sys::writev"), "{}", f[0].message);
    }

    #[test]
    fn if_let_guard_across_park_flagged() {
        let src = "fn f(m: &M) {\n    if let Ok(g) = m.lock() {\n        thread::park();\n        g.touch();\n    }\n}\n";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("thread::park"), "{}", f[0].message);
    }

    #[test]
    fn temporary_guard_recv_flagged() {
        let src = "fn f(s: &S) {\n    let job = s.q.lock().unwrap().recv().unwrap();\n    use_it(job);\n}\n";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("temporary"), "{}", f[0].message);
    }

    #[test]
    fn blocking_inside_closure_not_charged_to_parent() {
        let src = "fn f(m: &M) {\n    let g = m.lock().unwrap();\n    let h = spawn(move || rx.recv().unwrap());\n    g.track(h);\n}\n";
        let f = findings(src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn read_guard_across_join_flagged() {
        let src = "fn f(m: &M, h: H) {\n    let g = m.read().unwrap();\n    h.join().unwrap();\n    g.done();\n}\n";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains(".join()"), "{}", f[0].message);
    }
}
