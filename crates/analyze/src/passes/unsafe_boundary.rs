//! Unsafe-boundary audit: `unsafe` stays inside the audited allowlist,
//! and every occurrence carries a written justification.
//!
//! Three checks, all AST + comment driven (no dataflow needed):
//!
//! 1. **Containment** — any `unsafe` block or `unsafe fn` in a file
//!    outside [`ALLOWLIST`] is denied outright. The workspace's unsafe
//!    surface is the raw-syscall shim and nothing else; new unsafe code
//!    must move into the shim (and get reviewed there) rather than
//!    sprout in business logic.
//! 2. **Justification** — inside the allowlist, every `unsafe` block
//!    needs a `// SAFETY:` comment on its line or the contiguous
//!    comment/attribute lines above it; every `unsafe fn` needs a
//!    `# Safety` doc section (or a `SAFETY:` comment).
//! 3. **Pointer provenance** — raw pointers handed to syscalls must
//!    derive from a named place (`buf.as_mut_ptr()`,
//!    `ptr::from_ref(&event)`), never from a temporary whose lifetime
//!    ends before the call (`make_buf().as_ptr()`).

use crate::lexer::ScannedFile;
use crate::parser::{Expr, Function, ParsedFile};
use crate::passes::Finding;
use crate::Severity;

/// Rule id reported by this pass.
pub const RULE: &str = "unsafe-boundary";

/// Files allowed to contain `unsafe` (the audited syscall shim and the
/// lock-free deque, which reserves the right to need it).
pub const ALLOWLIST: [&str; 2] = ["crates/net/src/sys.rs", "crates/par/src/deque.rs"];

/// Raw-pointer-producing methods whose receiver must be a named place.
const PTR_METHODS: [&str; 2] = ["as_ptr", "as_mut_ptr"];

/// Raw-pointer-producing free functions whose argument must be a named
/// place (matched as `ptr::<name>` path suffix).
const PTR_FNS: [&str; 2] = ["from_ref", "from_mut"];

fn allowlisted(path: &str) -> bool {
    ALLOWLIST.contains(&path)
}

/// Is the line above `line` part of the same comment/attribute stanza?
fn annotation_line(scanned: &ScannedFile, line: usize) -> bool {
    let Some(l) = scanned.lines.get(line - 1) else { return false };
    let code = l.code.trim();
    code.is_empty() || code.starts_with("#[") || code.starts_with("#![")
}

/// Does `line` (or the contiguous comment/attribute stanza above it)
/// carry a comment containing `needle`?
fn justified(scanned: &ScannedFile, line: usize, needle: &str) -> bool {
    let has = |l: usize| {
        scanned
            .lines
            .get(l - 1)
            .is_some_and(|sl| sl.comments.iter().any(|c| c.contains(needle)))
    };
    if has(line) {
        return true;
    }
    let mut l = line;
    while l > 1 && annotation_line(scanned, l - 1) {
        l -= 1;
        if has(l) {
            return true;
        }
    }
    false
}

/// Walk the place expression a pointer derives from down to its base.
fn base_is_named_place(e: &Expr) -> bool {
    match e {
        Expr::Path { .. } => true,
        Expr::Field { recv, .. } | Expr::Index { recv, .. } => base_is_named_place(recv),
        Expr::Unary { inner, .. } | Expr::Cast { inner, .. } | Expr::Try { inner, .. } => {
            base_is_named_place(inner)
        }
        _ => false,
    }
}

fn check_pointers(f: &Function, out: &mut Vec<Finding>) {
    for stmt in &f.body.stmts {
        let check = &mut |e: &Expr| {
            match e {
                Expr::MethodCall { recv, method, span, .. }
                    if PTR_METHODS.contains(&method.as_str())
                        && !base_is_named_place(recv) =>
                {
                    out.push(Finding {
                        rule: RULE,
                        severity: Severity::Deny,
                        line: span.line,
                        col: span.col,
                        message: format!(
                            "raw pointer from `.{method}()` derives from a temporary \
                             in `{}`; bind the buffer to a local first",
                            f.name
                        ),
                    });
                }
                Expr::Call { callee, args, span } => {
                    if let Expr::Path { segs, .. } = &**callee {
                        let n = segs.len();
                        if n >= 2
                            && segs[n - 2] == "ptr"
                            && PTR_FNS.contains(&segs[n - 1].as_str())
                            && !args.iter().all(base_is_named_place)
                        {
                            out.push(Finding {
                                rule: RULE,
                                severity: Severity::Deny,
                                line: span.line,
                                col: span.col,
                                message: format!(
                                    "`{}` takes a reference to a temporary in `{}`; bind \
                                     the value to a local first",
                                    segs.join("::"),
                                    f.name
                                ),
                            });
                        }
                    }
                }
                _ => {}
            }
            true
        };
        crate::parser::walk_stmt(stmt, check);
    }
}

/// Run the pass over one parsed file.
pub fn run(path: &str, scanned: &ScannedFile, parsed: &ParsedFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let allowed = allowlisted(path);
    for f in &parsed.functions {
        if f.in_test {
            continue;
        }
        let mut sites: Vec<(usize, usize, bool)> = Vec::new();
        if f.is_unsafe {
            sites.push((f.span.line, f.span.col, true));
        }
        for stmt in &f.body.stmts {
            crate::parser::walk_stmt(stmt, &mut |e: &Expr| {
                if let Expr::Unsafe { span, .. } = e {
                    sites.push((span.line, span.col, false));
                }
                true
            });
        }
        for (line, col, is_fn) in sites {
            if !allowed {
                out.push(Finding {
                    rule: RULE,
                    severity: Severity::Deny,
                    line,
                    col,
                    message: format!(
                        "`unsafe` in `{}` is outside the audited boundary ({}); move the \
                         operation behind the syscall shim",
                        f.name,
                        ALLOWLIST.join(", ")
                    ),
                });
                continue;
            }
            let ok = if is_fn {
                justified(scanned, line, "# Safety") || justified(scanned, line, "SAFETY")
            } else {
                justified(scanned, line, "SAFETY")
            };
            if !ok {
                out.push(Finding {
                    rule: RULE,
                    severity: Severity::Deny,
                    line,
                    col,
                    message: if is_fn {
                        format!(
                            "`unsafe fn {}` lacks a `# Safety` doc section stating its \
                             contract",
                            f.name
                        )
                    } else {
                        format!(
                            "`unsafe` block in `{}` lacks a `// SAFETY:` comment \
                             justifying it",
                            f.name
                        )
                    },
                });
            }
        }
        if allowed {
            check_pointers(f, &mut out);
        }
    }
    out.sort_by_key(|f| (f.line, f.col));
    out.dedup_by(|a, b| a.line == b.line && a.col == b.col && a.message == b.message);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use crate::parser::parse_file;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        let scanned = scan(src);
        let parsed = parse_file(&scanned);
        assert!(parsed.unparsed.is_empty(), "{:?}", parsed.unparsed);
        run(path, &scanned, &parsed)
    }

    #[test]
    fn unsafe_outside_allowlist_denied() {
        let f = findings(
            "crates/serve/src/server.rs",
            "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("outside the audited boundary"), "{}", f[0].message);
        assert_eq!((f[0].line, f[0].col), (2, 5));
    }

    #[test]
    fn safety_comment_satisfies_block() {
        let src = "fn f(buf: &mut [u8]) -> i64 {\n    // SAFETY: buf is a live local slice; len matches.\n    unsafe { raw_read(buf.as_mut_ptr(), buf.len()) }\n}\n";
        let f = findings("crates/net/src/sys.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn missing_safety_comment_denied() {
        let src = "fn f(buf: &mut [u8]) -> i64 {\n    unsafe { raw_read(buf.as_mut_ptr(), buf.len()) }\n}\n";
        let f = findings("crates/net/src/sys.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("SAFETY"), "{}", f[0].message);
    }

    #[test]
    fn safety_comment_walks_up_through_attributes() {
        let src = "fn f() {\n    // SAFETY: no-op asm marker, no operands.\n    #[cfg(target_arch = \"x86_64\")]\n    unsafe {\n        nop();\n    }\n}\n";
        let f = findings("crates/net/src/sys.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unsafe_fn_needs_safety_doc() {
        let src = "unsafe fn poke(p: *mut u8) {\n    write(p);\n}\n";
        let f = findings("crates/net/src/sys.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("# Safety"), "{}", f[0].message);
    }

    #[test]
    fn unsafe_fn_with_safety_doc_is_clean() {
        let src = "/// Pokes a byte.\n///\n/// # Safety\n///\n/// `p` must be valid for writes.\nunsafe fn poke(p: *mut u8) {\n    write(p);\n}\n";
        let f = findings("crates/net/src/sys.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn pointer_from_temporary_denied() {
        let src = "fn f() -> i64 {\n    // SAFETY: pointer is sent to a checked syscall.\n    unsafe { raw_read(make_buf().as_mut_ptr(), 64) }\n}\n";
        let f = findings("crates/net/src/sys.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("temporary"), "{}", f[0].message);
    }

    #[test]
    fn pointer_from_field_place_is_clean() {
        let src = "fn f(s: &mut S) -> i64 {\n    // SAFETY: events buffer outlives the call.\n    unsafe { raw_wait(s.events.as_mut_ptr(), s.events.len()) }\n}\n";
        let f = findings("crates/net/src/sys.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn from_ref_of_local_is_clean() {
        let src = "fn f(event: E) -> i32 {\n    // SAFETY: event is a live stack value.\n    unsafe { ctl(ptr::from_ref(&event)) }\n}\n";
        let f = findings("crates/net/src/sys.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn test_region_unsafe_is_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(p: *const u8) -> u8 {\n        unsafe { *p }\n    }\n}\n";
        let f = findings("crates/serve/src/server.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }
}
