//! Resource-leak audit: every raw fd acquired from the syscall shim must
//! reach `sys::close` (or transfer ownership) on **every** CFG path —
//! including the `?`-error paths a reader never sees in the happy-path
//! diff.
//!
//! The analysis is a forward may-dataflow over [`crate::cfg`] graphs. A
//! fact maps each tracked binding to a bitset of states observed on some
//! path reaching the node: `OPEN`, `CLOSED`, `MOVED` (ownership left the
//! function via `return`, a constructor like `Conn::new`, a struct
//! literal, or a closure capture), `RAII` (the acquisition returns a
//! guard that closes itself on drop), and `POOLED` (the resource is a
//! buffer checked out of a [`tasq_net::BufPool`]-style pool rather than
//! an fd: acquired by a `.checkout()` call, released by naming it as the
//! argument of a `.restore(buf)` call, and moved by naming it as an
//! argument of any other method call — `conn.queue_buffer(buf)`,
//! `Conn::from_fd(fd, rbuf)` — receivers are exempt, so `buf.clear()`
//! keeps ownership). Joins union the bits, so an `OPEN`
//! bit surviving to a scope end means *some* path leaks even if others
//! close. Closing replaces the state outright, which keeps straight-line
//! paths precise.
//!
//! Findings are emitted in a post-pass over the solved facts:
//!
//! - `OPEN` at a [`NodeKind::ScopeEnd`] → leak on a normal exit path;
//! - `OPEN` flowing down an `Err` edge → leak on an error path ("the
//!   second `?` leaks the first fd");
//! - `CLOSED` at a close site → double close;
//! - `MOVED` at a close site → close after ownership transfer;
//! - rebinding a name whose fd is still `OPEN`;
//! - an acquisition evaluated for effect only (fd discarded on the spot);
//! - `mem::forget` of an open fd.
//!
//! Panic edges are deliberately ignored: an fd leak while unwinding is
//! the least of the process's problems, and flagging it would bury real
//! findings under `unwrap` noise.

use crate::cfg::{label, Cfg, Edge, EdgeKind, NodeKind};
use crate::dataflow::{solve, Analysis};
use crate::parser::{Expr, Span};
use crate::passes::Finding;
use crate::Severity;
use std::collections::BTreeMap;

/// Rule id reported by this pass.
pub const RULE: &str = "resource-leak";

const OPEN: u8 = 1;
const CLOSED: u8 = 2;
const MOVED: u8 = 4;
const RAII: u8 = 8;
const POOLED: u8 = 16;

/// Free functions in the raw-syscall shim that return an owned fd.
const FD_ACQUIRERS: [&str; 3] = ["epoll_create1", "accept4", "socket"];

/// Constructors returning guards that release on drop; tracked so a
/// manual close of one can be flagged, but never reported as a leak.
const RAII_ACQUIRERS: [(&str, &str); 1] = [("FrameLog", "open")];

/// Pattern constructors whose payload receives the scrutinee's success
/// value (`Ok(fd)` / `Some(fd)`); `Err(e)` arms must not inherit the fd.
const OK_CTORS: [&str; 2] = ["Ok", "Some"];

/// Per-variable state: observed bits plus the acquisition site.
#[derive(Debug, Clone, Copy, PartialEq)]
struct State {
    bits: u8,
    line: usize,
    col: usize,
}

type Fact = BTreeMap<String, State>;

fn leaky(s: &State) -> bool {
    s.bits & OPEN != 0 && s.bits & (MOVED | RAII) == 0
}

/// Strip the postfix wrappers an acquisition routinely wears:
/// `sys::accept4(l)?`, `sys::socket().unwrap()`, `… as i32`.
fn peel(e: &Expr) -> &Expr {
    match e {
        Expr::Try { inner, .. } | Expr::Cast { inner, .. } => peel(inner),
        Expr::MethodCall { recv, method, .. }
            if method == "unwrap" || method == "expect" || method == "unwrap_or_else" =>
        {
            peel(recv)
        }
        _ => e,
    }
}

/// Does this expression (after peeling) acquire a tracked resource?
/// Returns the extra flag bits (`RAII`/`POOLED`) to add.
fn acquisition(e: &Expr) -> Option<u8> {
    match peel(e) {
        Expr::Call { callee, .. } => {
            let Expr::Path { segs, .. } = &**callee else { return None };
            let n = segs.len();
            let last = segs.last()?;
            if FD_ACQUIRERS.contains(&last.as_str()) && (n == 1 || segs[n - 2] == "sys") {
                return Some(0);
            }
            if n >= 2 && RAII_ACQUIRERS.contains(&(segs[n - 2].as_str(), last.as_str())) {
                return Some(RAII);
            }
            None
        }
        // `pool.checkout()`: a buffer borrowed from the pool's free list
        // that owes a matching `.restore(buf)` (or a move into the
        // connection) on every path.
        Expr::MethodCall { method, args, .. } if method == "checkout" && args.is_empty() => {
            Some(POOLED)
        }
        _ => None,
    }
}

/// Callee-path suffix check for free-function calls.
fn path_ends(callee: &Expr, suffix: &[&str]) -> bool {
    let Expr::Path { segs, .. } = callee else { return false };
    segs.len() >= suffix.len()
        && segs[segs.len() - suffix.len()..]
            .iter()
            .zip(suffix)
            .all(|(a, b)| a == b)
}

/// `sys::close(fd)` / bare `close(fd)`.
fn close_target(callee: &Expr, args: &[Expr]) -> Option<String> {
    let is_close = match callee {
        Expr::Path { segs, .. } => {
            let n = segs.len();
            segs.last().map(String::as_str) == Some("close") && (n == 1 || segs[n - 2] == "sys")
        }
        _ => false,
    };
    if !is_close {
        return None;
    }
    arg_var(args.first()?)
}

/// The single-segment variable an argument names, through `&`/casts.
fn arg_var(e: &Expr) -> Option<String> {
    match e {
        Expr::Path { segs, .. } if segs.len() == 1 => Some(segs[0].clone()),
        Expr::Unary { inner, .. } | Expr::Cast { inner, .. } | Expr::Try { inner, .. } => {
            arg_var(inner)
        }
        _ => None,
    }
}

/// Ownership-taking constructors: `Conn::new(fd)` and friends.
fn is_transfer_ctor(callee: &Expr) -> bool {
    matches!(callee, Expr::Path { segs, .. }
        if segs.len() >= 2
            && matches!(segs.last().map(String::as_str), Some("new" | "from_fd" | "from_raw_fd")))
}

/// One observed close/move/forget effect inside a node's expression.
enum Effect {
    Close(String, Span),
    Move(String),
    Forget(String, Span),
}

/// Collect the resource effects of evaluating `e` against the variables
/// tracked in `fact`. Closures transfer ownership of anything they
/// mention (their bodies run later, on their own CFG).
fn effects_of(e: &Expr, fact: &Fact, out: &mut Vec<Effect>) {
    e.walk_pruned(&mut |x| {
        match x {
            Expr::Closure { body, .. } => {
                body.walk(&mut |c| {
                    if let Expr::Path { segs, .. } = c {
                        if segs.len() == 1 && fact.contains_key(&segs[0]) {
                            out.push(Effect::Move(segs[0].clone()));
                        }
                    }
                });
                return false;
            }
            Expr::Call { callee, args, .. } => {
                if let Some(var) = close_target(callee, args) {
                    if fact.contains_key(&var) {
                        out.push(Effect::Close(var, callee.span()));
                    }
                } else if path_ends(callee, &["mem", "forget"]) || path_ends(callee, &["forget"])
                {
                    for a in args {
                        if let Some(var) = arg_var(a) {
                            if fact.contains_key(&var) {
                                out.push(Effect::Forget(var, callee.span()));
                            }
                        }
                    }
                } else if is_transfer_ctor(callee) {
                    for a in args {
                        if let Some(var) = arg_var(a) {
                            if fact.contains_key(&var) {
                                out.push(Effect::Move(var));
                            }
                        }
                    }
                }
            }
            Expr::MethodCall { method, args, .. } => {
                if method == "restore" {
                    // `pool.restore(buf)` hands the buffer back: the
                    // pooled analogue of `sys::close(fd)`.
                    if let Some(var) = args.first().and_then(arg_var) {
                        if fact.get(&var).is_some_and(|s| s.bits & POOLED != 0) {
                            out.push(Effect::Close(var, x.span()));
                        }
                    }
                } else {
                    // Any other method naming a pooled buffer as an
                    // *argument* takes ownership (`conn.queue_buffer(buf)`);
                    // receivers are exempt (`buf.clear()` keeps it).
                    for a in args {
                        if let Some(var) = arg_var(a) {
                            if fact.get(&var).is_some_and(|s| s.bits & POOLED != 0) {
                                out.push(Effect::Move(var));
                            }
                        }
                    }
                }
            }
            Expr::StructLit { fields, .. } => {
                for f in fields {
                    f.walk(&mut |c| {
                        if let Expr::Path { segs, .. } = c {
                            if segs.len() == 1 && fact.contains_key(&segs[0]) {
                                out.push(Effect::Move(segs[0].clone()));
                            }
                        }
                    });
                }
            }
            _ => {}
        }
        true
    });
}

fn apply_effects(e: &Expr, fact: &mut Fact) {
    let mut fx = Vec::new();
    effects_of(e, &*fact, &mut fx);
    for f in fx {
        match f {
            Effect::Close(v, _) => {
                if let Some(s) = fact.get_mut(&v) {
                    s.bits = CLOSED | (s.bits & (RAII | POOLED));
                }
            }
            Effect::Move(v) | Effect::Forget(v, _) => {
                if let Some(s) = fact.get_mut(&v) {
                    s.bits |= MOVED;
                }
            }
        }
    }
}

/// The acquisition a [`NodeKind::Bind`] performs on its success edges,
/// looking through the pred `Branch` scrutinee for pattern binds
/// (`if let Ok(fd) = sys::accept4(l)` / match arms / `let … else`).
fn bind_acquisition(cfg: &Cfg, node: usize) -> Option<u8> {
    let NodeKind::Bind { vars, init, ctor } = &cfg.nodes[node].kind else { return None };
    if vars.len() != 1 {
        return None;
    }
    if let Some(e) = init {
        return acquisition(e);
    }
    if !matches!(ctor.as_deref(), Some(c) if OK_CTORS.contains(&c)) {
        return None;
    }
    cfg.preds(node).find_map(|p| {
        if let NodeKind::Branch { cond: Some(c) } = &cfg.nodes[p.from].kind {
            acquisition(c)
        } else {
            None
        }
    })
}

struct Leaks;

impl Analysis for Leaks {
    type Fact = Fact;

    fn boundary(&self, _cfg: &Cfg) -> Fact {
        // Parameters are borrowed fds — the caller owns them.
        Fact::new()
    }

    fn transfer(&self, cfg: &Cfg, node: usize, edge: &Edge, fact: &Fact) -> Fact {
        let mut out = fact.clone();
        let n = &cfg.nodes[node];
        match &n.kind {
            NodeKind::Bind { vars, init, .. } => {
                if let Some(e) = init {
                    apply_effects(e, &mut out);
                }
                for v in vars {
                    out.remove(v);
                }
                // The fd exists only on edges where the call succeeded.
                if edge.kind != EdgeKind::Err && edge.kind != EdgeKind::Panic {
                    if let Some(extra) = bind_acquisition(cfg, node) {
                        out.insert(
                            vars[0].clone(),
                            State { bits: OPEN | extra, line: n.span.line, col: n.span.col },
                        );
                    }
                }
            }
            NodeKind::Eval(e) | NodeKind::Branch { cond: Some(e) } => apply_effects(e, &mut out),
            NodeKind::Ret(e) => {
                apply_effects(e, &mut out);
                // The value escapes to the caller: everything it mentions
                // is the caller's to close now.
                e.walk(&mut |x| {
                    if let Expr::Path { segs, .. } = x {
                        if segs.len() == 1 {
                            if let Some(s) = out.get_mut(&segs[0]) {
                                s.bits |= MOVED;
                            }
                        }
                    }
                });
            }
            NodeKind::ScopeEnd(vars) => {
                for v in vars {
                    out.remove(v);
                }
            }
            _ => {}
        }
        out
    }

    fn join(&self, a: &Fact, b: &Fact) -> Fact {
        let mut out = a.clone();
        for (k, s) in b {
            out.entry(k.clone())
                .and_modify(|cur| {
                    cur.bits |= s.bits;
                    if (s.line, s.col) < (cur.line, cur.col) {
                        cur.line = s.line;
                        cur.col = s.col;
                    }
                })
                .or_insert(*s);
        }
        out
    }
}

fn node_expr(kind: &NodeKind) -> Option<&Expr> {
    match kind {
        NodeKind::Bind { init: Some(e), .. }
        | NodeKind::Eval(e)
        | NodeKind::Ret(e)
        | NodeKind::Branch { cond: Some(e) } => Some(e),
        _ => None,
    }
}

/// Run the pass over one function CFG.
pub fn run(cfg: &Cfg) -> Vec<Finding> {
    let facts = solve(&Leaks, cfg);
    let mut out = Vec::new();
    let mut push = |span: Span, message: String| {
        out.push(Finding {
            rule: RULE,
            severity: Severity::Deny,
            line: span.line,
            col: span.col,
            message,
        });
    };
    for (id, n) in cfg.nodes.iter().enumerate() {
        let Some(fact) = &facts[id] else { continue };
        match &n.kind {
            NodeKind::ScopeEnd(vars) => {
                for v in vars {
                    if let Some(s) = fact.get(v) {
                        if leaky(s) {
                            // Report at the acquisition so the finding
                            // (and any inline waiver) sits on the line
                            // that owns the resource.
                            let msg = if s.bits & POOLED != 0 {
                                format!(
                                    "pooled buffer `{v}` checked out here is not restored \
                                     (or moved into the connection) on every path through \
                                     `{}`",
                                    cfg.name
                                )
                            } else {
                                format!(
                                    "fd `{v}` acquired here is not closed on every path \
                                     through `{}`",
                                    cfg.name
                                )
                            };
                            push(Span { line: s.line, col: s.col }, msg);
                        }
                    }
                }
            }
            NodeKind::Bind { vars, .. } => {
                for v in vars {
                    if let Some(s) = fact.get(v) {
                        if leaky(s) {
                            let what = if s.bits & POOLED != 0 {
                                "still-checked-out pooled buffer"
                            } else {
                                "still-open fd"
                            };
                            push(
                                n.span,
                                format!(
                                    "rebinding `{v}` drops the {what} acquired at \
                                     {}:{} without releasing it",
                                    s.line, s.col
                                ),
                            );
                        }
                    }
                }
            }
            _ => {}
        }
        // Error-path leaks: anything still OPEN flowing down an Err edge
        // is leaked by the implicit early return.
        if cfg.succs(id).any(|e| e.kind == EdgeKind::Err) {
            let err_edge = Edge { from: id, to: cfg.exit, kind: EdgeKind::Err };
            let esc = Leaks.transfer(cfg, id, &err_edge, fact);
            for (v, s) in &esc {
                if leaky(s) {
                    let what = if s.bits & POOLED != 0 { "pooled buffer" } else { "fd" };
                    push(
                        n.span,
                        format!(
                            "{what} `{v}` (acquired at {}:{}) leaks if `{}` takes the `?` \
                             error path",
                            s.line,
                            s.col,
                            node_expr(&n.kind).map(label).unwrap_or_default()
                        ),
                    );
                }
            }
        }
        if let Some(e) = node_expr(&n.kind) {
            // Discarded acquisition: evaluated for effect, resource dropped.
            if matches!(n.kind, NodeKind::Eval(_)) {
                match acquisition(e) {
                    Some(0) => push(
                        e.span(),
                        format!("acquired fd from `{}` is discarded immediately", label(peel(e))),
                    ),
                    Some(b) if b & POOLED != 0 => push(
                        e.span(),
                        format!(
                            "checked-out buffer from `{}` is discarded immediately \
                             (never restored to the pool)",
                            label(peel(e))
                        ),
                    ),
                    _ => {}
                }
            }
            let mut fx = Vec::new();
            effects_of(e, fact, &mut fx);
            for f in fx {
                match f {
                    Effect::Close(v, span) => {
                        let s = &fact[&v];
                        let (site, verb, dup) = if s.bits & POOLED != 0 {
                            ("`.restore()`", "restored", "double restore")
                        } else {
                            ("`sys::close`", "closed", "double close")
                        };
                        if s.bits & CLOSED != 0 {
                            push(
                                span,
                                format!(
                                    "`{v}` may already be {verb} on a path reaching this \
                                     {site} ({dup})"
                                ),
                            );
                        } else if s.bits & MOVED != 0 {
                            push(
                                span,
                                format!(
                                    "`{v}` was moved (ownership transferred) before this \
                                     {site}"
                                ),
                            );
                        }
                    }
                    Effect::Forget(v, span) => {
                        let s = &fact[&v];
                        if s.bits & OPEN != 0 {
                            push(span, format!("`mem::forget` leaks the open fd `{v}`"));
                        }
                    }
                    Effect::Move(_) => {}
                }
            }
        }
    }
    out.sort_by_key(|f| (f.line, f.col));
    out.dedup_by(|a, b| a.line == b.line && a.col == b.col && a.message == b.message);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build;
    use crate::lexer::scan;
    use crate::parser::parse_file;

    fn findings(src: &str) -> Vec<Finding> {
        let parsed = parse_file(&scan(src));
        assert!(parsed.unparsed.is_empty(), "{:?}", parsed.unparsed);
        run(&build(&parsed.functions[0]))
    }

    #[test]
    fn balanced_open_close_is_clean() {
        let f = findings(
            "fn f() -> io::Result<()> {\n    let fd = sys::epoll_create1()?;\n    sys::close(fd);\n    Ok(())\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn second_try_leaks_first_fd() {
        let src = "fn f() -> io::Result<()> {\n    let ep = sys::epoll_create1()?;\n    let lst = sys::socket()?;\n    sys::close(lst);\n    sys::close(ep);\n    Ok(())\n}\n";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`ep`"), "{}", f[0].message);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn early_return_leaks() {
        let src = "fn f(c: bool) -> io::Result<()> {\n    let fd = sys::socket()?;\n    if c {\n        return Ok(());\n    }\n    sys::close(fd);\n    Ok(())\n}\n";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("not closed on every path"), "{}", f[0].message);
    }

    #[test]
    fn returning_the_fd_transfers_ownership() {
        let f = findings("fn f() -> io::Result<i32> {\n    let fd = sys::socket()?;\n    Ok(fd)\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn conn_new_transfers_ownership() {
        let f = findings(
            "fn f(reg: &mut R) -> io::Result<()> {\n    let fd = sys::accept4(9)?;\n    reg.add(Conn::new(fd));\n    Ok(())\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn double_close_detected() {
        let src = "fn f() -> io::Result<()> {\n    let fd = sys::socket()?;\n    sys::close(fd);\n    sys::close(fd);\n    Ok(())\n}\n";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("double close"), "{}", f[0].message);
        assert_eq!((f[0].line, f[0].col), (4, 5));
    }

    #[test]
    fn conditional_close_leaks_other_path() {
        let src = "fn f(c: bool) -> io::Result<()> {\n    let fd = sys::socket()?;\n    if c {\n        sys::close(fd);\n    }\n    Ok(())\n}\n";
        let f = findings(src);
        assert!(
            f.iter().any(|x| x.message.contains("not closed on every path")),
            "{f:?}"
        );
    }

    #[test]
    fn match_err_arm_does_not_inherit_fd() {
        let src = "fn f() {\n    match sys::socket() {\n        Ok(fd) => sys::close(fd),\n        Err(e) => log(e),\n    }\n}\n";
        let f = findings(src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn if_let_ok_must_close() {
        let src = "fn f() {\n    if let Ok(fd) = sys::socket() {\n        work(fd);\n    }\n}\n";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`fd`"));
    }

    #[test]
    fn discarded_acquisition_flagged() {
        let f = findings("fn f() -> io::Result<()> {\n    sys::socket()?;\n    Ok(())\n}\n");
        assert!(
            f.iter().any(|x| x.message.contains("discarded immediately")),
            "{f:?}"
        );
    }

    #[test]
    fn rebind_while_open_flagged() {
        let src = "fn f() -> io::Result<()> {\n    let fd = sys::socket()?;\n    let fd = sys::socket()?;\n    sys::close(fd);\n    Ok(())\n}\n";
        let f = findings(src);
        assert!(f.iter().any(|x| x.message.contains("rebinding `fd`")), "{f:?}");
    }

    #[test]
    fn raii_guard_is_not_a_leak() {
        let f = findings(
            "fn f() -> io::Result<()> {\n    let log = FrameLog::open(path)?;\n    let fd = sys::socket()?;\n    sys::close(fd);\n    log.append(b)?;\n    Ok(())\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn closure_capture_transfers_ownership() {
        let src = "fn f() -> io::Result<()> {\n    let fd = sys::socket()?;\n    spawn(move || sys::close(fd));\n    Ok(())\n}\n";
        let f = findings(src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn mem_forget_flagged() {
        let src = "fn f() -> io::Result<()> {\n    let fd = sys::socket()?;\n    mem::forget(fd);\n    Ok(())\n}\n";
        let f = findings(src);
        assert!(f.iter().any(|x| x.message.contains("mem::forget")), "{f:?}");
    }

    #[test]
    fn pooled_checkout_restore_balanced_is_clean() {
        let f = findings(
            "fn f(pool: &mut BufPool) {\n    let buf = pool.checkout();\n    pool.restore(buf);\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn pooled_early_return_without_restore_flagged() {
        // Planted leak: the early return skips the restore.
        let src = "fn f(pool: &mut BufPool, c: bool) -> io::Result<()> {\n    let buf = pool.checkout();\n    if c {\n        return Ok(());\n    }\n    pool.restore(buf);\n    Ok(())\n}\n";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("pooled buffer `buf`"), "{}", f[0].message);
        assert!(f[0].message.contains("not restored"), "{}", f[0].message);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn pooled_move_into_queue_buffer_is_clean() {
        let f = findings(
            "fn f(pool: &mut BufPool, conn: &mut Conn) {\n    let buf = pool.checkout();\n    conn.queue_buffer(buf);\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn pooled_move_into_from_fd_is_clean() {
        let f = findings(
            "fn f(pool: &mut BufPool, fd: i32) -> Conn {\n    let rbuf = pool.checkout();\n    Conn::from_fd(fd, rbuf)\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn pooled_receiver_method_is_not_a_move() {
        // `buf.clear()` keeps ownership; only naming the buffer as an
        // argument of another call moves it.
        let f = findings(
            "fn f(pool: &mut BufPool) {\n    let buf = pool.checkout();\n    buf.clear();\n    pool.restore(buf);\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn double_restore_flagged() {
        let src = "fn f(pool: &mut BufPool) {\n    let buf = pool.checkout();\n    pool.restore(buf);\n    pool.restore(buf);\n}\n";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("double restore"), "{}", f[0].message);
    }

    #[test]
    fn discarded_checkout_flagged() {
        let f = findings("fn f(pool: &mut BufPool) {\n    pool.checkout();\n}\n");
        assert!(
            f.iter().any(|x| x.message.contains("never restored to the pool")),
            "{f:?}"
        );
    }
}
