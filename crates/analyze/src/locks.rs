//! Static lock-acquisition-order extraction.
//!
//! Scans a crate's sources for `.lock()`, `.read()`, and `.write()` calls
//! (empty argument lists only — the `parking_lot`/`std` guard styles used
//! in this workspace), tracks which guards are live via `let` bindings,
//! explicit `drop(..)` calls, and scope ends, and builds a directed graph
//! of *acquired B while holding A* edges. A cycle in that graph is a
//! potential ABBA deadlock and fails `tasq-analyze check`.
//!
//! Lock identity is the receiver expression text (e.g. `self.inner`,
//! `shared.cache`) — a deliberately coarse approximation that trades
//! precision for zero type information. Same-named receivers in different
//! functions conflate; in practice this makes the audit *stricter*, never
//! blinder.

use crate::lexer::scan;
use std::collections::{BTreeMap, BTreeSet};

/// One observed "acquired `to` while holding `from`" edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// The lock already held.
    pub from: String,
    /// The lock acquired under it.
    pub to: String,
    /// Workspace-relative path of the acquisition site.
    pub path: String,
    /// 1-based line of the acquisition site.
    pub line: usize,
}

/// The extracted lock graph.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// All distinct nested-acquisition edges.
    pub edges: Vec<LockEdge>,
}

/// A live guard: which lock it holds and the brace depth of its scope.
struct Guard {
    name: Option<String>,
    lock: String,
    depth: i64,
}

impl LockGraph {
    /// Scan one file and accumulate its edges.
    pub fn add_file(&mut self, path: &str, source: &str) {
        let scanned = scan(source);
        let mut depth: i64 = 0;
        let mut held: Vec<Guard> = Vec::new();
        for (idx, line) in scanned.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let code = &line.code;
            // Scope ends release let-bound guards; a `}` that closes the
            // guard's enclosing block kills it.
            for c in code.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        held.retain(|g| g.depth <= depth);
                    }
                    _ => {}
                }
            }
            // Explicit drops.
            for dropped in drop_targets(code) {
                held.retain(|g| g.name.as_deref() != Some(dropped.as_str()));
            }
            // New acquisitions, in textual order. Earlier temporaries on
            // the same line are still live when later ones are taken, so
            // they contribute edges even without a `let` binding.
            let let_name = let_binding(code);
            let acquisitions = lock_calls(code);
            let n = acquisitions.len();
            let mut line_locks: Vec<String> = Vec::new();
            for (k, lock) in acquisitions.into_iter().enumerate() {
                for from in held.iter().map(|g| &g.lock).chain(line_locks.iter()) {
                    if *from != lock {
                        self.edges.push(LockEdge {
                            from: from.clone(),
                            to: lock.clone(),
                            path: path.to_string(),
                            line: idx + 1,
                        });
                    }
                }
                // Only a `let` binding keeps the guard beyond its
                // statement.
                if k + 1 == n {
                    if let Some(name) = &let_name {
                        held.push(Guard {
                            name: Some(name.clone()),
                            lock,
                            depth,
                        });
                        continue;
                    }
                }
                line_locks.push(lock);
            }
        }
    }

    /// Find a cycle in the edge graph, if any, as the list of lock names
    /// along the cycle.
    pub fn find_cycle(&self) -> Option<Vec<String>> {
        let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for e in &self.edges {
            adj.entry(&e.from).or_default().insert(&e.to);
        }
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        for &start in adj.keys() {
            if visited.contains(start) {
                continue;
            }
            let mut stack: Vec<(&str, Vec<&str>)> = vec![(start, vec![start])];
            while let Some((node, path)) = stack.pop() {
                visited.insert(node);
                let on_path: BTreeSet<&str> = path.iter().copied().collect();
                if let Some(nexts) = adj.get(node) {
                    for &next in nexts {
                        if on_path.contains(next) {
                            let mut cycle: Vec<String> =
                                path.iter().map(|s| s.to_string()).collect();
                            cycle.push(next.to_string());
                            return Some(cycle);
                        }
                        let mut p = path.clone();
                        p.push(next);
                        stack.push((next, p));
                    }
                }
            }
        }
        None
    }
}

/// Receiver expressions of `.lock()` / `.read()` / `.write()` calls with
/// empty argument lists, in textual order.
fn lock_calls(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    for method in [".lock()", ".read()", ".write()"] {
        let mut from = 0;
        while let Some(pos) = code[from..].find(method) {
            let at = from + pos;
            out.push((at, receiver_before(&code[..at])));
            from = at + method.len();
        }
    }
    out.sort();
    out.into_iter().map(|(_, r)| r).filter(|r| !r.is_empty()).collect()
}

/// The dotted receiver path immediately before a method call:
/// `self.state.jobs` out of `… self.state.jobs`.
fn receiver_before(before: &str) -> String {
    before
        .chars()
        .rev()
        .take_while(|&c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect::<String>()
        .trim_matches('.')
        .to_string()
}

/// `let name = …` binding on this line, if any.
fn let_binding(code: &str) -> Option<String> {
    let trimmed = code.trim_start();
    let rest = trimmed.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|&c| c.is_ascii_alphanumeric() || c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Arguments of `drop(x)` calls on this line.
fn drop_targets(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find("drop(") {
        let at = from + pos;
        let inner = &code[at + 5..];
        if let Some(close) = inner.find(')') {
            let target = inner[..close].trim();
            if !target.is_empty() {
                out.push(target.to_string());
            }
        }
        from = at + 5;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_acquisition_produces_an_edge() {
        let src = "fn f(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n}\n";
        let mut g = LockGraph::default();
        g.add_file("crates/x/src/a.rs", src);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].from, "self.alpha");
        assert_eq!(g.edges[0].to, "self.beta");
        assert!(g.find_cycle().is_none());
    }

    #[test]
    fn scope_end_releases_guards() {
        let src = "fn f(&self) {\n    {\n        let a = self.alpha.lock();\n    }\n    let b = self.beta.lock();\n}\n";
        let mut g = LockGraph::default();
        g.add_file("crates/x/src/a.rs", src);
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn explicit_drop_releases_guards() {
        let src = "fn f(&self) {\n    let a = self.alpha.lock();\n    drop(a);\n    let b = self.beta.lock();\n}\n";
        let mut g = LockGraph::default();
        g.add_file("crates/x/src/a.rs", src);
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn abba_order_is_a_cycle() {
        let src = "fn f(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n}\nfn g(&self) {\n    let b = self.beta.lock();\n    let a = self.alpha.lock();\n}\n";
        let mut g = LockGraph::default();
        g.add_file("crates/x/src/a.rs", src);
        let cycle = g.find_cycle().expect("ABBA must be reported");
        assert!(cycle.len() >= 3, "{cycle:?}");
    }

    #[test]
    fn expression_temporaries_do_not_outlive_their_statement() {
        let src = "fn f(&self) {\n    self.alpha.lock().push(1);\n    let b = self.beta.lock();\n}\n";
        let mut g = LockGraph::default();
        g.add_file("crates/x/src/a.rs", src);
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn two_locks_in_one_statement_are_ordered() {
        let src = "fn f(&self) {\n    use_both(self.alpha.lock(), self.beta.lock());\n}\n";
        let mut g = LockGraph::default();
        g.add_file("crates/x/src/a.rs", src);
        assert_eq!(g.edges.len(), 1, "{:?}", g.edges);
        assert_eq!(g.edges[0].from, "self.alpha");
        assert_eq!(g.edges[0].to, "self.beta");
    }
}
