//! Dynamic invariant checking: run the actual system under seeded
//! configurations and audit what it did.
//!
//! Four families of checks, all deterministic:
//!
//! * **Plan validity** — every job the workload generator emits must pass
//!   [`scope_sim::validate_job`] (acyclic DAG, operator arity,
//!   partitioning compatibility, stage-work conservation).
//! * **Scaling-curve / PCC sanity** — executing a job across a token grid
//!   must yield a (tolerance-)monotone non-increasing runtime curve, and
//!   the power-law PCC fitted to it must pass
//!   [`tasq::validate::validate_pcc`]: positive scale, non-increasing, and
//!   no more than [`tasq::validate::AMDAHL_TOLERANCE`] beyond Amdahl's
//!   linear ceiling.
//! * **Executor determinism** — two traced runs with identical seeds must
//!   produce bit-identical [`scope_sim::ExecTrace`]s, and the lowered
//!   synchronization log must replay race-free under the vector-clock
//!   checker.
//! * **Server race-freedom** — a traced [`tasq_serve::ScoringServer`] run
//!   (real threads, real channels) must produce a synchronization log the
//!   happens-before checker proves race-free, twice, with the same event
//!   count both times.

use crate::hb;
use crate::{CheckReport, Diagnostic, Severity};
use scope_sim::{
    validate_job, EventTrace, ExecTrace, ExecutionConfig, Job, WorkloadConfig, WorkloadGenerator,
};
use tasq::validate::{validate_curve, validate_pcc, CURVE_TOLERANCE};
use tasq::PowerLawPcc;

/// Seed for the audited workload; fixed so `check` is reproducible.
const WORKLOAD_SEED: u64 = 41;
/// Jobs generated for plan validation.
const WORKLOAD_JOBS: usize = 32;
/// Jobs whose scaling curves are executed and audited.
const CURVE_JOBS: usize = 4;
/// Token grid for curve measurement (powers of two).
const CURVE_GRID: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];

fn dynamic_diag(pass: &str, message: String) -> Diagnostic {
    Diagnostic {
        rule: pass.to_string(),
        severity: Severity::Deny,
        path: format!("dynamic/{pass}"),
        line: 0,
        col: 0,
        message,
    }
}

/// Run all dynamic passes, appending findings and counters to `report`.
pub fn run_dynamic_pass(report: &mut CheckReport) {
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: WORKLOAD_JOBS,
        seed: WORKLOAD_SEED,
        ..Default::default()
    })
    .generate();

    check_plans(&jobs, report);
    check_curves(&jobs, report);
    check_executor_determinism(&jobs, report);
    check_server_races(report);
}

/// Every generated job must validate.
fn check_plans(jobs: &[Job], report: &mut CheckReport) {
    for job in jobs {
        if let Err(err) = validate_job(job) {
            report
                .diagnostics
                .push(dynamic_diag("plan-invariants", format!("job {}: {err}", job.id)));
        }
        report.jobs_validated += 1;
    }
}

/// Measured scaling curves and their fitted PCCs must validate.
fn check_curves(jobs: &[Job], report: &mut CheckReport) {
    for job in jobs.iter().take(CURVE_JOBS) {
        let executor = job.executor();
        let config = ExecutionConfig::default();
        let mut curve: Vec<(u32, f64)> = Vec::new();
        for &tokens in &CURVE_GRID {
            match executor.run(tokens, &config) {
                Ok(result) => curve.push((tokens, result.runtime_secs)),
                Err(err) => {
                    report.diagnostics.push(dynamic_diag(
                        "curve-invariants",
                        format!("job {} failed to execute at {tokens} tokens: {err}", job.id),
                    ));
                }
            }
        }
        if let Err(violations) = validate_curve(&curve, CURVE_TOLERANCE) {
            for v in violations {
                report.diagnostics.push(dynamic_diag(
                    "curve-invariants",
                    format!("job {} measured curve: {v}", job.id),
                ));
            }
        }
        let points: Vec<(f64, f64)> =
            curve.iter().map(|&(t, r)| (f64::from(t), r)).collect();
        match PowerLawPcc::fit(&points) {
            Some(pcc) => {
                if let Err(violations) = validate_pcc(&pcc) {
                    for v in violations {
                        report.diagnostics.push(dynamic_diag(
                            "pcc-invariants",
                            format!("job {} fitted PCC: {v}", job.id),
                        ));
                    }
                }
            }
            None => report.diagnostics.push(dynamic_diag(
                "pcc-invariants",
                format!("job {}: power-law fit failed on {} points", job.id, points.len()),
            )),
        }
        report.curves_audited += 1;
    }
}

/// Same-seed traced runs must be bit-identical and race-free.
fn check_executor_determinism(jobs: &[Job], report: &mut CheckReport) {
    for job in jobs.iter().take(2) {
        let executor = job.executor();
        let config = ExecutionConfig::default();
        let mut first = ExecTrace::new();
        let mut second = ExecTrace::new();
        let run_a = executor.run_traced(16, &config, &mut first);
        let run_b = executor.run_traced(16, &config, &mut second);
        if run_a.is_err() || run_b.is_err() {
            report.diagnostics.push(dynamic_diag(
                "determinism",
                format!("job {}: traced execution failed", job.id),
            ));
            continue;
        }
        if first != second {
            report.diagnostics.push(dynamic_diag(
                "determinism",
                format!(
                    "job {}: same-seed runs diverged ({} vs {} events)",
                    job.id,
                    first.len(),
                    second.len()
                ),
            ));
        }
        let log = first.sync_log();
        report.hb_events += log.len();
        match hb::check_log(&log) {
            Ok(races) => {
                for race in races.iter().take(3) {
                    report.diagnostics.push(dynamic_diag(
                        "happens-before",
                        format!(
                            "job {}: unsynchronized access to resource {:#x}: {:?} then {:?}",
                            job.id, race.resource, race.first, race.second
                        ),
                    ));
                }
            }
            Err(err) => report
                .diagnostics
                .push(dynamic_diag("happens-before", format!("job {}: {err}", job.id))),
        }
    }
}

/// A real traced server run must be race-free, twice over.
fn check_server_races(report: &mut CheckReport) {
    let mut event_counts = Vec::new();
    for _run in 0..2 {
        match traced_server_log(12, 43) {
            Ok(log) => {
                event_counts.push(log.len());
                report.hb_events += log.len();
                match hb::check_log(&log) {
                    Ok(races) => {
                        for race in races.iter().take(3) {
                            report.diagnostics.push(dynamic_diag(
                                "happens-before",
                                format!(
                                    "server: unsynchronized access to resource {:#x}: \
                                     {:?} then {:?}",
                                    race.resource, race.first, race.second
                                ),
                            ));
                        }
                    }
                    Err(err) => report
                        .diagnostics
                        .push(dynamic_diag("happens-before", format!("server: {err}"))),
                }
            }
            Err(message) => {
                report.diagnostics.push(dynamic_diag("happens-before", message));
            }
        }
    }
    if event_counts.len() == 2 && event_counts[0] != event_counts[1] {
        report.diagnostics.push(dynamic_diag(
            "determinism",
            format!(
                "server: same-seed runs recorded different event counts \
                 ({} vs {})",
                event_counts[0], event_counts[1]
            ),
        ));
    }
}

/// Start a traced scoring server over an analytic registry, pump
/// `requests` jobs through it, and return the synchronization log.
fn traced_server_log(requests: usize, seed: u64) -> Result<scope_sim::EventLog, String> {
    use tasq::models::{NnTrainConfig, XgbTrainConfig};
    use tasq::pipeline::{
        JobRepository, ModelChoice, ModelStore, PipelineConfig, ScoringConfig, TasqPipeline,
    };
    use tasq_serve::{CacheConfig, ModelRegistry, ScoringServer, ServeConfig, Ticket};

    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: requests,
        seed,
        ..Default::default()
    })
    .generate();
    let repo = JobRepository::new();
    repo.ingest(jobs.clone());
    let store = ModelStore::new();
    TasqPipeline::new(PipelineConfig {
        xgb: XgbTrainConfig { num_rounds: 10, ..Default::default() },
        nn: NnTrainConfig { epochs: 4, ..Default::default() },
        ..Default::default()
    })
    .train(&repo, &store)
    .map_err(|e| format!("server audit: pipeline training failed: {e}"))?;
    let registry = ModelRegistry::deploy(&store, ModelChoice::Nn, ScoringConfig::default())
        .map_err(|e| format!("server audit: registry deploy failed: {e}"))?;

    let trace = EventTrace::new();
    let server = ScoringServer::start(
        std::sync::Arc::new(registry),
        ServeConfig {
            workers: 2,
            cache: CacheConfig { enabled: false, ..Default::default() },
            trace: Some(trace.clone()),
            ..Default::default()
        },
    );
    let tickets: Vec<Ticket> = jobs
        .into_iter()
        .filter_map(|job| server.submit(job).ok())
        .collect();
    for ticket in tickets {
        let _ = ticket.wait();
    }
    server.shutdown();
    Ok(trace.snapshot())
}
