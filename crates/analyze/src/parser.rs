//! A recursive-descent parser for the Rust subset this workspace writes.
//!
//! The parser consumes the [`crate::lexer`] scan (comments stripped,
//! literal bodies blanked, columns preserved) and produces one AST per
//! function — items, blocks, `let`/`let…else`, `if`/`if let`, `match`,
//! the three loops (with labels), `?`, early `return`, closures, method
//! chains, struct literals, casts and macro invocations. It is *not* a
//! full Rust parser: types are skipped structurally, operator precedence
//! is flattened (the dataflow passes never need it), and a function whose
//! body defeats the grammar is recorded as unparsed rather than aborting
//! the file. CI gates the unparsed count at zero for the crates the
//! dataflow passes guard (`crates/net`, `crates/par`).
//!
//! Every AST node carries a 1-based `line:col` [`Span`] pointing at the
//! original source, which is what the passes report.

use crate::lexer::ScannedFile;
use std::fmt;

/// A 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based source line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One parsed function (free, method, nested, or closure-hosted).
#[derive(Debug, Clone)]
pub struct Function {
    /// Bare name (`shard_loop`, or `Type::name` when inside an `impl`).
    pub name: String,
    /// Declared `unsafe fn`.
    pub is_unsafe: bool,
    /// Span of the `fn` keyword.
    pub span: Span,
    /// Parameter binding names (patterns flattened; `self` included).
    pub params: Vec<String>,
    /// Whether the `fn` keyword sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// The body.
    pub body: Block,
}

/// A `{ … }` block.
#[derive(Debug, Clone)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Span of the opening brace.
    pub span: Span,
}

/// One statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `let <pat>[: ty] = init [else { … }];`
    Let {
        /// Names bound by the pattern.
        vars: Vec<String>,
        /// The pattern's leading payload constructor (`Ok`, `Some`, …),
        /// when it has one.
        ctor: Option<String>,
        /// Initializer (absent for `let x;`).
        init: Option<Expr>,
        /// `let … else` diverging block.
        else_block: Option<Block>,
        /// Span of the `let`.
        span: Span,
    },
    /// An expression statement; `semi` records whether it was terminated
    /// (tail expressions of a block have `semi == false`).
    Expr {
        /// The expression.
        expr: Expr,
        /// Trailing semicolon present.
        semi: bool,
    },
}

/// One `match` arm.
#[derive(Debug, Clone)]
pub struct Arm {
    /// Names bound by the pattern.
    pub vars: Vec<String>,
    /// The pattern's leading payload constructor (`Ok`, `Some`, …).
    pub ctor: Option<String>,
    /// Arm guard (`if …`), when present.
    pub guard: Option<Expr>,
    /// Arm body.
    pub body: Expr,
    /// Span of the pattern start.
    pub span: Span,
}

/// An expression, flattened to what the dataflow passes consume.
#[derive(Debug, Clone)]
pub enum Expr {
    /// `a::b::c`, a bare identifier, `self.x` is a [`Expr::Field`].
    Path {
        /// Segments.
        segs: Vec<String>,
        /// Span of the first segment.
        span: Span,
    },
    /// Number / string / char literal.
    Lit {
        /// Literal span.
        span: Span,
    },
    /// `callee(args…)`.
    Call {
        /// Callee (usually a path).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
        /// Span of the call.
        span: Span,
    },
    /// `recv.name(args…)`.
    MethodCall {
        /// Receiver.
        recv: Box<Expr>,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Span of the method name.
        span: Span,
    },
    /// `recv.name` / `recv.0`.
    Field {
        /// Receiver.
        recv: Box<Expr>,
        /// Field name (tuple indices rendered as digits).
        name: String,
        /// Span of the field name.
        span: Span,
    },
    /// `recv[index]`.
    Index {
        /// Receiver.
        recv: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// Span.
        span: Span,
    },
    /// `&x` / `&mut x` / unary `*`, `-`, `!`.
    Unary {
        /// Operand.
        inner: Box<Expr>,
        /// Span of the operator.
        span: Span,
    },
    /// `lhs <op> rhs` — precedence flattened left to right.
    Binary {
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand (absent for open ranges like `x..`).
        rhs: Option<Box<Expr>>,
        /// Operator text.
        op: String,
        /// Span of the operator.
        span: Span,
    },
    /// `lhs = rhs` and compound assignments.
    Assign {
        /// Assignment target.
        lhs: Box<Expr>,
        /// Value.
        rhs: Box<Expr>,
        /// Span of the operator.
        span: Span,
    },
    /// `expr as Type` (the type is discarded).
    Cast {
        /// Operand.
        inner: Box<Expr>,
        /// Span of `as`.
        span: Span,
    },
    /// `expr?`.
    Try {
        /// Operand.
        inner: Box<Expr>,
        /// Span of the `?`.
        span: Span,
    },
    /// A plain block expression.
    BlockExpr(Block),
    /// `unsafe { … }`.
    Unsafe {
        /// Body.
        block: Block,
        /// Span of the `unsafe` keyword.
        span: Span,
    },
    /// `if cond { … } [else …]` (covers `if let`: bindings in `let_vars`).
    If {
        /// Condition (scrutinee for `if let`).
        cond: Box<Expr>,
        /// Bindings introduced by `if let`.
        let_vars: Vec<String>,
        /// `if let` pattern constructor.
        let_ctor: Option<String>,
        /// Then-block.
        then: Block,
        /// Else branch (`Block` or chained `If`).
        els: Option<Box<Expr>>,
        /// Span of the `if`.
        span: Span,
    },
    /// `match scrut { arms… }`.
    Match {
        /// Scrutinee.
        scrut: Box<Expr>,
        /// Arms.
        arms: Vec<Arm>,
        /// Span of the `match`.
        span: Span,
    },
    /// `['label:] loop { … }`.
    Loop {
        /// Optional label (without the quote).
        label: Option<String>,
        /// Body.
        body: Block,
        /// Span.
        span: Span,
    },
    /// `['label:] while [let pat =] cond { … }`.
    While {
        /// Optional label.
        label: Option<String>,
        /// Condition / scrutinee.
        cond: Box<Expr>,
        /// Bindings from `while let`.
        let_vars: Vec<String>,
        /// `while let` pattern constructor.
        let_ctor: Option<String>,
        /// Body.
        body: Block,
        /// Span.
        span: Span,
    },
    /// `['label:] for pat in iter { … }`.
    For {
        /// Optional label.
        label: Option<String>,
        /// Loop-variable bindings.
        vars: Vec<String>,
        /// Iterated expression.
        iter: Box<Expr>,
        /// Body.
        body: Block,
        /// Span.
        span: Span,
    },
    /// `return [expr]`.
    Return {
        /// Returned value.
        value: Option<Box<Expr>>,
        /// Span.
        span: Span,
    },
    /// `break ['label] [expr]`.
    Break {
        /// Targeted label.
        label: Option<String>,
        /// Break value.
        value: Option<Box<Expr>>,
        /// Span.
        span: Span,
    },
    /// `continue ['label]`.
    Continue {
        /// Targeted label.
        label: Option<String>,
        /// Span.
        span: Span,
    },
    /// `[move] |params| body`.
    Closure {
        /// Parameter bindings.
        params: Vec<String>,
        /// Body expression.
        body: Box<Expr>,
        /// `move` closure.
        moved: bool,
        /// Span of the opening pipe.
        span: Span,
    },
    /// `name!(…)` — arguments parsed as expressions when they are ones
    /// (`format!`-alikes); opaque otherwise (`asm!`, `matches!`).
    MacroCall {
        /// Macro path (`core::arch::asm` → `asm`).
        name: String,
        /// Parsed arguments (empty when the body was opaque).
        args: Vec<Expr>,
        /// Span of the macro name.
        span: Span,
    },
    /// `Path { field: expr, .. }`.
    StructLit {
        /// Struct path segments.
        path: Vec<String>,
        /// Field initializers (shorthand fields get a path expr).
        fields: Vec<Expr>,
        /// Span.
        span: Span,
    },
    /// `(a, b, …)` (including 1-tuples and parenthesized exprs).
    Tuple {
        /// Elements.
        items: Vec<Expr>,
        /// Span.
        span: Span,
    },
    /// `[a, b]` / `[x; n]`.
    Array {
        /// Elements.
        items: Vec<Expr>,
        /// Span.
        span: Span,
    },
}

impl Expr {
    /// This expression's span.
    pub fn span(&self) -> Span {
        match self {
            Expr::Path { span, .. }
            | Expr::Lit { span }
            | Expr::Call { span, .. }
            | Expr::MethodCall { span, .. }
            | Expr::Field { span, .. }
            | Expr::Index { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Assign { span, .. }
            | Expr::Cast { span, .. }
            | Expr::Try { span, .. }
            | Expr::Unsafe { span, .. }
            | Expr::If { span, .. }
            | Expr::Match { span, .. }
            | Expr::Loop { span, .. }
            | Expr::While { span, .. }
            | Expr::For { span, .. }
            | Expr::Return { span, .. }
            | Expr::Break { span, .. }
            | Expr::Continue { span, .. }
            | Expr::Closure { span, .. }
            | Expr::MacroCall { span, .. }
            | Expr::StructLit { span, .. }
            | Expr::Tuple { span, .. }
            | Expr::Array { span, .. } => *span,
            Expr::BlockExpr(b) => b.span,
        }
    }

    /// Visit this expression and every sub-expression, pre-order.
    pub fn walk(&self, f: &mut dyn FnMut(&Expr)) {
        self.walk_pruned(&mut |e| {
            f(e);
            true
        });
    }

    /// Pre-order visit where the callback decides descent: returning
    /// `false` skips the node's children (used to stop at closure
    /// boundaries when scanning for `?`/panic effects).
    pub fn walk_pruned(&self, f: &mut dyn FnMut(&Expr) -> bool) {
        if !f(self) {
            return;
        }
        let walk_block = |b: &Block, f: &mut dyn FnMut(&Expr) -> bool| {
            for s in &b.stmts {
                match s {
                    Stmt::Let { init, else_block, .. } => {
                        if let Some(e) = init {
                            e.walk_pruned(f);
                        }
                        if let Some(b) = else_block {
                            for s in &b.stmts {
                                if let Stmt::Expr { expr, .. } = s {
                                    expr.walk_pruned(f);
                                }
                            }
                        }
                    }
                    Stmt::Expr { expr, .. } => expr.walk_pruned(f),
                }
            }
        };
        match self {
            Expr::Path { .. } | Expr::Lit { .. } | Expr::Continue { .. } => {}
            Expr::Call { callee, args, .. } => {
                callee.walk_pruned(f);
                for a in args {
                    a.walk_pruned(f);
                }
            }
            Expr::MethodCall { recv, args, .. } => {
                recv.walk_pruned(f);
                for a in args {
                    a.walk_pruned(f);
                }
            }
            Expr::Field { recv, .. } => recv.walk_pruned(f),
            Expr::Index { recv, index, .. } => {
                recv.walk_pruned(f);
                index.walk_pruned(f);
            }
            Expr::Unary { inner, .. } | Expr::Cast { inner, .. } | Expr::Try { inner, .. } => {
                inner.walk_pruned(f)
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk_pruned(f);
                if let Some(r) = rhs {
                    r.walk_pruned(f);
                }
            }
            Expr::Assign { lhs, rhs, .. } => {
                lhs.walk_pruned(f);
                rhs.walk_pruned(f);
            }
            Expr::BlockExpr(b) => walk_block(b, f),
            Expr::Unsafe { block, .. } => walk_block(block, f),
            Expr::If { cond, then, els, .. } => {
                cond.walk_pruned(f);
                walk_block(then, f);
                if let Some(e) = els {
                    e.walk_pruned(f);
                }
            }
            Expr::Match { scrut, arms, .. } => {
                scrut.walk_pruned(f);
                for arm in arms {
                    if let Some(g) = &arm.guard {
                        g.walk_pruned(f);
                    }
                    arm.body.walk_pruned(f);
                }
            }
            Expr::Loop { body, .. } => walk_block(body, f),
            Expr::While { cond, body, .. } => {
                cond.walk_pruned(f);
                walk_block(body, f);
            }
            Expr::For { iter, body, .. } => {
                iter.walk_pruned(f);
                walk_block(body, f);
            }
            Expr::Return { value, .. } | Expr::Break { value, .. } => {
                if let Some(v) = value {
                    v.walk_pruned(f);
                }
            }
            Expr::Closure { body, .. } => body.walk_pruned(f),
            Expr::MacroCall { args, .. } => {
                for a in args {
                    a.walk_pruned(f);
                }
            }
            Expr::StructLit { fields, .. } => {
                for e in fields {
                    e.walk_pruned(f);
                }
            }
            Expr::Tuple { items, .. } | Expr::Array { items, .. } => {
                for e in items {
                    e.walk_pruned(f);
                }
            }
        }
    }
}

/// Visit every expression under a statement (`let` initializers,
/// `let … else` blocks, expression statements), pre-order with pruning.
pub fn walk_stmt(s: &Stmt, f: &mut dyn FnMut(&Expr) -> bool) {
    match s {
        Stmt::Let { init, else_block, .. } => {
            if let Some(e) = init {
                e.walk_pruned(f);
            }
            if let Some(b) = else_block {
                for s in &b.stmts {
                    walk_stmt(s, f);
                }
            }
        }
        Stmt::Expr { expr, .. } => expr.walk_pruned(f),
    }
}

/// A function whose body the grammar could not handle.
#[derive(Debug, Clone)]
pub struct Unparsed {
    /// Function name.
    pub name: String,
    /// Span of the `fn`.
    pub span: Span,
    /// Whether it sits in a `#[cfg(test)]` region.
    pub in_test: bool,
    /// What went wrong, with the offending position.
    pub error: String,
}

/// The parse result for one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Successfully parsed functions, in source order.
    pub functions: Vec<Function>,
    /// Functions the grammar could not handle.
    pub unparsed: Vec<Unparsed>,
}

// ---------------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Lifetime(String),
    Num,
    Str,
    Char,
    Op(String),
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: usize,
    col: usize,
}

impl Token {
    fn span(&self) -> Span {
        Span { line: self.line, col: self.col }
    }

    fn is_op(&self, s: &str) -> bool {
        matches!(&self.tok, Tok::Op(o) if o == s)
    }

    fn is_ident(&self, s: &str) -> bool {
        matches!(&self.tok, Tok::Ident(i) if i == s)
    }
}

/// Multi-character operators, longest first.
const MULTI_OPS: [&str; 22] = [
    "..=", "...", "<<=", "::", "->", "=>", "..", "&&", "||", "==", "!=", "<=", ">=", "+=", "-=",
    "*=", "/=", "%=", "^=", "|=", "&=", "<<",
];

fn tokenize(file: &ScannedFile) -> Vec<Token> {
    let mut out = Vec::new();
    let mut in_str = false;
    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            // A string literal left open on a previous line (the lexer
            // blanks interiors, so only whitespace precedes the close).
            if in_str {
                if c == '"' {
                    in_str = false;
                }
                i += 1;
                continue;
            }
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            let col = i + 1;
            if c == '"' {
                // Interior is blanked; find the close on this line or
                // carry the open state across lines.
                let mut j = i + 1;
                while j < chars.len() && chars[j] != '"' {
                    j += 1;
                }
                out.push(Token { tok: Tok::Str, line: lineno, col });
                if j < chars.len() {
                    i = j + 1;
                } else {
                    in_str = true;
                    i = chars.len();
                }
                continue;
            }
            if c == '\'' {
                // `''` is a blanked char literal; `'ident` is a lifetime
                // or label.
                if chars.get(i + 1) == Some(&'\'') {
                    out.push(Token { tok: Tok::Char, line: lineno, col });
                    i += 2;
                    continue;
                }
                let mut j = i + 1;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let name: String = chars[i + 1..j].iter().collect();
                out.push(Token { tok: Tok::Lifetime(name), line: lineno, col });
                i = j;
                continue;
            }
            if c.is_ascii_digit() {
                let mut j = i + 1;
                while j < chars.len() {
                    let d = chars[j];
                    let fractional_dot = d == '.'
                        && chars.get(j + 1).is_some_and(|n| n.is_ascii_digit())
                        && !chars[i..j].contains(&'.');
                    let exponent_sign = (d == '+' || d == '-')
                        && matches!(chars.get(j - 1), Some('e') | Some('E'))
                        && chars[i..j].iter().any(|&x| x == 'e' || x == 'E');
                    if d.is_ascii_alphanumeric() || d == '_' || fractional_dot || exponent_sign
                    {
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token { tok: Tok::Num, line: lineno, col });
                i = j;
                continue;
            }
            if c.is_alphabetic() || c == '_' {
                let mut j = i + 1;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let word: String = chars[i..j].iter().collect();
                // Byte/raw literal prefixes (`b"…"`, `b'n'`, `r"…"`,
                // `br"…"`): drop the prefix so the literal that follows
                // lexes as a plain string/char token.
                if matches!(word.as_str(), "b" | "r" | "br" | "rb")
                    && matches!(chars.get(j), Some('"') | Some('\''))
                {
                    i = j;
                    continue;
                }
                out.push(Token { tok: Tok::Ident(word), line: lineno, col });
                i = j;
                continue;
            }
            // Punctuation: longest multi-char match first.
            let rest: String = chars[i..chars.len().min(i + 3)].iter().collect();
            let mut matched = None;
            for op in MULTI_OPS {
                if rest.starts_with(op) {
                    matched = Some(op);
                    break;
                }
            }
            if let Some(op) = matched {
                out.push(Token { tok: Tok::Op(op.to_string()), line: lineno, col });
                i += op.len();
            } else {
                out.push(Token { tok: Tok::Op(c.to_string()), line: lineno, col });
                i += 1;
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct ParseError {
    span: Span,
    msg: String,
}

type PResult<T> = Result<T, ParseError>;

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    file: &'a ScannedFile,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, k: usize) -> Option<&Token> {
        self.toks.get(self.pos + k)
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> Span {
        self.peek().map(|t| t.span()).unwrap_or(Span { line: 0, col: 0 })
    }

    fn err<T>(&self, msg: &str) -> PResult<T> {
        Err(ParseError { span: self.here(), msg: msg.to_string() })
    }

    fn at_op(&self, s: &str) -> bool {
        self.peek().is_some_and(|t| t.is_op(s))
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek().is_some_and(|t| t.is_ident(s))
    }

    fn eat_op(&mut self, s: &str) -> bool {
        if self.at_op(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if self.at_ident(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_op(&mut self, s: &str) -> PResult<Span> {
        let span = self.here();
        if self.eat_op(s) {
            Ok(span)
        } else {
            self.err(&format!("expected `{s}`"))
        }
    }

    fn ident(&mut self) -> PResult<(String, Span)> {
        match self.peek() {
            Some(Token { tok: Tok::Ident(name), line, col }) => {
                let out = (name.clone(), Span { line: *line, col: *col });
                self.pos += 1;
                Ok(out)
            }
            _ => self.err("expected identifier"),
        }
    }

    fn in_test(&self, span: Span) -> bool {
        span.line >= 1
            && self.file.lines.get(span.line - 1).is_some_and(|l| l.in_test)
    }

    /// Skip one balanced group whose opener is at the current token.
    /// Openers/closers: `( )`, `[ ]`, `{ }`.
    /// Skip to (and past) the next `;` at the current nesting depth,
    /// stepping over any bracketed groups — `static T: [u32; 256] = …;`
    /// must not stop at the `;` inside the array type.
    fn skip_to_semi(&mut self) -> PResult<()> {
        while let Some(t) = self.peek() {
            if t.is_op(";") {
                self.pos += 1;
                return Ok(());
            }
            if t.is_op("(") || t.is_op("[") || t.is_op("{") {
                self.skip_balanced()?;
            } else {
                self.pos += 1;
            }
        }
        self.err("item ran past end of file")
    }

    fn skip_balanced(&mut self) -> PResult<()> {
        let mut depth = 0i64;
        loop {
            let Some(t) = self.bump() else {
                return self.err("unbalanced group hit end of file");
            };
            if let Tok::Op(op) = &t.tok {
                match op.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        depth -= 1;
                        if depth == 0 {
                            return Ok(());
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// Skip a balanced `<…>` generics group starting at `<`.
    fn skip_angles(&mut self) -> PResult<()> {
        let mut depth = 0i64;
        loop {
            let Some(t) = self.bump() else {
                return self.err("unbalanced angle brackets");
            };
            if let Tok::Op(op) = &t.tok {
                match op.as_str() {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            return Ok(());
                        }
                    }
                    // Parenthesized types inside bounds: `Fn(A) -> B`.
                    "(" | "[" => {
                        self.pos -= 1;
                        self.skip_balanced()?;
                    }
                    _ => {}
                }
            }
        }
    }

    /// Skip a type: used after `as`, `:` annotations, and `->`. Stops at
    /// any of `stops` seen at bracket depth 0.
    fn skip_type(&mut self, stops: &[&str]) -> PResult<()> {
        loop {
            let Some(t) = self.peek() else { return Ok(()) };
            match &t.tok {
                Tok::Op(op) => {
                    let op = op.clone();
                    if stops.contains(&op.as_str()) {
                        return Ok(());
                    }
                    match op.as_str() {
                        "(" | "[" => self.skip_balanced()?,
                        "<" => self.skip_angles()?,
                        ")" | "]" | "}" | ";" | "," => return Ok(()),
                        _ => {
                            self.pos += 1;
                        }
                    }
                }
                Tok::Ident(word) => {
                    // `else`/`in`/`where` terminate annotation contexts.
                    if stops.contains(&word.as_str()) {
                        return Ok(());
                    }
                    // `dyn Trait`, `impl Trait`, paths, keywords — all
                    // just words here.
                    self.pos += 1;
                }
                _ => {
                    self.pos += 1;
                }
            }
        }
    }

    // -- patterns ----------------------------------------------------------

    /// Collect binding names from the pattern tokens up to (not
    /// consuming) any of `stops` at depth 0. Heuristic but accurate for
    /// the workspace's patterns: path segments (`Foo::Bar`), struct
    /// field names before `:`, literals, `_`, `..`, and `&`/`mut`/`ref`
    /// noise are skipped; remaining identifiers are bindings.
    fn pattern_vars(&mut self, stops: &[&str]) -> PResult<Vec<String>> {
        self.pattern_vars_ctor(stops).map(|(vars, _)| vars)
    }

    /// Like [`Self::pattern_vars`], but also reports the pattern's
    /// leading constructor — the last path segment before a `(`/`{`
    /// payload (`Ok(fd)` → `Ok`, `Steal::Success(v)` → `Success`).
    /// The resource-leak pass uses it to bind only success arms of an
    /// acquiring scrutinee.
    fn pattern_vars_ctor(
        &mut self,
        stops: &[&str],
    ) -> PResult<(Vec<String>, Option<String>)> {
        let mut vars = Vec::new();
        let mut ctor: Option<String> = None;
        let mut depth = 0i64;
        loop {
            let Some(t) = self.peek() else { return Ok((vars, ctor)) };
            match &t.tok {
                Tok::Op(op) => {
                    let op = op.clone();
                    if depth == 0 && stops.contains(&op.as_str()) {
                        return Ok((vars, ctor));
                    }
                    match op.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => {
                            if depth == 0 {
                                return Ok((vars, ctor));
                            }
                            depth -= 1;
                        }
                        "<" => {
                            // Turbofish in a pattern path.
                            self.skip_angles()?;
                            continue;
                        }
                        _ => {}
                    }
                    self.pos += 1;
                }
                Tok::Ident(word) => {
                    if depth == 0 && stops.contains(&word.as_str()) {
                        return Ok((vars, ctor));
                    }
                    let word = word.clone();
                    let next_sep = self.peek_at(1).map(|t| match &t.tok {
                        Tok::Op(o) => o.clone(),
                        _ => String::new(),
                    });
                    self.pos += 1;
                    match word.as_str() {
                        "mut" | "ref" | "_" | "box" => continue,
                        _ => {}
                    }
                    match next_sep.as_deref() {
                        // `Foo::…` or `Foo(…)` or `Foo { … }` — a path
                        // segment, not a binding. (`Struct { bytes }`
                        // shorthand bindings are idents followed by `,`
                        // or `}`.)
                        Some("(") | Some("{") => {
                            if depth == 0 {
                                ctor = Some(word);
                            }
                        }
                        Some("::") => {}
                        // `field: pat` — the field name is not a binding.
                        // Only inside a struct pattern's braces; at depth
                        // 0 a `name: Type` annotation (fn/closure params)
                        // does bind the name.
                        Some(":") if depth > 0 => {}
                        // `name @ pat` binds the name.
                        _ => {
                            if word.chars().next().is_some_and(|c| c.is_lowercase() || c == '_') {
                                vars.push(word);
                            }
                        }
                    }
                }
                _ => {
                    self.pos += 1;
                }
            }
        }
    }

    // -- blocks and statements --------------------------------------------

    fn parse_block(&mut self) -> PResult<Block> {
        let span = self.expect_op("{")?;
        let mut stmts = Vec::new();
        loop {
            while self.eat_op(";") {}
            if self.at_op("}") {
                self.pos += 1;
                return Ok(Block { stmts, span });
            }
            if self.peek().is_none() {
                return self.err("unterminated block");
            }
            // Attributes on statements.
            while self.at_op("#") {
                self.pos += 1;
                self.eat_op("!");
                if self.at_op("[") {
                    self.skip_balanced()?;
                }
            }
            if self.at_ident("let") {
                stmts.push(self.parse_let()?);
                continue;
            }
            // Nested items inside bodies: parse functions, skip the rest.
            if self.at_ident("fn") {
                // Nested fns are rare; skip structurally (the item
                // scanner only collects top-level and impl fns).
                self.skip_fn_item()?;
                continue;
            }
            if self.at_ident("use") || self.at_ident("type") {
                self.skip_to_semi()?;
                continue;
            }
            if (self.at_ident("const") || self.at_ident("static"))
                && self.peek_at(1).is_some_and(|t| matches!(&t.tok, Tok::Ident(_)))
            {
                self.skip_to_semi()?;
                continue;
            }
            if self.at_ident("struct") || self.at_ident("enum") || self.at_ident("impl") {
                self.skip_to_item_end()?;
                continue;
            }
            let expr = self.parse_expr(true)?;
            let semi = self.eat_op(";");
            stmts.push(Stmt::Expr { expr, semi });
        }
    }

    fn parse_let(&mut self) -> PResult<Stmt> {
        let span = self.here();
        self.pos += 1; // `let`
        let (vars, ctor) = self.pattern_vars_ctor(&["=", ":", ";"])?;
        if self.at_op(":") {
            self.pos += 1;
            self.skip_type(&["=", ";"])?;
        }
        let mut init = None;
        let mut else_block = None;
        if self.eat_op("=") {
            init = Some(self.parse_expr(false)?);
            if self.eat_ident("else") {
                else_block = Some(self.parse_block()?);
            }
        }
        self.expect_op(";")?;
        Ok(Stmt::Let { vars, ctor, init, else_block, span })
    }

    fn skip_fn_item(&mut self) -> PResult<()> {
        // `fn name …` up to the body, then the body.
        self.pos += 1;
        while let Some(t) = self.peek() {
            if t.is_op("{") {
                return self.skip_balanced();
            }
            if t.is_op(";") {
                self.pos += 1;
                return Ok(());
            }
            if t.is_op("(") || t.is_op("[") {
                self.skip_balanced()?;
            } else if t.is_op("<") {
                self.skip_angles()?;
            } else {
                self.pos += 1;
            }
        }
        self.err("unterminated nested fn")
    }

    fn skip_to_item_end(&mut self) -> PResult<()> {
        while let Some(t) = self.peek() {
            if t.is_op("{") {
                return self.skip_balanced();
            }
            if t.is_op(";") {
                self.pos += 1;
                return Ok(());
            }
            self.pos += 1;
        }
        Ok(())
    }

    // -- expressions -------------------------------------------------------

    /// Parse an expression. `stmt_pos` enables the statement rule: a
    /// block-like expression ends the statement (no binary continuation).
    fn parse_expr(&mut self, stmt_pos: bool) -> PResult<Expr> {
        self.parse_expr_inner(stmt_pos, true)
    }

    /// `structs` gates `Path { … }` literal parsing (off in conditions).
    fn parse_expr_inner(&mut self, stmt_pos: bool, structs: bool) -> PResult<Expr> {
        let lhs = self.parse_prefix(structs)?;
        let block_like = matches!(
            lhs,
            Expr::If { .. }
                | Expr::Match { .. }
                | Expr::Loop { .. }
                | Expr::While { .. }
                | Expr::For { .. }
                | Expr::BlockExpr(_)
                | Expr::Unsafe { .. }
        );
        if stmt_pos && block_like {
            return Ok(lhs);
        }
        self.parse_binary_rest(lhs, structs)
    }

    fn parse_binary_rest(&mut self, mut lhs: Expr, structs: bool) -> PResult<Expr> {
        loop {
            let Some(t) = self.peek() else { return Ok(lhs) };
            let Tok::Op(op) = &t.tok else { return Ok(lhs) };
            let op = op.clone();
            let span = t.span();
            match op.as_str() {
                "=" => {
                    self.pos += 1;
                    let rhs = self.parse_expr_inner(false, structs)?;
                    lhs = Expr::Assign { lhs: Box::new(lhs), rhs: Box::new(rhs), span };
                }
                "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "|=" | "&=" | "<<=" => {
                    self.pos += 1;
                    let rhs = self.parse_expr_inner(false, structs)?;
                    lhs = Expr::Assign { lhs: Box::new(lhs), rhs: Box::new(rhs), span };
                }
                "+" | "-" | "*" | "/" | "%" | "^" | "&" | "|" | "&&" | "||" | "==" | "!="
                | "<" | "<=" | ">=" | "<<" => {
                    self.pos += 1;
                    let rhs = self.parse_unary_chain(structs)?;
                    lhs = Expr::Binary {
                        lhs: Box::new(lhs),
                        rhs: Some(Box::new(rhs)),
                        op,
                        span,
                    };
                }
                ">" => {
                    // `>` then an adjacent `>` is a right shift; either
                    // way it is a binary operator here (generics only
                    // follow `::`).
                    self.pos += 1;
                    if self.at_op(">") {
                        self.pos += 1;
                    }
                    if self.at_op("=") {
                        self.pos += 1;
                    }
                    let rhs = self.parse_unary_chain(structs)?;
                    lhs = Expr::Binary {
                        lhs: Box::new(lhs),
                        rhs: Some(Box::new(rhs)),
                        op: ">".into(),
                        span,
                    };
                }
                ".." | "..=" => {
                    self.pos += 1;
                    let rhs = if self.range_operand_follows() {
                        Some(Box::new(self.parse_unary_chain(structs)?))
                    } else {
                        None
                    };
                    lhs = Expr::Binary { lhs: Box::new(lhs), rhs, op, span };
                }
                _ => return Ok(lhs),
            }
        }
    }

    /// Does a range operand follow (`a..b`) or is the range open (`a..`)?
    fn range_operand_follows(&self) -> bool {
        match self.peek() {
            None => false,
            Some(t) => match &t.tok {
                Tok::Op(op) => !matches!(
                    op.as_str(),
                    ")" | "]" | "}" | "," | ";" | "=" | "=>"
                ),
                Tok::Ident(w) => !matches!(w.as_str(), "else" | "in"),
                _ => true,
            },
        }
    }

    /// A unary-prefixed postfix chain (one binary operand).
    fn parse_unary_chain(&mut self, structs: bool) -> PResult<Expr> {
        let e = self.parse_prefix(structs)?;
        // Allow casts/postfix already handled in parse_prefix.
        Ok(e)
    }

    fn parse_prefix(&mut self, structs: bool) -> PResult<Expr> {
        let Some(t) = self.peek() else {
            return self.err("expected expression");
        };
        let span = t.span();
        match &t.tok {
            Tok::Op(op) => match op.as_str() {
                "&" | "&&" => {
                    let double = op == "&&";
                    self.pos += 1;
                    self.eat_ident("mut");
                    let mut inner = self.parse_prefix(structs)?;
                    if double {
                        inner = Expr::Unary { inner: Box::new(inner), span };
                    }
                    return Ok(Expr::Unary { inner: Box::new(inner), span });
                }
                "*" | "-" | "!" => {
                    self.pos += 1;
                    let inner = self.parse_prefix(structs)?;
                    return Ok(Expr::Unary { inner: Box::new(inner), span });
                }
                ".." | "..=" => {
                    // Prefix range `..n` / `..`.
                    self.pos += 1;
                    let rhs = if self.range_operand_follows() {
                        Some(Box::new(self.parse_unary_chain(structs)?))
                    } else {
                        None
                    };
                    return Ok(Expr::Binary {
                        lhs: Box::new(Expr::Lit { span }),
                        rhs,
                        op: "..".into(),
                        span,
                    });
                }
                "|" | "||" => return self.parse_closure(false, span),
                _ => {}
            },
            Tok::Ident(word) if word == "move" => {
                self.pos += 1;
                let span2 = self.here();
                return self.parse_closure(true, span2);
            }
            _ => {}
        }
        let primary = self.parse_primary(structs)?;
        self.parse_postfix(primary, structs)
    }

    fn parse_closure(&mut self, moved: bool, span: Span) -> PResult<Expr> {
        let mut params = Vec::new();
        if self.eat_op("||") {
            // No parameters.
        } else {
            self.expect_op("|")?;
            if !self.eat_op("|") {
                loop {
                    let mut vars = self.pattern_vars(&[",", "|", ":"])?;
                    params.append(&mut vars);
                    if self.at_op(":") {
                        self.pos += 1;
                        self.skip_type(&[",", "|"])?;
                    }
                    if self.eat_op(",") {
                        continue;
                    }
                    self.expect_op("|")?;
                    break;
                }
            }
        }
        if self.at_op("->") {
            self.pos += 1;
            self.skip_type(&["{"])?;
            let body = self.parse_block()?;
            return Ok(Expr::Closure {
                params,
                body: Box::new(Expr::BlockExpr(body)),
                moved,
                span,
            });
        }
        let body = self.parse_expr_inner(false, true)?;
        Ok(Expr::Closure { params, body: Box::new(body), moved, span })
    }

    fn parse_primary(&mut self, structs: bool) -> PResult<Expr> {
        let Some(t) = self.peek() else {
            return self.err("expected expression");
        };
        let span = t.span();
        match &t.tok {
            Tok::Num | Tok::Str | Tok::Char | Tok::Lifetime(_) => {
                // A lifetime here is a loop label: `'outer: loop { … }`.
                if let Tok::Lifetime(label) = &t.tok {
                    let label = label.clone();
                    if self.peek_at(1).is_some_and(|t| t.is_op(":")) {
                        self.pos += 2;
                        return self.parse_labelled_loop(Some(label), span);
                    }
                }
                self.pos += 1;
                Ok(Expr::Lit { span })
            }
            Tok::Op(op) => match op.as_str() {
                "(" => {
                    self.pos += 1;
                    let mut items = Vec::new();
                    while !self.at_op(")") {
                        items.push(self.parse_expr_inner(false, true)?);
                        if !self.eat_op(",") {
                            break;
                        }
                    }
                    self.expect_op(")")?;
                    Ok(Expr::Tuple { items, span })
                }
                "[" => {
                    self.pos += 1;
                    let mut items = Vec::new();
                    while !self.at_op("]") {
                        items.push(self.parse_expr_inner(false, true)?);
                        if !self.eat_op(",") && !self.eat_op(";") {
                            break;
                        }
                    }
                    self.expect_op("]")?;
                    Ok(Expr::Array { items, span })
                }
                "{" => Ok(Expr::BlockExpr(self.parse_block()?)),
                _ => self.err(&format!("unexpected `{op}` in expression")),
            },
            Tok::Ident(word) => {
                let word = word.clone();
                match word.as_str() {
                    "if" => self.parse_if(span),
                    "match" => self.parse_match(span),
                    "loop" | "while" | "for" => self.parse_labelled_loop(None, span),
                    "unsafe" => {
                        self.pos += 1;
                        let block = self.parse_block()?;
                        Ok(Expr::Unsafe { block, span })
                    }
                    "return" => {
                        self.pos += 1;
                        let value = if self.expr_follows() {
                            Some(Box::new(self.parse_expr_inner(false, structs)?))
                        } else {
                            None
                        };
                        Ok(Expr::Return { value, span })
                    }
                    "break" => {
                        self.pos += 1;
                        let label = match self.peek() {
                            Some(Token { tok: Tok::Lifetime(l), .. }) => {
                                let l = l.clone();
                                self.pos += 1;
                                Some(l)
                            }
                            _ => None,
                        };
                        let value = if self.expr_follows() {
                            Some(Box::new(self.parse_expr_inner(false, structs)?))
                        } else {
                            None
                        };
                        Ok(Expr::Break { label, value, span })
                    }
                    "continue" => {
                        self.pos += 1;
                        let label = match self.peek() {
                            Some(Token { tok: Tok::Lifetime(l), .. }) => {
                                let l = l.clone();
                                self.pos += 1;
                                Some(l)
                            }
                            _ => None,
                        };
                        Ok(Expr::Continue { label, span })
                    }
                    _ => self.parse_path_expr(structs),
                }
            }
        }
    }

    /// Does an expression start at the current token (for `return x` vs
    /// bare `return`)?
    fn expr_follows(&self) -> bool {
        match self.peek() {
            None => false,
            Some(t) => match &t.tok {
                Tok::Op(op) => {
                    matches!(op.as_str(), "(" | "[" | "{" | "&" | "&&" | "*" | "-" | "!" | "|" | "||")
                }
                Tok::Ident(w) => !matches!(w.as_str(), "else"),
                _ => true,
            },
        }
    }

    fn parse_labelled_loop(&mut self, label: Option<String>, span: Span) -> PResult<Expr> {
        let Some(t) = self.peek() else { return self.err("expected loop") };
        let word = match &t.tok {
            Tok::Ident(w) => w.clone(),
            _ => return self.err("expected loop keyword after label"),
        };
        self.pos += 1;
        match word.as_str() {
            "loop" => {
                let body = self.parse_block()?;
                Ok(Expr::Loop { label, body, span })
            }
            "while" => {
                let mut let_vars = Vec::new();
                let mut let_ctor = None;
                let cond = if self.eat_ident("let") {
                    let (v, c) = self.pattern_vars_ctor(&["="])?;
                    let_vars = v;
                    let_ctor = c;
                    self.expect_op("=")?;
                    self.parse_expr_inner(false, false)?
                } else {
                    self.parse_expr_inner(false, false)?
                };
                let body = self.parse_block()?;
                Ok(Expr::While { label, cond: Box::new(cond), let_vars, let_ctor, body, span })
            }
            "for" => {
                let vars = self.pattern_vars(&["in"])?;
                if !self.eat_ident("in") {
                    return self.err("expected `in` in for loop");
                }
                let iter = self.parse_expr_inner(false, false)?;
                let body = self.parse_block()?;
                Ok(Expr::For { label, vars, iter: Box::new(iter), body, span })
            }
            other => self.err(&format!("expected loop construct, got `{other}`")),
        }
    }

    fn parse_if(&mut self, span: Span) -> PResult<Expr> {
        self.pos += 1; // `if`
        let mut let_vars = Vec::new();
        let mut let_ctor = None;
        let cond = if self.eat_ident("let") {
            let (v, c) = self.pattern_vars_ctor(&["="])?;
            let_vars = v;
            let_ctor = c;
            self.expect_op("=")?;
            self.parse_expr_inner(false, false)?
        } else {
            self.parse_expr_inner(false, false)?
        };
        let then = self.parse_block()?;
        let els = if self.eat_ident("else") {
            if self.at_ident("if") {
                let span2 = self.here();
                Some(Box::new(self.parse_if(span2)?))
            } else {
                Some(Box::new(Expr::BlockExpr(self.parse_block()?)))
            }
        } else {
            None
        };
        Ok(Expr::If { cond: Box::new(cond), let_vars, let_ctor, then, els, span })
    }

    fn parse_match(&mut self, span: Span) -> PResult<Expr> {
        self.pos += 1; // `match`
        let scrut = self.parse_expr_inner(false, false)?;
        self.expect_op("{")?;
        let mut arms = Vec::new();
        loop {
            while self.eat_op(",") {}
            if self.eat_op("}") {
                break;
            }
            if self.peek().is_none() {
                return self.err("unterminated match");
            }
            // Attributes on arms.
            while self.at_op("#") {
                self.pos += 1;
                if self.at_op("[") {
                    self.skip_balanced()?;
                }
            }
            let arm_span = self.here();
            let (vars, ctor) = self.pattern_vars_ctor(&["=>", "if"])?;
            let guard = if self.eat_ident("if") {
                Some(self.parse_expr_inner(false, false)?)
            } else {
                None
            };
            self.expect_op("=>")?;
            let body = self.parse_expr_inner(false, true)?;
            arms.push(Arm { vars, ctor, guard, body, span: arm_span });
        }
        Ok(Expr::Match { scrut: Box::new(scrut), arms, span })
    }

    /// Paths, calls, struct literals, macros.
    fn parse_path_expr(&mut self, structs: bool) -> PResult<Expr> {
        let (first, span) = self.ident()?;
        let mut segs = vec![first];
        loop {
            if self.at_op("::") {
                // Turbofish or next segment.
                if self.peek_at(1).is_some_and(|t| t.is_op("<")) {
                    self.pos += 1;
                    self.skip_angles()?;
                    continue;
                }
                self.pos += 1;
                let (seg, _) = self.ident()?;
                segs.push(seg);
                continue;
            }
            break;
        }
        if self.at_op("!") {
            // Macro invocation. `!` then one delimited group.
            self.pos += 1;
            let name = segs.last().cloned().unwrap_or_default();
            let args = self.parse_macro_args()?;
            return Ok(Expr::MacroCall { name, args, span });
        }
        if structs && self.at_op("{") && self.struct_literal_follows() {
            self.pos += 1; // `{`
            let mut fields = Vec::new();
            loop {
                while self.eat_op(",") {}
                if self.eat_op("}") {
                    break;
                }
                if self.eat_op("..") {
                    // Struct update base.
                    if !self.at_op("}") {
                        fields.push(self.parse_expr_inner(false, true)?);
                    }
                    continue;
                }
                let (fname, fspan) = self.ident()?;
                if self.eat_op(":") {
                    fields.push(self.parse_expr_inner(false, true)?);
                } else {
                    // Shorthand `Struct { name }` — the field reads the
                    // local of the same name.
                    fields.push(Expr::Path { segs: vec![fname], span: fspan });
                }
                if !self.eat_op(",") {
                    self.expect_op("}")?;
                    break;
                }
            }
            return Ok(Expr::StructLit { path: segs, fields, span });
        }
        Ok(Expr::Path { segs, span })
    }

    /// Heuristic: `Path {` opens a struct literal if the brace is
    /// followed by `}`, `ident:`, `ident,`, `ident }` or `..`.
    fn struct_literal_follows(&self) -> bool {
        match (self.peek_at(1), self.peek_at(2)) {
            (Some(a), b) => match (&a.tok, b.map(|t| &t.tok)) {
                (Tok::Op(o), _) if o == "}" || o == ".." => true,
                (Tok::Ident(_), Some(Tok::Op(o))) => o == ":" || o == "," || o == "}",
                _ => false,
            },
            _ => false,
        }
    }

    fn parse_macro_args(&mut self) -> PResult<Vec<Expr>> {
        let Some(t) = self.peek() else { return self.err("expected macro arguments") };
        let (open, _close) = match &t.tok {
            Tok::Op(o) if o == "(" => ("(", ")"),
            Tok::Op(o) if o == "[" => ("[", "]"),
            Tok::Op(o) if o == "{" => ("{", "}"),
            _ => return self.err("expected macro delimiter"),
        };
        // Try to parse the body as a comma-separated expression list; on
        // any failure fall back to skipping the balanced group (asm!,
        // matches!, write! with format specs, …).
        let start = self.pos;
        let attempt = (|| -> PResult<Vec<Expr>> {
            self.pos += 1; // opener
            let mut args = Vec::new();
            let close_tok = match open {
                "(" => ")",
                "[" => "]",
                _ => "}",
            };
            while !self.at_op(close_tok) {
                args.push(self.parse_expr_inner(false, true)?);
                if !self.eat_op(",") && !self.eat_op(";") {
                    break;
                }
            }
            self.expect_op(close_tok)?;
            Ok(args)
        })();
        match attempt {
            Ok(args) => Ok(args),
            Err(_) => {
                self.pos = start;
                self.skip_balanced()?;
                Ok(Vec::new())
            }
        }
    }

    fn parse_postfix(&mut self, mut e: Expr, structs: bool) -> PResult<Expr> {
        loop {
            let Some(t) = self.peek() else { return Ok(e) };
            let span = t.span();
            match &t.tok {
                Tok::Op(op) => match op.as_str() {
                    "." => {
                        self.pos += 1;
                        match self.peek() {
                            Some(Token { tok: Tok::Num, line, col }) => {
                                let fspan = Span { line: *line, col: *col };
                                self.pos += 1;
                                e = Expr::Field {
                                    recv: Box::new(e),
                                    name: "tuple-index".into(),
                                    span: fspan,
                                };
                            }
                            Some(Token { tok: Tok::Ident(name), line, col }) => {
                                let name = name.clone();
                                let fspan = Span { line: *line, col: *col };
                                self.pos += 1;
                                // Optional turbofish.
                                if self.at_op("::") && self.peek_at(1).is_some_and(|t| t.is_op("<"))
                                {
                                    self.pos += 1;
                                    self.skip_angles()?;
                                }
                                if self.at_op("(") {
                                    let args = self.parse_call_args()?;
                                    e = Expr::MethodCall {
                                        recv: Box::new(e),
                                        method: name,
                                        args,
                                        span: fspan,
                                    };
                                } else {
                                    e = Expr::Field { recv: Box::new(e), name, span: fspan };
                                }
                            }
                            _ => return self.err("expected field or method after `.`"),
                        }
                    }
                    "?" => {
                        self.pos += 1;
                        e = Expr::Try { inner: Box::new(e), span };
                    }
                    "(" => {
                        let args = self.parse_call_args()?;
                        e = Expr::Call { callee: Box::new(e), args, span };
                    }
                    "[" => {
                        self.pos += 1;
                        let index = if self.at_op("]") {
                            Expr::Lit { span }
                        } else {
                            self.parse_expr_inner(false, true)?
                        };
                        self.expect_op("]")?;
                        e = Expr::Index { recv: Box::new(e), index: Box::new(index), span };
                    }
                    _ => return Ok(e),
                },
                Tok::Ident(w) if w == "as" => {
                    self.pos += 1;
                    self.skip_type(&[
                        ")", "]", "}", ";", ",", "=>", "?", ".", "==", "!=", "<=", ">=", "&&",
                        "||", "+", "-", "/", "%", "{", "..", "..=", ">",
                    ])?;
                    e = Expr::Cast { inner: Box::new(e), span };
                }
                _ => return Ok(e),
            }
            let _ = structs;
        }
    }

    fn parse_call_args(&mut self) -> PResult<Vec<Expr>> {
        self.expect_op("(")?;
        let mut args = Vec::new();
        while !self.at_op(")") {
            args.push(self.parse_expr_inner(false, true)?);
            if !self.eat_op(",") {
                break;
            }
        }
        self.expect_op(")")?;
        Ok(args)
    }
}

// ---------------------------------------------------------------------------
// Item scanning
// ---------------------------------------------------------------------------

/// Parse a scanned file into per-function ASTs.
pub fn parse_file(file: &ScannedFile) -> ParsedFile {
    let toks = tokenize(file);
    let mut out = ParsedFile::default();
    let mut p = Parser { toks: &toks, pos: 0, file };
    scan_items(&mut p, None, &mut out);
    out
}

/// Walk item-level tokens, recursing into `mod`/`impl`/`trait` bodies and
/// parsing every `fn`.
fn scan_items(p: &mut Parser<'_>, qual: Option<&str>, out: &mut ParsedFile) {
    loop {
        let Some(t) = p.peek() else { return };
        match &t.tok {
            Tok::Op(op) => {
                match op.as_str() {
                    "#" => {
                        p.pos += 1;
                        p.eat_op("!");
                        if p.at_op("[") {
                            let _ = p.skip_balanced();
                        }
                    }
                    "{" => {
                        // Stray block at item level (shouldn't happen) —
                        // skip to stay in sync.
                        let _ = p.skip_balanced();
                    }
                    "}" => return, // end of enclosing mod/impl/trait
                    _ => p.pos += 1,
                }
            }
            Tok::Ident(word) => {
                let word = word.clone();
                match word.as_str() {
                    "mod" => {
                        p.pos += 1;
                        let _ = p.ident();
                        if p.eat_op("{") {
                            scan_items(p, qual, out);
                            p.eat_op("}");
                        } else {
                            p.eat_op(";");
                        }
                    }
                    "impl" => {
                        p.pos += 1;
                        // `impl<T> Type {` / `impl Trait for Type {`.
                        if p.at_op("<") {
                            let _ = p.skip_angles();
                        }
                        let mut last_path_seg = String::new();
                        while let Some(t) = p.peek() {
                            match &t.tok {
                                Tok::Op(o) if o == "{" => break,
                                Tok::Op(o) if o == "<" => {
                                    let _ = p.skip_angles();
                                }
                                Tok::Op(o) if o == "(" || o == "[" => {
                                    let _ = p.skip_balanced();
                                }
                                Tok::Ident(w) if w == "for" => {
                                    last_path_seg.clear();
                                    p.pos += 1;
                                }
                                Tok::Ident(w) if w == "where" => {
                                    p.pos += 1;
                                }
                                Tok::Ident(w) => {
                                    last_path_seg = w.clone();
                                    p.pos += 1;
                                }
                                _ => p.pos += 1,
                            }
                        }
                        if p.eat_op("{") {
                            let q = if last_path_seg.is_empty() {
                                None
                            } else {
                                Some(last_path_seg)
                            };
                            scan_items(p, q.as_deref(), out);
                            p.eat_op("}");
                        }
                    }
                    "trait" => {
                        p.pos += 1;
                        let name = p.ident().map(|(n, _)| n).unwrap_or_default();
                        while let Some(t) = p.peek() {
                            if t.is_op("{") {
                                break;
                            }
                            if t.is_op("<") {
                                let _ = p.skip_angles();
                            } else {
                                p.pos += 1;
                            }
                        }
                        if p.eat_op("{") {
                            scan_items(p, Some(&name), out);
                            p.eat_op("}");
                        }
                    }
                    "fn" => parse_function(p, qual, false, out),
                    "unsafe" => {
                        p.pos += 1;
                        if p.at_ident("fn") {
                            parse_function(p, qual, true, out);
                        }
                        // `unsafe impl` / `unsafe trait` loop back around.
                    }
                    "struct" | "enum" | "union" => {
                        p.pos += 1;
                        let _ = p.skip_to_item_end();
                    }
                    "use" | "type" | "extern" => {
                        p.pos += 1;
                        let _ = p.skip_to_item_end();
                    }
                    "const" | "static" => {
                        p.pos += 1;
                        if p.at_ident("fn") {
                            parse_function(p, qual, false, out);
                        } else {
                            let _ = p.skip_to_item_end();
                        }
                    }
                    "macro_rules" => {
                        p.pos += 1;
                        p.eat_op("!");
                        let _ = p.ident();
                        let _ = p.skip_to_item_end();
                    }
                    _ => p.pos += 1, // pub, crate, visibility, doc words…
                }
            }
            _ => p.pos += 1,
        }
    }
}

/// Parse one `fn` whose `fn` keyword is at the current token.
fn parse_function(p: &mut Parser<'_>, qual: Option<&str>, is_unsafe: bool, out: &mut ParsedFile) {
    let span = p.here();
    p.pos += 1; // `fn`
    let Ok((bare, _)) = p.ident() else {
        return;
    };
    let name = match qual {
        Some(q) => format!("{q}::{bare}"),
        None => bare,
    };
    let in_test = p.in_test(span);
    // Generics.
    if p.at_op("<") && p.skip_angles().is_err() {
        return;
    }
    // Parameters.
    let params_start = p.pos;
    let mut params = Vec::new();
    if p.at_op("(") {
        p.pos += 1;
        loop {
            if p.at_op(")") {
                p.pos += 1;
                break;
            }
            if p.peek().is_none() {
                return;
            }
            // Attribute on a parameter.
            while p.at_op("#") {
                p.pos += 1;
                if p.at_op("[") && p.skip_balanced().is_err() {
                    return;
                }
            }
            // `&self` / `&mut self` / `self` / `mut self`.
            match p.pattern_vars(&[":", ",", ")"]) {
                Ok(mut vars) => {
                    if vars.is_empty()
                        && p.toks[params_start..p.pos].iter().any(|t| t.is_ident("self"))
                    {
                        vars.push("self".into());
                    }
                    params.append(&mut vars);
                }
                Err(_) => return,
            }
            if p.at_op(":") {
                p.pos += 1;
                if p.skip_type(&[",", ")"]).is_err() {
                    return;
                }
            }
            if !p.eat_op(",") {
                if p.eat_op(")") {
                    break;
                }
                return;
            }
        }
    }
    // `self` params: pattern_vars skips lone keywords like `self`? It
    // collects lowercase idents, and `self` passes that filter, so the
    // explicit fixup above is just belt-and-braces for `&self`.
    if params.is_empty() {
        let sig = &p.toks[params_start..p.pos];
        if sig.iter().any(|t| t.is_ident("self")) {
            params.push("self".into());
        }
    }
    // Return type.
    if p.at_op("->") {
        p.pos += 1;
        if p.skip_type(&["{", "where", ";"]).is_err() {
            return;
        }
    }
    // Where clause.
    if p.at_ident("where") {
        while let Some(t) = p.peek() {
            if t.is_op("{") || t.is_op(";") {
                break;
            }
            if t.is_op("<") {
                if p.skip_angles().is_err() {
                    return;
                }
            } else if t.is_op("(") || t.is_op("[") {
                if p.skip_balanced().is_err() {
                    return;
                }
            } else {
                p.pos += 1;
            }
        }
    }
    // Body (or trait-method `;`).
    if p.eat_op(";") {
        return;
    }
    if !p.at_op("{") {
        out.unparsed.push(Unparsed {
            name,
            span,
            in_test,
            error: format!("expected function body at {}", p.here()),
        });
        // Resync: skip to the next plausible item.
        while let Some(t) = p.peek() {
            if t.is_op("{") {
                let _ = p.skip_balanced();
                break;
            }
            if t.is_op(";") {
                p.pos += 1;
                break;
            }
            p.pos += 1;
        }
        return;
    }
    let body_start = p.pos;
    match p.parse_block() {
        Ok(body) => out.functions.push(Function { name, is_unsafe, span, params, in_test, body }),
        Err(e) => {
            out.unparsed.push(Unparsed {
                name,
                span,
                in_test,
                error: format!("{} at {}", e.msg, e.span),
            });
            // Recover by skipping the raw body braces.
            p.pos = body_start;
            let _ = p.skip_balanced();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&scan(src))
    }

    fn ok(src: &str) -> ParsedFile {
        let f = parse(src);
        assert!(f.unparsed.is_empty(), "unparsed: {:?}", f.unparsed);
        f
    }

    #[test]
    fn simple_function_with_let_and_call() {
        let f = ok("fn f() {\n    let fd = sys::accept4(listener)?;\n    sys::close(fd);\n}\n");
        assert_eq!(f.functions.len(), 1);
        let func = &f.functions[0];
        assert_eq!(func.name, "f");
        assert_eq!(func.body.stmts.len(), 2);
        match &func.body.stmts[0] {
            Stmt::Let { vars, init, .. } => {
                assert_eq!(vars, &["fd"]);
                assert!(matches!(init, Some(Expr::Try { .. })));
            }
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn impl_methods_get_qualified_names() {
        let f = ok("impl Conn {\n    pub fn new(fd: i32) -> Self { Self { fd } }\n    fn fill(&mut self) -> usize { self.rbuf.len() }\n}\n");
        let names: Vec<&str> = f.functions.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["Conn::new", "Conn::fill"]);
        assert_eq!(f.functions[1].params, vec!["self"]);
    }

    #[test]
    fn control_flow_and_labels() {
        let src = "fn f() {\n    'outer: loop {\n        for off in 1..workers {\n            match d.steal() {\n                Steal::Success(v) => continue 'outer,\n                Steal::Empty => break,\n                Steal::Retry => {}\n            }\n        }\n        if done { break; } else { continue; }\n    }\n}\n";
        let f = ok(src);
        let func = &f.functions[0];
        match &func.body.stmts[0] {
            Stmt::Expr { expr: Expr::Loop { label, .. }, .. } => {
                assert_eq!(label.as_deref(), Some("outer"));
            }
            other => panic!("expected labelled loop, got {other:?}"),
        }
    }

    #[test]
    fn let_else_and_while_let() {
        let src = "fn f(slots: &mut M) {\n    let Some(slot) = slots.get_mut(&fd) else { continue };\n    while let Some(v) = d.pop() { use_it(v); }\n}\n";
        let f = ok(src);
        match &f.functions[0].body.stmts[0] {
            Stmt::Let { vars, else_block, .. } => {
                assert_eq!(vars, &["slot"]);
                assert!(else_block.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn closures_structs_and_macros() {
        let src = "fn f() {\n    let h = thread::spawn(move || { shard_loop(fd, &cfg); });\n    let e = EpollEvent { events: 0, data: fd as u32 as u64 };\n    let v = vec![1, 2];\n    core::arch::asm!(\"syscall\", in(\"rdi\") a, options(nostack));\n}\n";
        let f = ok(src);
        assert_eq!(f.functions.len(), 1);
    }

    #[test]
    fn match_guards_and_struct_patterns() {
        let src = "fn f(e: &E) -> i32 {\n    match e {\n        E::Sys { errno, .. } if *errno == 4 => 1,\n        E::Would(n) => *n,\n        _ => 0,\n    }\n}\n";
        let f = ok(src);
        match &f.functions[0].body.stmts[0] {
            Stmt::Expr { expr: Expr::Match { arms, .. }, semi } => {
                assert!(!semi);
                assert_eq!(arms.len(), 3);
                assert_eq!(arms[0].vars, vec!["errno"]);
                assert!(arms[0].guard.is_some());
                assert_eq!(arms[1].vars, vec!["n"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unsafe_blocks_and_fns_are_recorded() {
        let src = "unsafe fn raw() -> isize { 0 }\nfn wrap() {\n    let r = unsafe { raw() };\n    touch(r);\n}\n";
        let f = ok(src);
        assert!(f.functions[0].is_unsafe);
        let mut saw_unsafe = false;
        for s in &f.functions[1].body.stmts {
            if let Stmt::Let { init: Some(e), .. } = s {
                e.walk(&mut |x| {
                    if matches!(x, Expr::Unsafe { .. }) {
                        saw_unsafe = true;
                    }
                });
            }
        }
        assert!(saw_unsafe);
    }

    #[test]
    fn generics_where_clauses_and_turbofish() {
        let src = "fn map_worker<T, U, F>(me: usize, f: &F) -> Vec<(usize, U)>\nwhere\n    T: Sync,\n    F: Fn(usize, &T) -> U + Sync,\n{\n    let x = payload.downcast_ref::<&str>();\n    let n = value.parse::<usize>()?;\n    items.iter().map(|i| f(0, i)).collect::<Vec<_>>()\n}\n";
        let f = ok(src);
        assert_eq!(f.functions[0].name, "map_worker");
        assert_eq!(f.functions[0].params, vec!["me", "f"]);
    }

    #[test]
    fn ranges_shifts_and_casts() {
        let src = "fn f() {\n    let a = &buf[..n];\n    let b = &self.wbuf[self.written..];\n    let c = 1u32 << 31;\n    let d = x >> 2;\n    let e = fd as u32 as u64;\n    for i in 0..CAPACITY as u64 { touch(i); }\n}\n";
        ok(src);
    }

    #[test]
    fn unparsed_function_is_reported_not_fatal() {
        // Deliberate nonsense inside g's body; f and h still parse.
        let src = "fn f() { good(); }\nfn g() { let = ; @@ }\nfn h() { fine(); }\n";
        let f = parse(src);
        let names: Vec<&str> = f.functions.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["f", "h"]);
        assert_eq!(f.unparsed.len(), 1);
        assert_eq!(f.unparsed[0].name, "g");
    }

    #[test]
    fn test_region_functions_are_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x(); }\n}\n";
        let f = ok(src);
        assert!(!f.functions[0].in_test);
        assert!(f.functions[1].in_test);
    }
}
