//! Vector-clock happens-before race checking over synchronization logs.
//!
//! The input is an [`EventLog`] recorded by an instrumented run (the
//! simulator's [`scope_sim::ExecTrace::sync_log`] lowering, or the serving
//! stack's shared [`scope_sim::EventTrace`]). The checker replays the log
//! with one vector clock per actor:
//!
//! * `Send {chan, msg}` publishes the sender's clock under `(chan, msg)`;
//!   the matching `Recv` joins it — channel edges are matched by message
//!   id, **not** by log position, so the checker tolerates the arbitrary
//!   interleavings a multi-threaded recorder produces.
//! * `Acquire`/`Release` order critical sections through the lock's
//!   last-release clock.
//! * `Read`/`Write` are the accesses being audited: two accesses to the
//!   same resource, at least one a write, from different actors, with
//!   neither ordered before the other, are a data race.
//!
//! Replay is by *enablement*, not log order: each actor's events stay in
//! program order, and a `Recv` (or a contended `Acquire`) simply waits
//! until its counterpart has been processed. A log that can never finish —
//! a `Recv` with no `Send`, say — is reported as malformed rather than
//! racy.

use scope_sim::{EventLog, TraceEvent, TraceOp};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// A vector clock: actor id to logical time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock(BTreeMap<u32, u64>);

impl VectorClock {
    /// This actor's own component.
    fn get(&self, actor: u32) -> u64 {
        self.0.get(&actor).copied().unwrap_or(0)
    }

    fn tick(&mut self, actor: u32) {
        *self.0.entry(actor).or_insert(0) += 1;
    }

    fn join(&mut self, other: &VectorClock) {
        for (&actor, &t) in &other.0 {
            let slot = self.0.entry(actor).or_insert(0);
            *slot = (*slot).max(t);
        }
    }
}

/// An unsynchronized pair of conflicting accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// The shared resource both events touched.
    pub resource: u64,
    /// The earlier-processed access.
    pub first: TraceEvent,
    /// The later-processed access that did not observe `first`.
    pub second: TraceEvent,
}

/// Why a log could not be replayed to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HbError {
    /// Replay wedged: no actor's next event is enabled. Holds the number
    /// of unprocessed events — a `Recv` missing its `Send` or an
    /// `Acquire` whose holder never releases.
    Stuck {
        /// Events left unprocessed when replay wedged.
        remaining: usize,
    },
}

impl std::fmt::Display for HbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Stuck { remaining } => write!(
                f,
                "malformed log: replay wedged with {remaining} events unprocessed \
                 (a Recv without its Send, or an Acquire never released)"
            ),
        }
    }
}

/// One recorded access for race bookkeeping.
#[derive(Debug, Clone)]
struct Access {
    clock: VectorClock,
    event: TraceEvent,
}

/// Replay `log` and report every data race found.
///
/// Returns `Ok(races)` when the whole log replays; an empty vector means
/// the recorded execution is free of unsynchronized conflicting accesses.
pub fn check_log(log: &EventLog) -> Result<Vec<Race>, HbError> {
    let mut queues: BTreeMap<u32, VecDeque<TraceEvent>> = BTreeMap::new();
    for ev in &log.events {
        queues.entry(ev.actor).or_default().push_back(*ev);
    }

    let mut clocks: HashMap<u32, VectorClock> = HashMap::new();
    let mut sent: HashMap<(u64, u64), VectorClock> = HashMap::new();
    let mut lock_release: HashMap<u64, VectorClock> = HashMap::new();
    let mut lock_holder: HashMap<u64, u32> = HashMap::new();
    // Per resource, the latest read and write of each actor.
    let mut reads: HashMap<u64, HashMap<u32, Access>> = HashMap::new();
    let mut writes: HashMap<u64, HashMap<u32, Access>> = HashMap::new();
    let mut races: Vec<Race> = Vec::new();

    let mut remaining: usize = log.len();
    loop {
        let mut progressed = false;
        let actors: Vec<u32> = queues.keys().copied().collect();
        for actor in actors {
            while let Some(&ev) = queues.get(&actor).and_then(VecDeque::front) {
                let enabled = match ev.op {
                    TraceOp::Recv { chan, msg } => sent.contains_key(&(chan, msg)),
                    TraceOp::Acquire(l) => {
                        lock_holder.get(&l).is_none_or(|&h| h == actor)
                    }
                    _ => true,
                };
                if !enabled {
                    break;
                }
                queues.get_mut(&actor).map(|q| q.pop_front());
                remaining -= 1;
                progressed = true;

                let clock = clocks.entry(actor).or_default();
                clock.tick(actor);
                match ev.op {
                    TraceOp::Send { chan, msg } => {
                        sent.insert((chan, msg), clock.clone());
                    }
                    TraceOp::Recv { chan, msg } => {
                        let origin = sent
                            .get(&(chan, msg))
                            .cloned()
                            .unwrap_or_default();
                        clock.join(&origin);
                    }
                    TraceOp::Acquire(l) => {
                        if let Some(rel) = lock_release.get(&l) {
                            clock.join(&rel.clone());
                        }
                        lock_holder.insert(l, actor);
                    }
                    TraceOp::Release(l) => {
                        lock_release.insert(l, clock.clone());
                        lock_holder.remove(&l);
                    }
                    TraceOp::Write(r) => {
                        let clock = clock.clone();
                        for prior in reads
                            .get(&r)
                            .into_iter()
                            .chain(writes.get(&r))
                            .flat_map(HashMap::values)
                        {
                            report_if_unordered(&mut races, r, prior, &clock, ev, actor);
                        }
                        writes
                            .entry(r)
                            .or_default()
                            .insert(actor, Access { clock, event: ev });
                    }
                    TraceOp::Read(r) => {
                        let clock = clock.clone();
                        for prior in writes.get(&r).into_iter().flat_map(HashMap::values) {
                            report_if_unordered(&mut races, r, prior, &clock, ev, actor);
                        }
                        reads
                            .entry(r)
                            .or_default()
                            .insert(actor, Access { clock, event: ev });
                    }
                }
            }
        }
        if remaining == 0 {
            return Ok(races);
        }
        if !progressed {
            return Err(HbError::Stuck { remaining });
        }
    }
}

/// A prior access by another actor races the current one unless the
/// prior's own clock component is visible in the current clock.
fn report_if_unordered(
    races: &mut Vec<Race>,
    resource: u64,
    prior: &Access,
    current: &VectorClock,
    event: TraceEvent,
    actor: u32,
) {
    let p = prior.event.actor;
    if p != actor && current.get(p) < prior.clock.get(p) {
        races.push(Race { resource, first: prior.event, second: event });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_sim::EventLog;

    fn log(events: &[(u32, TraceOp)]) -> EventLog {
        let mut l = EventLog::new();
        for &(actor, op) in events {
            l.push(actor, op);
        }
        l
    }

    #[test]
    fn channel_edge_orders_write_before_read() {
        let l = log(&[
            (1, TraceOp::Write(9)),
            (1, TraceOp::Send { chan: 5, msg: 0 }),
            (2, TraceOp::Recv { chan: 5, msg: 0 }),
            (2, TraceOp::Read(9)),
        ]);
        assert_eq!(check_log(&l), Ok(vec![]));
    }

    #[test]
    fn dropping_the_recv_exposes_the_race() {
        let l = log(&[
            (1, TraceOp::Write(9)),
            (1, TraceOp::Send { chan: 5, msg: 0 }),
            (2, TraceOp::Read(9)),
        ]);
        let races = check_log(&l).expect("replays");
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].resource, 9);
    }

    #[test]
    fn lock_discipline_orders_writes() {
        let l = log(&[
            (1, TraceOp::Acquire(3)),
            (1, TraceOp::Write(9)),
            (1, TraceOp::Release(3)),
            (2, TraceOp::Acquire(3)),
            (2, TraceOp::Write(9)),
            (2, TraceOp::Release(3)),
        ]);
        assert_eq!(check_log(&l), Ok(vec![]));
    }

    #[test]
    fn unlocked_concurrent_writes_race() {
        let l = log(&[(1, TraceOp::Write(9)), (2, TraceOp::Write(9))]);
        let races = check_log(&l).expect("replays");
        assert_eq!(races.len(), 1);
    }

    #[test]
    fn interleaved_log_order_is_tolerated() {
        // The recorder appended the Recv *before* the Send (possible when
        // threads race to the shared buffer); matching is by msg id.
        let l = log(&[
            (2, TraceOp::Recv { chan: 5, msg: 0 }),
            (1, TraceOp::Write(9)),
            (1, TraceOp::Send { chan: 5, msg: 0 }),
            (2, TraceOp::Read(9)),
        ]);
        assert_eq!(check_log(&l), Ok(vec![]));
    }

    #[test]
    fn recv_without_send_is_malformed() {
        let l = log(&[(2, TraceOp::Recv { chan: 5, msg: 0 })]);
        assert_eq!(check_log(&l), Err(HbError::Stuck { remaining: 1 }));
    }

    #[test]
    fn same_actor_accesses_never_race() {
        let l = log(&[(1, TraceOp::Write(9)), (1, TraceOp::Read(9)), (1, TraceOp::Write(9))]);
        assert_eq!(check_log(&l), Ok(vec![]));
    }

    #[test]
    fn transitive_ordering_through_a_third_actor() {
        let l = log(&[
            (1, TraceOp::Write(9)),
            (1, TraceOp::Send { chan: 1, msg: 0 }),
            (2, TraceOp::Recv { chan: 1, msg: 0 }),
            (2, TraceOp::Send { chan: 2, msg: 0 }),
            (3, TraceOp::Recv { chan: 2, msg: 0 }),
            (3, TraceOp::Write(9)),
        ]);
        assert_eq!(check_log(&l), Ok(vec![]));
    }
}
