//! Diagnostic rendering: human text and machine JSON.
//!
//! The JSON writer is hand-rolled (the crate is intentionally
//! dependency-light) and emits a stable shape CI consumes as an artifact:
//!
//! ```json
//! {
//!   "schema": 2,
//!   "ok": true,
//!   "files_scanned": 120,
//!   "functions_parsed": 840,
//!   "functions_unparsed": 0,
//!   "passes": ["resource-leak", "unsafe-boundary", "lock-discipline"],
//!   "lock_edges": 3,
//!   "jobs_validated": 32,
//!   "curves_audited": 4,
//!   "hb_events": 2048,
//!   "diagnostics": [
//!     {"rule": "no-panic", "severity": "deny", "path": "crates/x/src/a.rs",
//!      "line": 10, "col": 5, "message": "`.unwrap()` outside tests"}
//!   ]
//! }
//! ```
//!
//! Schema history: v1 lacked `schema`, `functions_parsed`,
//! `functions_unparsed`, and `passes`; v2 added them with the dataflow
//! passes.

use crate::CheckReport;
use std::fmt::Write as _;

/// Render the report as indented JSON.
pub fn to_json(report: &CheckReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 2,\n");
    let _ = writeln!(out, "  \"ok\": {},", report.ok());
    let _ = writeln!(out, "  \"files_scanned\": {},", report.files_scanned);
    let _ = writeln!(out, "  \"functions_parsed\": {},", report.functions_parsed);
    let _ = writeln!(out, "  \"functions_unparsed\": {},", report.functions_unparsed);
    let passes: Vec<String> = report.passes.iter().map(|p| json_string(p)).collect();
    let _ = writeln!(out, "  \"passes\": [{}],", passes.join(", "));
    let _ = writeln!(out, "  \"lock_edges\": {},", report.lock_edges);
    let _ = writeln!(out, "  \"jobs_validated\": {},", report.jobs_validated);
    let _ = writeln!(out, "  \"curves_audited\": {},", report.curves_audited);
    let _ = writeln!(out, "  \"hb_events\": {},", report.hb_events);
    out.push_str("  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        let _ = write!(
            out,
            "\"rule\": {}, \"severity\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \
             \"message\": {}",
            json_string(&d.rule),
            json_string(&d.severity.to_string()),
            json_string(&d.path),
            d.line,
            d.col,
            json_string(&d.message)
        );
        out.push('}');
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Render the report as human-readable text.
pub fn to_human(report: &CheckReport) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let _ = writeln!(out, "{d}");
    }
    let _ = writeln!(
        out,
        "tasq-analyze: {} files, {} fns parsed ({} unparsed), {} lock edges, \
         {} jobs validated, {} curves audited, {} sync events replayed: {}",
        report.files_scanned,
        report.functions_parsed,
        report.functions_unparsed,
        report.lock_edges,
        report.jobs_validated,
        report.curves_audited,
        report.hb_events,
        if report.ok() {
            "OK".to_string()
        } else {
            format!(
                "{} deny finding(s)",
                report
                    .diagnostics
                    .iter()
                    .filter(|d| d.severity == crate::Severity::Deny)
                    .count()
            )
        }
    );
    out
}

/// JSON string literal with the required escapes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Diagnostic, Severity};

    #[test]
    fn json_escapes_and_shape() {
        let mut report = CheckReport { files_scanned: 2, ..Default::default() };
        report.diagnostics.push(Diagnostic {
            rule: "no-panic".into(),
            severity: Severity::Deny,
            path: "crates/x/src/a.rs".into(),
            line: 3,
            col: 7,
            message: "say \"no\" to\npanics".into(),
        });
        let json = to_json(&report);
        assert!(json.contains("\"ok\": false"));
        assert!(json.contains("\\\"no\\\" to\\npanics"));
        assert!(json.contains("\"line\": 3"));
    }

    #[test]
    fn json_reports_schema_2_with_pass_inventory() {
        let report = CheckReport {
            functions_parsed: 12,
            functions_unparsed: 1,
            passes: vec!["resource-leak".into(), "lock-discipline".into()],
            ..Default::default()
        };
        let json = to_json(&report);
        assert!(json.contains("\"schema\": 2"), "{json}");
        assert!(json.contains("\"functions_parsed\": 12"), "{json}");
        assert!(json.contains("\"functions_unparsed\": 1"), "{json}");
        assert!(json.contains("\"passes\": [\"resource-leak\", \"lock-discipline\"]"), "{json}");
    }

    #[test]
    fn human_summary_reports_ok() {
        let report = CheckReport { files_scanned: 5, ..Default::default() };
        let text = to_human(&report);
        assert!(text.contains("OK"), "{text}");
    }
}
