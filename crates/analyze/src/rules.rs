//! Pluggable lint rules over [`crate::lexer`] output.
//!
//! Every rule reports the workspace conventions the CI gate used to grep
//! for, with three upgrades over the shell version: string/comment/test
//! awareness (via the scanner), per-path allowlists, and inline
//! `// lint: allow(rule-id) — reason` waivers.

use crate::lexer::scan;
use crate::{Diagnostic, Severity};

/// Rule id: panicking constructs (`unwrap`, `expect`, `panic!`, …) outside
/// test code.
pub const NO_PANIC: &str = "no-panic";
/// Rule id: `==`/`!=` against a floating-point literal.
pub const FLOAT_EQ: &str = "float-eq";
/// Rule id: RNG constructed without an explicit seed.
pub const UNSEEDED_RNG: &str = "unseeded-rng";
/// Rule id: wall-clock reads inside the simulator.
pub const WALL_CLOCK: &str = "wall-clock";
/// Rule id: unbounded channel construction in concurrent crates.
pub const UNBOUNDED_CHANNEL: &str = "unbounded-channel";

/// All rule ids, in reporting order.
pub const ALL_RULES: [&str; 5] =
    [NO_PANIC, FLOAT_EQ, UNSEEDED_RNG, WALL_CLOCK, UNBOUNDED_CHANNEL];

/// Paths never linted: vendored stand-ins and integration-test /
/// benchmark / example trees (unit tests are excluded by the scanner's
/// `#[cfg(test)]` tracking instead).
pub fn path_is_exempt(path: &str) -> bool {
    path.contains("vendor/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
        || path.ends_with("build.rs")
}

/// Does `rule` apply to the file at `path` (workspace-relative, `/`
/// separated)? Encodes the per-path allowlists:
///
/// * `crates/experiments` is exploratory plotting code — `no-panic` and
///   `float-eq` are waived there wholesale;
/// * `wall-clock` guards the simulator (`crates/scope-sim/src`), where
///   wall time would silently break determinism, the observability
///   crate (`crates/obs/src`), whose timestamps must all flow through its
///   `clock` module — the single allowlisted wall-clock read site in the
///   instrumented workspace — and the resilience crate
///   (`crates/resil/src`), whose circuit breaker and chaos plans are
///   tick-driven so recovery tests replay deterministically;
/// * `unbounded-channel` guards the concurrent crates (`crates/serve`,
///   `crates/scope-sim`, `crates/par`, `crates/resil`, `crates/net` —
///   the event loop must never buffer without bound between the socket
///   and the admission queue) and the observability crate, whose
///   collector buffers must stay bounded.
pub fn rule_applies(rule: &str, path: &str) -> bool {
    if path_is_exempt(path) {
        return false;
    }
    match rule {
        NO_PANIC | FLOAT_EQ => !path.starts_with("crates/experiments/"),
        UNSEEDED_RNG => true,
        WALL_CLOCK => {
            path.starts_with("crates/scope-sim/src")
                || (path.starts_with("crates/obs/src") && !path.ends_with("/clock.rs"))
                || path.starts_with("crates/resil/src")
        }
        UNBOUNDED_CHANNEL => {
            path.starts_with("crates/serve/")
                || path.starts_with("crates/scope-sim/")
                || path.starts_with("crates/par/")
                || path.starts_with("crates/obs/")
                || path.starts_with("crates/resil/")
                || path.starts_with("crates/net/")
        }
        _ => false,
    }
}

/// Lint one file. `path` is workspace-relative with `/` separators and is
/// used for both path scoping and diagnostic spans.
pub fn lint_source(path: &str, source: &str) -> Vec<Diagnostic> {
    let scanned = scan(source);
    let mut out = Vec::new();
    for (idx, line) in scanned.lines.iter().enumerate() {
        let lineno = idx + 1;
        if line.in_test {
            continue;
        }
        for rule in ALL_RULES {
            if !rule_applies(rule, path) || line.allows.iter().any(|a| a == rule) {
                continue;
            }
            for (col, message) in matches_for(rule, &line.code) {
                out.push(Diagnostic {
                    rule: rule.to_string(),
                    severity: Severity::Deny,
                    path: path.to_string(),
                    line: lineno,
                    col: col + 1,
                    message,
                });
            }
        }
    }
    out
}

/// All matches of `rule` in one line of comment-stripped code, as
/// `(byte column, message)` pairs.
fn matches_for(rule: &str, code: &str) -> Vec<(usize, String)> {
    match rule {
        NO_PANIC => {
            let mut hits = find_all(code, ".unwrap()", "`.unwrap()` outside tests");
            hits.extend(find_all(code, ".expect(", "`.expect(…)` outside tests"));
            for mac in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
                hits.extend(find_macro(code, mac));
            }
            hits
        }
        FLOAT_EQ => float_eq_matches(code),
        UNSEEDED_RNG => {
            let mut hits = find_all(
                code,
                "thread_rng(",
                "`thread_rng()` draws a nondeterministic seed",
            );
            hits.extend(find_all(
                code,
                "from_entropy(",
                "`from_entropy()` draws a nondeterministic seed",
            ));
            hits.extend(find_all(
                code,
                "rand::random(",
                "`rand::random()` uses the thread-local unseeded RNG",
            ));
            hits
        }
        WALL_CLOCK => {
            let mut hits = find_all(
                code,
                "Instant::now(",
                "wall-clock read in the simulator breaks determinism",
            );
            hits.extend(find_all(
                code,
                "SystemTime::now(",
                "wall-clock read in the simulator breaks determinism",
            ));
            hits
        }
        UNBOUNDED_CHANNEL => {
            let message = "unbounded channel: queue depth is unchecked under load";
            let mut hits: Vec<(usize, String)> = find_call(code, "mpsc::channel")
                .into_iter()
                .map(|c| (c, message.to_string()))
                .collect();
            hits.extend(find_call(code, "unbounded").into_iter().map(|c| (c, message.into())));
            hits
        }
        _ => Vec::new(),
    }
}

/// Every occurrence of `needle`, labelled with `message`.
fn find_all(code: &str, needle: &str, message: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(needle) {
        out.push((from + pos, message.to_string()));
        from += pos + needle.len();
    }
    out
}

/// Occurrences of `name!` not preceded by an identifier character (so
/// `debug_panic!` would not count as `panic!`).
fn find_macro(code: &str, name: &str) -> Vec<(usize, String)> {
    find_macro_free(code, name)
        .into_iter()
        .map(|c| (c, format!("`{name}` outside tests")))
        .collect()
}

/// Occurrences of `name` called as a function: not preceded by an
/// identifier character, followed by `(` or a turbofish `::<`.
fn find_call(code: &str, name: &str) -> Vec<usize> {
    find_macro_free(code, name)
        .into_iter()
        .filter(|&at| {
            let after = &code[at + name.len()..];
            after.starts_with('(') || after.starts_with("::<")
        })
        .collect()
}

/// Occurrences of `needle` whose preceding character is not part of an
/// identifier.
fn find_macro_free(code: &str, needle: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(needle) {
        let at = from + pos;
        let ok = at == 0 || {
            let prev = bytes[at - 1] as char;
            !(prev.is_ascii_alphanumeric() || prev == '_')
        };
        if ok {
            out.push(at);
        }
        from = at + needle.len();
    }
    out
}

/// Find `==`/`!=` comparisons with a float-literal operand.
fn float_eq_matches(code: &str) -> Vec<(usize, String)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let two = &code[i..i + 2];
        if two == "==" || two == "!=" {
            // Skip `<=`, `>=`, `===`-like runs and pattern arms `=>`.
            let prev = if i > 0 { bytes[i - 1] as char } else { ' ' };
            let next = if i + 2 < bytes.len() { bytes[i + 2] as char } else { ' ' };
            if prev == '<' || prev == '>' || prev == '=' || prev == '!' || next == '=' {
                i += 1;
                continue;
            }
            let left = last_token(&code[..i]);
            let right = first_token(&code[i + 2..]);
            if is_float_literal(&left) || is_float_literal(&right) {
                out.push((
                    i,
                    format!(
                        "float `{two}` against a literal ({}) — compare with a tolerance",
                        if is_float_literal(&left) { left } else { right }
                    ),
                ));
            }
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

fn token_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-' | '+')
}

fn last_token(before: &str) -> String {
    before
        .trim_end()
        .chars()
        .rev()
        .take_while(|&c| token_char(c))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect()
}

fn first_token(after: &str) -> String {
    after.trim_start().chars().take_while(|&c| token_char(c)).collect()
}

/// Is `tok` a floating-point literal (`0.0`, `1e-3`, `2.5f64`, …)?
fn is_float_literal(tok: &str) -> bool {
    let t = tok.trim_start_matches(['-', '+']);
    let t = t.strip_suffix("f64").or_else(|| t.strip_suffix("f32")).unwrap_or(t);
    let Some(first) = t.chars().next() else { return false };
    if !first.is_ascii_digit() {
        return false;
    }
    (t.contains('.') || t.contains(['e', 'E']))
        && t.chars().all(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '-' | '+' | '_'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(path: &str, src: &str) -> Vec<String> {
        lint_source(path, src).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn unwrap_flagged_outside_tests_only() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\n";
        let diags = lint_source("crates/core/src/a.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 1);
        assert_eq!(diags[0].rule, NO_PANIC);
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(id); z.expect_err(\"e\"); }\n";
        assert!(rules_hit("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn float_eq_literal_comparisons() {
        let src = "fn f() { if a == 0.0 { } if 1e-3 != b { } if n == 3 { } if c <= 0.0 { } }\n";
        let diags = lint_source("crates/core/src/a.rs", src);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == FLOAT_EQ));
    }

    #[test]
    fn inline_allow_waives_a_rule() {
        let src = "// lint: allow(float-eq) — exact zero check\nfn f() { if a == 0.0 { } }\n";
        assert!(rules_hit("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn experiments_are_allowlisted_for_panics() {
        let src = "fn f() { x.unwrap(); if a == 0.5 { } thread_rng(); }\n";
        let hits = rules_hit("crates/experiments/src/a.rs", src);
        assert_eq!(hits, vec![UNSEEDED_RNG.to_string()]);
    }

    #[test]
    fn wall_clock_scoped_to_simulator() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(rules_hit("crates/scope-sim/src/a.rs", src), vec![WALL_CLOCK.to_string()]);
        assert!(rules_hit("crates/serve/src/a.rs", src).is_empty());
        // The observability crate is covered too, except its clock module
        // — the one sanctioned wall-clock read site.
        assert_eq!(rules_hit("crates/obs/src/span.rs", src), vec![WALL_CLOCK.to_string()]);
        assert!(rules_hit("crates/obs/src/clock.rs", src).is_empty());
        // The resilience crate is tick-driven end to end: breaker cooldowns
        // and chaos plans count events, never read the wall clock.
        assert_eq!(rules_hit("crates/resil/src/breaker.rs", src), vec![WALL_CLOCK.to_string()]);
    }

    #[test]
    fn unbounded_channels_in_concurrent_crates() {
        let src = "fn f() { let (tx, rx) = mpsc::channel(); }\n";
        assert_eq!(
            rules_hit("crates/serve/src/a.rs", src),
            vec![UNBOUNDED_CHANNEL.to_string()]
        );
        let bounded = "fn f() { let (tx, rx) = mpsc::sync_channel(8); }\n";
        assert!(rules_hit("crates/serve/src/a.rs", bounded).is_empty());
        // The work-stealing runtime is a concurrent crate too: its deques
        // are bounded by construction and its channels must be as well.
        assert_eq!(
            rules_hit("crates/par/src/a.rs", src),
            vec![UNBOUNDED_CHANNEL.to_string()]
        );
        // The observability collector is bounded by design; its sources
        // must not introduce unbounded channels either.
        assert_eq!(
            rules_hit("crates/obs/src/a.rs", src),
            vec![UNBOUNDED_CHANNEL.to_string()]
        );
        // The resilience crate sits on the serving hot path; any queues it
        // introduces must be bounded like the rest of the concurrent tree.
        assert_eq!(
            rules_hit("crates/resil/src/a.rs", src),
            vec![UNBOUNDED_CHANNEL.to_string()]
        );
        // The network event loop must never buffer unboundedly between
        // the socket and the admission queue.
        assert_eq!(
            rules_hit("crates/net/src/a.rs", src),
            vec![UNBOUNDED_CHANNEL.to_string()]
        );
        assert!(rules_hit("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "fn f() { let s = \"panic! == 0.0 unwrap()\"; /* x.unwrap() */ }\n";
        assert!(rules_hit("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn vendor_and_test_trees_exempt() {
        let src = "fn f() { x.unwrap(); }\n";
        assert!(rules_hit("vendor/rand/src/lib.rs", src).is_empty());
        assert!(rules_hit("crates/core/tests/it.rs", src).is_empty());
    }
}
