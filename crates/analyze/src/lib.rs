//! `tasq-analyze` — the workspace gatekeeper.
//!
//! Three analysis families run under one `tasq-analyze check` command:
//!
//! 1. **Source lints** ([`rules`]): a hand-rolled, string/comment-aware
//!    scanner ([`lexer`]) drives pluggable rules — panicking constructs
//!    outside tests, float `==`, unseeded RNG, wall-clock reads in the
//!    simulator, unbounded channels — with per-path allowlists and inline
//!    `// lint: allow(rule-id) — reason` waivers.
//! 2. **Semantic invariants** ([`invariants`]): generated job plans must
//!    pass [`scope_sim::validate_job`]; measured scaling curves and fitted
//!    power-law PCCs must pass [`tasq::validate::validate_curve`] /
//!    [`tasq::validate::validate_pcc`] (positivity, monotonicity,
//!    Amdahl-consistency).
//! 3. **Concurrency audits** ([`locks`], [`hb`]): a lock-acquisition-order
//!    extractor over the serving stack's sources fails on cyclic lock
//!    graphs, and a vector-clock happens-before checker replays
//!    synchronization logs from seeded simulator and server runs to prove
//!    the recorded executions race-free and deterministic.
//!
//! The binary exits nonzero when any deny diagnostic is produced, which is
//! what gates CI.

#![warn(missing_docs)]

pub mod hb;
pub mod invariants;
pub mod lexer;
pub mod locks;
pub mod report;
pub mod rules;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Advisory; never fails the check.
    Warn,
    /// Fails `tasq-analyze check` (and CI).
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Warn => write!(f, "warn"),
            Self::Deny => write!(f, "deny"),
        }
    }
}

/// One finding, with a `file:line:col` span when the source is a file.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The rule or pass that produced this finding.
    pub rule: String,
    /// Whether it fails the check.
    pub severity: Severity,
    /// Workspace-relative path, or a `dynamic/…` pseudo-path for findings
    /// from instrumented runs.
    pub path: String,
    /// 1-based line (0 for dynamic findings).
    pub line: usize,
    /// 1-based column (0 for dynamic findings).
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{}: {}:{}:{}: [{}] {}",
                self.severity, self.path, self.line, self.col, self.rule, self.message
            )
        } else {
            write!(f, "{}: {}: [{}] {}", self.severity, self.path, self.rule, self.message)
        }
    }
}

/// Aggregate result of a `check` run.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Source files linted.
    pub files_scanned: usize,
    /// Nested lock-acquisition edges observed.
    pub lock_edges: usize,
    /// Jobs validated in the dynamic invariant pass.
    pub jobs_validated: usize,
    /// Scaling curves / fitted PCCs audited.
    pub curves_audited: usize,
    /// Synchronization events replayed by the happens-before checker.
    pub hb_events: usize,
    /// Every finding, lint and dynamic alike.
    pub diagnostics: Vec<Diagnostic>,
}

impl CheckReport {
    /// `true` when no deny diagnostic was produced.
    pub fn ok(&self) -> bool {
        !self.diagnostics.iter().any(|d| d.severity == Severity::Deny)
    }
}

/// What `run_check` should do.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Workspace root (the directory holding `crates/`).
    pub root: PathBuf,
    /// Skip the dynamic passes (workload validation, PCC audit,
    /// happens-before replay); lint and lock analysis only.
    pub static_only: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        Self { root: PathBuf::from("."), static_only: false }
    }
}

/// Run every analysis pass and aggregate the findings.
pub fn run_check(opts: &CheckOptions) -> io::Result<CheckReport> {
    let mut report = CheckReport::default();

    // Pass 1: lints over every workspace source file. A missing `crates/`
    // is an error, not a vacuous pass — a typo'd --root must not go green.
    let crates_dir = opts.root.join("crates");
    if !crates_dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} is not a workspace root (no crates/ directory)", opts.root.display()),
        ));
    }
    let mut files = Vec::new();
    collect_rs_files(&crates_dir, &mut files)?;
    files.sort();
    for file in &files {
        let rel = relative_path(&opts.root, file);
        let source = fs::read_to_string(file)?;
        report.diagnostics.extend(rules::lint_source(&rel, &source));
        report.files_scanned += 1;
    }

    // Pass 2: lock-order audit over the concurrent serving stack.
    let mut graph = locks::LockGraph::default();
    for file in &files {
        let rel = relative_path(&opts.root, file);
        if rel.starts_with("crates/serve/src") {
            graph.add_file(&rel, &fs::read_to_string(file)?);
        }
    }
    report.lock_edges = graph.edges.len();
    if let Some(cycle) = graph.find_cycle() {
        report.diagnostics.push(Diagnostic {
            rule: "lock-order".into(),
            severity: Severity::Deny,
            path: "crates/serve/src".into(),
            line: 0,
            col: 0,
            message: format!(
                "cyclic lock acquisition order (potential deadlock): {}",
                cycle.join(" -> ")
            ),
        });
    }

    // Pass 3: dynamic invariants + happens-before replay.
    if !opts.static_only {
        invariants::run_dynamic_pass(&mut report);
    }
    Ok(report)
}

/// Recursively collect `.rs` files, skipping build output.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `root`-relative path with `/` separators (what the rules key on).
fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
