//! `tasq-analyze` — the workspace gatekeeper.
//!
//! Four analysis families run under one `tasq-analyze check` command:
//!
//! 1. **Source lints** ([`rules`]): a hand-rolled, string/comment-aware
//!    scanner ([`lexer`]) drives pluggable rules — panicking constructs
//!    outside tests, float `==`, unseeded RNG, wall-clock reads in the
//!    simulator, unbounded channels — with per-path allowlists and inline
//!    `// lint: allow(rule-id) — reason` waivers.
//! 2. **Dataflow passes** ([`passes`]): a recursive-descent parser
//!    ([`parser`]) builds per-function ASTs, a CFG builder ([`cfg`]) adds
//!    explicit `?`-error and panic edges, and a worklist solver
//!    ([`dataflow`]) runs the resource-leak, unsafe-boundary, and
//!    lock-discipline audits over the raw-syscall networking stack.
//! 3. **Semantic invariants** ([`invariants`]): generated job plans must
//!    pass [`scope_sim::validate_job`]; measured scaling curves and fitted
//!    power-law PCCs must pass [`tasq::validate::validate_curve`] /
//!    [`tasq::validate::validate_pcc`] (positivity, monotonicity,
//!    Amdahl-consistency).
//! 4. **Concurrency audits** ([`locks`], [`hb`]): a lock-acquisition-order
//!    extractor over the serving stack's sources fails on cyclic lock
//!    graphs, and a vector-clock happens-before checker replays
//!    synchronization logs from seeded simulator and server runs to prove
//!    the recorded executions race-free and deterministic.
//!
//! The binary exits nonzero when any deny diagnostic is produced, which is
//! what gates CI.

#![warn(missing_docs)]

pub mod cfg;
pub mod dataflow;
pub mod hb;
pub mod invariants;
pub mod lexer;
pub mod locks;
pub mod parser;
pub mod passes;
pub mod report;
pub mod rules;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Advisory; never fails the check.
    Warn,
    /// Fails `tasq-analyze check` (and CI).
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Warn => write!(f, "warn"),
            Self::Deny => write!(f, "deny"),
        }
    }
}

/// One finding, with a `file:line:col` span when the source is a file.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The rule or pass that produced this finding.
    pub rule: String,
    /// Whether it fails the check.
    pub severity: Severity,
    /// Workspace-relative path, or a `dynamic/…` pseudo-path for findings
    /// from instrumented runs.
    pub path: String,
    /// 1-based line (0 for dynamic findings).
    pub line: usize,
    /// 1-based column (0 for dynamic findings).
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{}: {}:{}:{}: [{}] {}",
                self.severity, self.path, self.line, self.col, self.rule, self.message
            )
        } else {
            write!(f, "{}: {}: [{}] {}", self.severity, self.path, self.rule, self.message)
        }
    }
}

/// Aggregate result of a `check` run.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Source files linted.
    pub files_scanned: usize,
    /// Nested lock-acquisition edges observed.
    pub lock_edges: usize,
    /// Jobs validated in the dynamic invariant pass.
    pub jobs_validated: usize,
    /// Scaling curves / fitted PCCs audited.
    pub curves_audited: usize,
    /// Synchronization events replayed by the happens-before checker.
    pub hb_events: usize,
    /// Functions the recursive-descent parser handled across the
    /// workspace (dataflow-pass phase only).
    pub functions_parsed: usize,
    /// Non-test functions the parser could not handle (each also gets a
    /// `parse-coverage` diagnostic).
    pub functions_unparsed: usize,
    /// Names of the dataflow passes that ran.
    pub passes: Vec<String>,
    /// Every finding, lint and dynamic alike.
    pub diagnostics: Vec<Diagnostic>,
}

impl CheckReport {
    /// `true` when no deny diagnostic was produced.
    pub fn ok(&self) -> bool {
        !self.diagnostics.iter().any(|d| d.severity == Severity::Deny)
    }
}

/// What `run_check` should do.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Workspace root (the directory holding `crates/`).
    pub root: PathBuf,
    /// Skip the dynamic passes (workload validation, PCC audit,
    /// happens-before replay); lint and lock analysis only.
    pub static_only: bool,
    /// Run a single analysis family instead of everything: `lints`,
    /// `lock-order`, or one of the dataflow pass names
    /// (`resource-leak`, `unsafe-boundary`, `lock-discipline`).
    pub pass: Option<String>,
}

impl Default for CheckOptions {
    fn default() -> Self {
        Self { root: PathBuf::from("."), static_only: false, pass: None }
    }
}

/// Run every analysis pass (or the one selected by `opts.pass`) and
/// aggregate the findings.
pub fn run_check(opts: &CheckOptions) -> io::Result<CheckReport> {
    let mut report = CheckReport::default();

    // Resolve the pass selection up front so a typo'd --pass errors
    // instead of silently running nothing.
    let (run_lints, run_locks, pass_names, run_dynamic): (bool, bool, Vec<&'static str>, bool) =
        match opts.pass.as_deref() {
            None => (true, true, passes::PASS_NAMES.to_vec(), true),
            Some("lints") => (true, false, Vec::new(), false),
            Some("lock-order") => (false, true, Vec::new(), false),
            Some(p) => match passes::PASS_NAMES.iter().copied().find(|n| *n == p) {
                Some(name) => (false, false, vec![name], false),
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!(
                            "unknown pass `{p}` (expected lints, lock-order, {})",
                            passes::PASS_NAMES.join(", ")
                        ),
                    ));
                }
            },
        };

    // A missing `crates/` is an error, not a vacuous pass — a typo'd
    // --root must not go green.
    let crates_dir = opts.root.join("crates");
    if !crates_dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} is not a workspace root (no crates/ directory)", opts.root.display()),
        ));
    }
    let mut files = Vec::new();
    collect_rs_files(&crates_dir, &mut files)?;
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for file in &files {
        sources.push((relative_path(&opts.root, file), fs::read_to_string(file)?));
    }
    report.files_scanned = sources.len();

    // Phase 1: line-oriented lints over every workspace source file.
    if run_lints {
        for (rel, source) in &sources {
            report.diagnostics.extend(rules::lint_source(rel, source));
        }
    }

    // Phase 2: parser → CFG → dataflow passes. Integration-test and
    // fixture trees are exempt, same as for the lints — they hold
    // planted defects on purpose.
    if !pass_names.is_empty() {
        report.passes = pass_names.iter().map(|s| s.to_string()).collect();
        for (rel, source) in &sources {
            if rules::path_is_exempt(rel) {
                continue;
            }
            let outcome = passes::analyze_file(rel, source, &pass_names);
            report.functions_parsed += outcome.functions_parsed;
            report.functions_unparsed += outcome.functions_unparsed;
            report.diagnostics.extend(outcome.diagnostics);
        }
    }

    // Phase 3: lock-order audit over the concurrent serving stack.
    if run_locks {
        let mut graph = locks::LockGraph::default();
        for (rel, source) in &sources {
            if rel.starts_with("crates/serve/src") {
                graph.add_file(rel, source);
            }
        }
        report.lock_edges = graph.edges.len();
        if let Some(cycle) = graph.find_cycle() {
            report.diagnostics.push(Diagnostic {
                rule: "lock-order".into(),
                severity: Severity::Deny,
                path: "crates/serve/src".into(),
                line: 0,
                col: 0,
                message: format!(
                    "cyclic lock acquisition order (potential deadlock): {}",
                    cycle.join(" -> ")
                ),
            });
        }
    }

    // Phase 4: dynamic invariants + happens-before replay.
    if run_dynamic && !opts.static_only {
        invariants::run_dynamic_pass(&mut report);
    }
    Ok(report)
}

/// Recursively collect `.rs` files, skipping build output.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `root`-relative path with `/` separators (what the rules key on).
fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
