//! Control-flow graphs over the [`crate::parser`] ASTs.
//!
//! Each function lowers to a graph of small nodes — bindings, effectful
//! expression evaluations, branches, scope ends — joined by edges that
//! record *how* control moves: straight-line `Seq`, a `Branch` decision,
//! the implicit `Err` early return a `?` performs, a `Panic` unwind from
//! `unwrap`/`expect`/panicking macros, and loop `Back` edges. `?` and
//! panic edges are what let the dataflow passes reason about error and
//! unwind paths, which is where resource leaks hide.
//!
//! Scope structure is made explicit: every block contributes a
//! [`NodeKind::ScopeEnd`] listing the bindings that die when the block
//! exits, and early exits (`return`/`break`/`continue`) synthesize a
//! `ScopeEnd` covering every scope they unwind. Lock guards release at
//! exactly these nodes.
//!
//! Closures are *not* inlined: inside their enclosing function they stay
//! opaque leaves (their `?`/panics do not unwind the encloser), and
//! [`build_all`] additionally lowers each closure body as its own
//! pseudo-function named `parent::{closure@line}`.

use crate::parser::{Block, Expr, Function, Span, Stmt};

/// Index of a node within its [`Cfg`].
pub type NodeId = usize;

/// What a CFG node does.
#[derive(Debug, Clone)]
pub enum NodeKind {
    /// Function entry.
    Entry,
    /// The single function exit (normal, `?`, and panic paths all land
    /// here).
    Exit,
    /// A no-op confluence point (block entry, branch join, loop head).
    Join,
    /// Evaluate `init` (when present) and bind `vars`. With `init`
    /// absent the values come from a preceding branch scrutinee
    /// (`if let` / `let … else` / `match`-style flows).
    Bind {
        /// Names bound here.
        vars: Vec<String>,
        /// Initializer evaluated in this node.
        init: Option<Expr>,
        /// Pattern constructor the binding destructured through
        /// (`Ok`/`Some`/`Err`/…), when the pattern had one. Lets passes
        /// bind success-arm payloads without claiming `Err(e)` received
        /// the acquired resource.
        ctor: Option<String>,
    },
    /// Evaluate an expression for its effects.
    Eval(Expr),
    /// Evaluate an expression whose value escapes to the caller — a
    /// `return`/`break` value or a tail expression in value position.
    /// Resources referenced here transfer ownership out.
    Ret(Expr),
    /// A control-flow decision. `cond` is absent for `loop`/`for` heads.
    Branch {
        /// The condition or scrutinee evaluated at this node.
        cond: Option<Expr>,
    },
    /// The listed bindings go out of scope (guards drop here).
    ScopeEnd(Vec<String>),
}

/// How control reaches the target node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Straight-line flow.
    Seq,
    /// One outcome of a [`NodeKind::Branch`].
    Branch,
    /// The early `return Err(…)` a `?` performs; always targets exit.
    Err,
    /// Unwind from `unwrap`/`expect`/panicking macros; targets exit.
    Panic,
    /// Loop back edge.
    Back,
}

impl EdgeKind {
    /// Short lowercase name used in renders.
    pub fn name(self) -> &'static str {
        match self {
            EdgeKind::Seq => "seq",
            EdgeKind::Branch => "branch",
            EdgeKind::Err => "err",
            EdgeKind::Panic => "panic",
            EdgeKind::Back => "back",
        }
    }
}

/// One CFG node.
#[derive(Debug, Clone)]
pub struct Node {
    /// What the node does.
    pub kind: NodeKind,
    /// Source position the node reports diagnostics at.
    pub span: Span,
}

/// One CFG edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Flow kind.
    pub kind: EdgeKind,
}

/// A function's control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Function name (closures: `parent::{closure@line}`).
    pub name: String,
    /// Span of the `fn` keyword (or closure opening pipe).
    pub span: Span,
    /// Whether the function sits in a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Parameter bindings (live from entry).
    pub params: Vec<String>,
    /// Nodes; `entry` and `exit` index into this.
    pub nodes: Vec<Node>,
    /// Edges.
    pub edges: Vec<Edge>,
    /// Entry node id (always 0).
    pub entry: NodeId,
    /// Exit node id (always 1).
    pub exit: NodeId,
}

impl Cfg {
    /// Outgoing edges of `n`.
    pub fn succs(&self, n: NodeId) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(move |e| e.from == n)
    }

    /// Incoming edges of `n`.
    pub fn preds(&self, n: NodeId) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(move |e| e.to == n)
    }

    /// A stable text rendering for golden tests and debugging: one line
    /// per node (`n3 bind fd = sys::accept4(listener)? @12:9`) followed
    /// by one line per edge (`n3 -seq-> n4`).
    pub fn render(&self) -> String {
        let mut out = format!("fn {}\n", self.name);
        for (i, n) in self.nodes.iter().enumerate() {
            let kind = match &n.kind {
                NodeKind::Entry => "entry".to_string(),
                NodeKind::Exit => "exit".to_string(),
                NodeKind::Join => "join".to_string(),
                NodeKind::Bind { vars, init, .. } => match init {
                    Some(e) => format!("bind {} = {}", vars.join(","), label(e)),
                    None => format!("bind {}", vars.join(",")),
                },
                NodeKind::Eval(e) => format!("eval {}", label(e)),
                NodeKind::Ret(e) => format!("ret {}", label(e)),
                NodeKind::Branch { cond } => match cond {
                    Some(e) => format!("branch {}", label(e)),
                    None => "branch".to_string(),
                },
                NodeKind::ScopeEnd(vars) => format!("scope-end {}", vars.join(",")),
            };
            out.push_str(&format!("n{i} {kind}\n"));
        }
        for e in &self.edges {
            out.push_str(&format!("n{} -{}-> n{}\n", e.from, e.kind.name(), e.to));
        }
        out
    }
}

/// A compact pseudo-source label for an expression (diagnostics and
/// renders; lossy on purpose).
pub fn label(e: &Expr) -> String {
    match e {
        Expr::Path { segs, .. } => segs.join("::"),
        Expr::Lit { .. } => "_".to_string(),
        Expr::Call { callee, args, .. } => {
            let a: Vec<String> = args.iter().map(label).collect();
            format!("{}({})", label(callee), a.join(", "))
        }
        Expr::MethodCall { recv, method, args, .. } => {
            let a: Vec<String> = args.iter().map(label).collect();
            format!("{}.{}({})", label(recv), method, a.join(", "))
        }
        Expr::Field { recv, name, .. } => format!("{}.{}", label(recv), name),
        Expr::Index { recv, .. } => format!("{}[..]", label(recv)),
        Expr::Unary { inner, .. } => label(inner),
        Expr::Binary { lhs, rhs, op, .. } => match rhs {
            Some(r) => format!("{} {} {}", label(lhs), op, label(r)),
            None => format!("{} {}", label(lhs), op),
        },
        Expr::Assign { lhs, rhs, .. } => format!("{} = {}", label(lhs), label(rhs)),
        Expr::Cast { inner, .. } => format!("{} as _", label(inner)),
        Expr::Try { inner, .. } => format!("{}?", label(inner)),
        Expr::BlockExpr(_) => "{..}".to_string(),
        Expr::Unsafe { .. } => "unsafe {..}".to_string(),
        Expr::If { .. } => "if(..)".to_string(),
        Expr::Match { scrut, .. } => format!("match {}", label(scrut)),
        Expr::Loop { .. } | Expr::While { .. } | Expr::For { .. } => "loop(..)".to_string(),
        Expr::Return { value, .. } => match value {
            Some(v) => format!("return {}", label(v)),
            None => "return".to_string(),
        },
        Expr::Break { .. } => "break".to_string(),
        Expr::Continue { .. } => "continue".to_string(),
        Expr::Closure { .. } => "|..| {..}".to_string(),
        Expr::MacroCall { name, .. } => format!("{name}!(..)"),
        Expr::StructLit { path, .. } => format!("{} {{..}}", path.join("::")),
        Expr::Tuple { items, .. } => {
            let a: Vec<String> = items.iter().map(label).collect();
            format!("({})", a.join(", "))
        }
        Expr::Array { .. } => "[..]".to_string(),
    }
}

/// Does evaluating this expression (not descending into closures)
/// involve a `?`?
fn has_try(e: &Expr) -> bool {
    let mut found = false;
    e.walk_pruned(&mut |x| {
        if matches!(x, Expr::Closure { .. }) {
            return false;
        }
        if matches!(x, Expr::Try { .. }) {
            found = true;
        }
        true
    });
    found
}

/// Macro names that unwind.
const PANIC_MACROS: [&str; 10] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// Does evaluating this expression (not descending into closures) hit a
/// potential panic site (`unwrap`/`expect`/panicking macro)?
fn has_panic(e: &Expr) -> bool {
    let mut found = false;
    e.walk_pruned(&mut |x| {
        if matches!(x, Expr::Closure { .. }) {
            return false;
        }
        match x {
            Expr::MethodCall { method, .. } if method == "unwrap" || method == "expect" => {
                found = true;
            }
            Expr::MacroCall { name, .. } if PANIC_MACROS.contains(&name.as_str()) => {
                found = true;
            }
            _ => {}
        }
        true
    });
    found
}

struct LoopCtx {
    label: Option<String>,
    head: NodeId,
    /// `scopes.len()` when the loop was entered; break/continue unwind
    /// every scope above this.
    scope_depth: usize,
    /// `ScopeEnd` nodes awaiting an edge to the loop's after-node.
    breaks: Vec<NodeId>,
}

/// A pending `Bind` for a block's head: `(vars, initializer, span,
/// pattern constructor)`.
type BindSpec = (Vec<String>, Option<Expr>, Span, Option<String>);

struct Builder {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    exit: NodeId,
    scopes: Vec<Vec<String>>,
    loops: Vec<LoopCtx>,
}

impl Builder {
    fn node(&mut self, kind: NodeKind, span: Span) -> NodeId {
        self.nodes.push(Node { kind, span });
        self.nodes.len() - 1
    }

    fn edge(&mut self, from: NodeId, to: NodeId, kind: EdgeKind) {
        self.edges.push(Edge { from, to, kind });
    }

    /// Attach `?`-error and panic edges for the expression evaluated at
    /// `n`.
    fn effects(&mut self, n: NodeId, e: &Expr) {
        if has_try(e) {
            self.edge(n, self.exit, EdgeKind::Err);
        }
        if has_panic(e) {
            self.edge(n, self.exit, EdgeKind::Panic);
        }
    }

    fn register(&mut self, vars: &[String]) {
        if let Some(scope) = self.scopes.last_mut() {
            scope.extend(vars.iter().cloned());
        }
    }

    fn flatten_scopes(&self, from: usize) -> Vec<String> {
        self.scopes[from..].iter().flatten().cloned().collect()
    }

    /// Lower a block. The block's first node (a `Bind` when `bind` is
    /// given, else a `Join`) is connected from `pred` via `first_edge`.
    /// `value` marks the block's tail expression as escaping to the
    /// caller.
    fn block(
        &mut self,
        b: &Block,
        pred: NodeId,
        first_edge: EdgeKind,
        bind: Option<BindSpec>,
        value: bool,
    ) -> Option<NodeId> {
        self.scopes.push(Vec::new());
        let first = match bind {
            Some((vars, init, span, ctor)) => {
                self.register(&vars);
                let n = self.node(NodeKind::Bind { vars, init: init.clone(), ctor }, span);
                if let Some(e) = &init {
                    self.effects(n, e);
                }
                n
            }
            None => self.node(NodeKind::Join, b.span),
        };
        self.edge(pred, first, first_edge);
        let mut cur = Some(first);
        let last = b.stmts.len().saturating_sub(1);
        for (i, stmt) in b.stmts.iter().enumerate() {
            let Some(c) = cur else { break };
            let tail = value && i == last && matches!(stmt, Stmt::Expr { semi: false, .. });
            cur = self.stmt(stmt, c, tail);
        }
        let scope = self.scopes.pop().unwrap_or_default();
        match cur {
            Some(c) if !scope.is_empty() => {
                let se = self.node(NodeKind::ScopeEnd(scope), b.span);
                self.edge(c, se, EdgeKind::Seq);
                Some(se)
            }
            other => other,
        }
    }

    fn stmt(&mut self, s: &Stmt, cur: NodeId, value: bool) -> Option<NodeId> {
        match s {
            Stmt::Let { vars, ctor, init, else_block, span } => match (init, else_block) {
                (Some(init), Some(els)) => {
                    // `let PAT = init else { diverge }` — the scrutinee
                    // is a branch: on the match path the pattern binds,
                    // on the refutation path the else block runs (and
                    // must diverge; a non-diverging else is left
                    // dangling rather than wired to the happy path).
                    let bnode =
                        self.node(NodeKind::Branch { cond: Some(init.clone()) }, init.span());
                    self.edge(cur, bnode, EdgeKind::Seq);
                    self.effects(bnode, init);
                    let _ = self.block(els, bnode, EdgeKind::Branch, None, false);
                    self.register(vars);
                    let bind = self.node(
                        NodeKind::Bind { vars: vars.clone(), init: None, ctor: ctor.clone() },
                        *span,
                    );
                    self.edge(bnode, bind, EdgeKind::Branch);
                    Some(bind)
                }
                (Some(init), None) if is_structured(init) => {
                    let end = self.expr(init, cur, false)?;
                    self.register(vars);
                    let bind = self.node(
                        NodeKind::Bind { vars: vars.clone(), init: None, ctor: ctor.clone() },
                        *span,
                    );
                    self.edge(end, bind, EdgeKind::Seq);
                    Some(bind)
                }
                (init, _) => {
                    self.register(vars);
                    let bind = self.node(
                        NodeKind::Bind {
                            vars: vars.clone(),
                            init: init.clone(),
                            ctor: ctor.clone(),
                        },
                        *span,
                    );
                    self.edge(cur, bind, EdgeKind::Seq);
                    if let Some(e) = init {
                        self.effects(bind, e);
                    }
                    Some(bind)
                }
            },
            Stmt::Expr { expr, .. } => self.expr(expr, cur, value),
        }
    }

    fn expr(&mut self, e: &Expr, cur: NodeId, value: bool) -> Option<NodeId> {
        match e {
            Expr::If { .. } => self.lower_if(e, cur, EdgeKind::Seq, value),
            Expr::Match { scrut, arms, span } => {
                let bnode =
                    self.node(NodeKind::Branch { cond: Some((**scrut).clone()) }, *span);
                self.edge(cur, bnode, EdgeKind::Seq);
                self.effects(bnode, scrut);
                let mut ends = Vec::new();
                for arm in arms {
                    self.scopes.push(arm.vars.clone());
                    let n = self.node(
                        NodeKind::Bind {
                            vars: arm.vars.clone(),
                            init: None,
                            ctor: arm.ctor.clone(),
                        },
                        arm.span,
                    );
                    self.edge(bnode, n, EdgeKind::Branch);
                    let mut acur = n;
                    if let Some(g) = &arm.guard {
                        let gn = self.node(NodeKind::Eval(g.clone()), g.span());
                        self.edge(acur, gn, EdgeKind::Seq);
                        self.effects(gn, g);
                        acur = gn;
                    }
                    let end = self.expr(&arm.body, acur, value);
                    let scope = self.scopes.pop().unwrap_or_default();
                    if let Some(c) = end {
                        if scope.is_empty() {
                            ends.push(c);
                        } else {
                            let se = self.node(NodeKind::ScopeEnd(scope), arm.span);
                            self.edge(c, se, EdgeKind::Seq);
                            ends.push(se);
                        }
                    }
                }
                if ends.is_empty() {
                    return None;
                }
                let join = self.node(NodeKind::Join, *span);
                for c in ends {
                    self.edge(c, join, EdgeKind::Seq);
                }
                Some(join)
            }
            Expr::Loop { label, body, span } => {
                let head = self.node(NodeKind::Join, *span);
                self.edge(cur, head, EdgeKind::Seq);
                self.loops.push(LoopCtx {
                    label: label.clone(),
                    head,
                    scope_depth: self.scopes.len(),
                    breaks: Vec::new(),
                });
                let end = self.block(body, head, EdgeKind::Seq, None, false);
                if let Some(c) = end {
                    self.edge(c, head, EdgeKind::Back);
                }
                // Pushes and pops on `self.loops` are balanced by
                // construction; an empty stack here means a builder bug,
                // and treating it as a break-less loop keeps the walk
                // total instead of panicking inside the analyzer.
                let ctx = self.loops.pop()?;
                if ctx.breaks.is_empty() {
                    // `loop` without `break` diverges.
                    return None;
                }
                let after = self.node(NodeKind::Join, *span);
                for b in ctx.breaks {
                    self.edge(b, after, EdgeKind::Seq);
                }
                Some(after)
            }
            Expr::While { label, cond, let_vars, let_ctor, body, span } => {
                let head = self.node(NodeKind::Branch { cond: Some((**cond).clone()) }, *span);
                self.edge(cur, head, EdgeKind::Seq);
                self.effects(head, cond);
                self.loops.push(LoopCtx {
                    label: label.clone(),
                    head,
                    scope_depth: self.scopes.len(),
                    breaks: Vec::new(),
                });
                let bind = if let_vars.is_empty() {
                    None
                } else {
                    Some((let_vars.clone(), None, *span, let_ctor.clone()))
                };
                let end = self.block(body, head, EdgeKind::Branch, bind, false);
                if let Some(c) = end {
                    self.edge(c, head, EdgeKind::Back);
                }
                let breaks = self.loops.pop().map(|c| c.breaks).unwrap_or_default();
                let after = self.node(NodeKind::Join, *span);
                self.edge(head, after, EdgeKind::Branch);
                for b in breaks {
                    self.edge(b, after, EdgeKind::Seq);
                }
                Some(after)
            }
            Expr::For { label, vars, iter, body, span } => {
                let it = self.node(NodeKind::Eval((**iter).clone()), iter.span());
                self.edge(cur, it, EdgeKind::Seq);
                self.effects(it, iter);
                let head = self.node(NodeKind::Branch { cond: None }, *span);
                self.edge(it, head, EdgeKind::Seq);
                self.loops.push(LoopCtx {
                    label: label.clone(),
                    head,
                    scope_depth: self.scopes.len(),
                    breaks: Vec::new(),
                });
                let bind = if vars.is_empty() {
                    None
                } else {
                    Some((vars.clone(), None, *span, None))
                };
                let end = self.block(body, head, EdgeKind::Branch, bind, false);
                if let Some(c) = end {
                    self.edge(c, head, EdgeKind::Back);
                }
                let breaks = self.loops.pop().map(|c| c.breaks).unwrap_or_default();
                let after = self.node(NodeKind::Join, *span);
                self.edge(head, after, EdgeKind::Branch);
                for b in breaks {
                    self.edge(b, after, EdgeKind::Seq);
                }
                Some(after)
            }
            Expr::BlockExpr(b) => self.block(b, cur, EdgeKind::Seq, None, value),
            Expr::Unsafe { block, .. } => self.block(block, cur, EdgeKind::Seq, None, value),
            Expr::Return { value: rv, span } => {
                let mut c = cur;
                if let Some(v) = rv {
                    let n = self.node(NodeKind::Ret((**v).clone()), v.span());
                    self.edge(c, n, EdgeKind::Seq);
                    self.effects(n, v);
                    c = n;
                }
                let kills = self.flatten_scopes(0);
                let se = self.node(NodeKind::ScopeEnd(kills), *span);
                self.edge(c, se, EdgeKind::Seq);
                self.edge(se, self.exit, EdgeKind::Seq);
                None
            }
            Expr::Break { label, value: bv, span } => {
                let mut c = cur;
                if let Some(v) = bv {
                    // Conservatively treat every break value as escaping
                    // — it becomes the loop's value, whose destination
                    // this lowering does not track.
                    let n = self.node(NodeKind::Ret((**v).clone()), v.span());
                    self.edge(c, n, EdgeKind::Seq);
                    self.effects(n, v);
                    c = n;
                }
                let Some(idx) = self.loop_target(label.as_deref()) else {
                    // Malformed break: treat as a function exit.
                    self.edge(c, self.exit, EdgeKind::Seq);
                    return None;
                };
                let kills = self.flatten_scopes(self.loops[idx].scope_depth);
                let se = self.node(NodeKind::ScopeEnd(kills), *span);
                self.edge(c, se, EdgeKind::Seq);
                self.loops[idx].breaks.push(se);
                None
            }
            Expr::Continue { label, span } => {
                let Some(idx) = self.loop_target(label.as_deref()) else {
                    self.edge(cur, self.exit, EdgeKind::Seq);
                    return None;
                };
                let kills = self.flatten_scopes(self.loops[idx].scope_depth);
                let head = self.loops[idx].head;
                let se = self.node(NodeKind::ScopeEnd(kills), *span);
                self.edge(cur, se, EdgeKind::Seq);
                self.edge(se, head, EdgeKind::Back);
                None
            }
            // Leaf: one Eval node; nested control flow inside stays
            // opaque (its calls are still visible to `walk`).
            other => {
                let kind = if value {
                    NodeKind::Ret(other.clone())
                } else {
                    NodeKind::Eval(other.clone())
                };
                let n = self.node(kind, other.span());
                self.edge(cur, n, EdgeKind::Seq);
                self.effects(n, other);
                Some(n)
            }
        }
    }

    fn lower_if(
        &mut self,
        e: &Expr,
        pred: NodeId,
        first_edge: EdgeKind,
        value: bool,
    ) -> Option<NodeId> {
        let Expr::If { cond, let_vars, let_ctor, then, els, span } = e else {
            return self.expr(e, pred, value);
        };
        let bnode = self.node(NodeKind::Branch { cond: Some((**cond).clone()) }, *span);
        self.edge(pred, bnode, first_edge);
        self.effects(bnode, cond);
        let bind = if let_vars.is_empty() {
            None
        } else {
            Some((let_vars.clone(), None, *span, let_ctor.clone()))
        };
        let then_end = self.block(then, bnode, EdgeKind::Branch, bind, value);
        let else_end = match els {
            None => Some(bnode),
            Some(boxed) => match &**boxed {
                Expr::If { .. } => self.lower_if(boxed, bnode, EdgeKind::Branch, value),
                Expr::BlockExpr(b) => self.block(b, bnode, EdgeKind::Branch, None, value),
                other => self.expr(other, bnode, value),
            },
        };
        let ends: Vec<NodeId> = [then_end, else_end].into_iter().flatten().collect();
        if ends.is_empty() {
            return None;
        }
        let join = self.node(NodeKind::Join, *span);
        for c in &ends {
            // The fall-through edge from the branch node (no else)
            // keeps its Branch kind.
            let kind = if *c == bnode { EdgeKind::Branch } else { EdgeKind::Seq };
            self.edge(*c, join, kind);
        }
        Some(join)
    }

    fn loop_target(&self, label: Option<&str>) -> Option<usize> {
        match label {
            None => self.loops.len().checked_sub(1),
            Some(l) => self
                .loops
                .iter()
                .rposition(|ctx| ctx.label.as_deref() == Some(l)),
        }
    }
}

fn is_structured(e: &Expr) -> bool {
    matches!(
        e,
        Expr::If { .. }
            | Expr::Match { .. }
            | Expr::Loop { .. }
            | Expr::While { .. }
            | Expr::For { .. }
            | Expr::BlockExpr(_)
            | Expr::Unsafe { .. }
    )
}

/// Lower one function to its CFG.
pub fn build(f: &Function) -> Cfg {
    let mut b = Builder {
        nodes: Vec::new(),
        edges: Vec::new(),
        exit: 0,
        scopes: Vec::new(),
        loops: Vec::new(),
    };
    let entry = b.node(NodeKind::Entry, f.span);
    let exit = b.node(NodeKind::Exit, f.span);
    b.exit = exit;
    b.scopes.push(f.params.clone());
    let end = b.block(&f.body, entry, EdgeKind::Seq, None, true);
    if let Some(c) = end {
        let params = b.scopes.pop().unwrap_or_default();
        if params.is_empty() {
            b.edge(c, exit, EdgeKind::Seq);
        } else {
            let se = b.node(NodeKind::ScopeEnd(params), f.body.span);
            b.edge(c, se, EdgeKind::Seq);
            b.edge(se, exit, EdgeKind::Seq);
        }
    }
    Cfg {
        name: f.name.clone(),
        span: f.span,
        in_test: f.in_test,
        params: f.params.clone(),
        nodes: b.nodes,
        edges: b.edges,
        entry,
        exit,
    }
}

/// Lower a function *and* every closure in it (each closure becomes its
/// own pseudo-function CFG named `parent::{closure@line}`).
pub fn build_all(f: &Function) -> Vec<Cfg> {
    let mut out = vec![build(f)];
    let mut closures: Vec<(Vec<String>, Expr, Span)> = Vec::new();
    for stmt in &f.body.stmts {
        let collect = &mut |e: &Expr| {
            if let Expr::Closure { params, body, span, .. } = e {
                closures.push((params.clone(), (**body).clone(), *span));
            }
        };
        match stmt {
            Stmt::Let { init, else_block, .. } => {
                if let Some(e) = init {
                    e.walk(collect);
                }
                if let Some(b) = else_block {
                    for s in &b.stmts {
                        if let Stmt::Expr { expr, .. } = s {
                            expr.walk(collect);
                        }
                    }
                }
            }
            Stmt::Expr { expr, .. } => expr.walk(collect),
        }
    }
    for (params, body, span) in closures {
        let block = match body {
            Expr::BlockExpr(b) => b,
            other => Block { stmts: vec![Stmt::Expr { expr: other, semi: false }], span },
        };
        let pseudo = Function {
            name: format!("{}::{{closure@{}}}", f.name, span.line),
            is_unsafe: false,
            span,
            params,
            in_test: f.in_test,
            body: block,
        };
        out.push(build(&pseudo));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use crate::parser::parse_file;

    fn cfg_of(src: &str) -> Cfg {
        let parsed = parse_file(&scan(src));
        assert!(parsed.unparsed.is_empty(), "unparsed: {:?}", parsed.unparsed);
        build(&parsed.functions[0])
    }

    #[test]
    fn straight_line_with_try_golden() {
        let cfg = cfg_of("fn f() -> io::Result<()> {\n    let fd = sys::epoll_create1()?;\n    sys::close(fd);\n    Ok(())\n}\n");
        let want = "\
fn f
n0 entry
n1 exit
n2 join
n3 bind fd = sys::epoll_create1()?
n4 eval sys::close(fd)
n5 ret Ok(())
n6 scope-end fd
n0 -seq-> n2
n2 -seq-> n3
n3 -err-> n1
n3 -seq-> n4
n4 -seq-> n5
n5 -seq-> n6
n6 -seq-> n1
";
        assert_eq!(cfg.render(), want);
    }

    #[test]
    fn try_gets_err_edge_to_exit() {
        let cfg = cfg_of("fn f() -> R {\n    let fd = sys::accept4(l)?;\n    work(fd)?;\n    Ok(fd)\n}\n");
        let err_edges: Vec<_> = cfg
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::Err)
            .collect();
        assert_eq!(err_edges.len(), 2);
        assert!(err_edges.iter().all(|e| e.to == cfg.exit));
    }

    #[test]
    fn unwrap_gets_panic_edge() {
        let cfg = cfg_of("fn f() {\n    let v = rx.recv().unwrap();\n    touch(v);\n}\n");
        assert!(cfg.edges.iter().any(|e| e.kind == EdgeKind::Panic && e.to == cfg.exit));
    }

    #[test]
    fn if_joins_both_arms() {
        let cfg = cfg_of("fn f(c: bool) {\n    if c { a(); } else { b(); }\n    done();\n}\n");
        let r = cfg.render();
        assert!(r.contains("branch c"), "{r}");
        assert!(r.contains("eval done()"), "{r}");
    }

    #[test]
    fn early_return_kills_scopes_to_exit() {
        let cfg = cfg_of("fn f(c: bool) {\n    let g = m.lock();\n    if c { return; }\n    use_it(&g);\n}\n");
        // The return's ScopeEnd must kill both g and the params.
        let found = cfg.nodes.iter().any(|n| {
            matches!(&n.kind, NodeKind::ScopeEnd(vars)
                if vars.contains(&"g".to_string()) && vars.contains(&"c".to_string()))
        });
        assert!(found, "{}", cfg.render());
    }

    #[test]
    fn loop_without_break_diverges() {
        let cfg = cfg_of("fn f() {\n    loop { tick(); }\n}\n");
        // No normal path to exit: only entry/exit and the loop cycle.
        assert!(
            !cfg.preds(cfg.exit).any(|e| e.kind == EdgeKind::Seq),
            "{}",
            cfg.render()
        );
        assert!(cfg.edges.iter().any(|e| e.kind == EdgeKind::Back));
    }

    #[test]
    fn labelled_continue_targets_outer_loop() {
        let src = "fn f() {\n    'outer: loop {\n        for x in items {\n            if bad(x) { continue 'outer; }\n        }\n        break;\n    }\n}\n";
        let cfg = cfg_of(src);
        // The continue's Back edge must land on the outer loop head,
        // which is a Join (loop) not the for's Branch head.
        let back_to_join = cfg.edges.iter().any(|e| {
            e.kind == EdgeKind::Back
                && matches!(cfg.nodes[e.to].kind, NodeKind::Join)
                && matches!(cfg.nodes[e.from].kind, NodeKind::ScopeEnd(_))
        });
        assert!(back_to_join, "{}", cfg.render());
    }

    #[test]
    fn while_let_binds_in_body_only() {
        let cfg = cfg_of("fn f(d: &D) {\n    while let Some(v) = d.pop() {\n        use_it(v);\n    }\n}\n");
        let r = cfg.render();
        assert!(r.contains("branch d.pop()"), "{r}");
        assert!(r.contains("bind v\n"), "{r}");
        assert!(r.contains("scope-end v"), "{r}");
    }

    #[test]
    fn let_else_branches_to_diverging_block() {
        let cfg =
            cfg_of("fn f(m: &M) {\n    loop {\n        let Some(s) = m.get() else { continue };\n        use_it(s);\n        break;\n    }\n}\n");
        let r = cfg.render();
        assert!(r.contains("branch m.get()"), "{r}");
        assert!(r.contains("bind s\n"), "{r}");
    }

    #[test]
    fn match_arms_bind_and_join() {
        let cfg = cfg_of("fn f(e: E) -> i32 {\n    match e {\n        E::A(n) => n,\n        E::B => 0,\n    }\n}\n");
        let r = cfg.render();
        assert!(r.contains("branch e"), "{r}");
        assert!(r.contains("bind n\n"), "{r}");
    }

    #[test]
    fn closures_lower_separately_and_stay_opaque_inline() {
        let src = "fn f() {\n    let h = spawn(move || { let fd = sys::epoll_create1()?; sys::close(fd); Ok(()) });\n    h.join().unwrap();\n}\n";
        let parsed = parse_file(&scan(src));
        let cfgs = build_all(&parsed.functions[0]);
        assert_eq!(cfgs.len(), 2, "fn + closure");
        // The parent CFG must not get an err edge from the closure's `?`.
        assert!(!cfgs[0].edges.iter().any(|e| e.kind == EdgeKind::Err));
        assert!(cfgs[1].name.contains("{closure@"));
        assert!(cfgs[1].edges.iter().any(|e| e.kind == EdgeKind::Err));
    }
}
