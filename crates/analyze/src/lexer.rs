//! A hand-rolled Rust source scanner for the lint engine.
//!
//! The scanner does not build a syntax tree; it produces, per source line,
//! the *code text* with comment bodies removed and string/char literal
//! contents blanked, plus two pieces of context the rules need:
//!
//! * whether the line sits inside a `#[cfg(test)]`-gated item, and
//! * which rules an inline `// lint: allow(rule-id) — reason` comment
//!   waives on that line.
//!
//! Blanking literal contents (rather than deleting the literal) keeps
//! column positions meaningful while guaranteeing that a `panic!` inside a
//! string, a raw string, or a comment can never trip a rule. Nested block
//! comments, raw strings with arbitrary `#` fences, byte strings, char
//! literals, and lifetimes are all handled.

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct ScannedLine {
    /// The line's code with comments stripped and literal contents
    /// blanked. Columns line up with the original source for every
    /// character outside a literal or comment.
    pub code: String,
    /// Whether the line is inside a `#[cfg(test)]` item body.
    pub in_test: bool,
    /// Rule ids waived on this line by inline allow directives. A
    /// directive on a comment-only line carries forward to the next line
    /// that holds code.
    pub allows: Vec<String>,
    /// Raw comment bodies that ended on this line (`//` text without the
    /// slashes, block-comment interiors). The parser-driven passes use
    /// these to find `SAFETY:` justifications and `# Safety` doc sections.
    pub comments: Vec<String>,
}

/// A fully scanned source file.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Lines in order; index 0 is source line 1.
    pub lines: Vec<ScannedLine>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Block comments nest in Rust; the payload is the nesting depth.
    BlockComment(u32),
    /// Inside `"…"`; the payload is whether the previous char was `\`.
    Str(bool),
    /// Inside `r##"…"##`; the payload is the number of `#` fences.
    RawStr(u32),
}

/// Scan a source file.
pub fn scan(source: &str) -> ScannedFile {
    let chars: Vec<char> = source.chars().collect();
    let mut lines: Vec<ScannedLine> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut line_comments: Vec<String> = Vec::new();
    let mut line_touched_test = false;

    let mut state = State::Code;
    let mut depth: i64 = 0;
    // Depth at which the current `#[cfg(test)]` item body opened; the
    // region ends when a `}` returns to it.
    let mut test_below: Option<i64> = None;
    // A `#[cfg(test)]` attribute was seen; the next `{` opens its body.
    let mut armed = false;

    let mut i = 0usize;
    while i <= chars.len() {
        let c = chars.get(i).copied();
        if c == Some('\n') || c.is_none() {
            if matches!(state, State::LineComment) {
                line_comments.push(std::mem::take(&mut comment));
                state = State::Code;
            }
            let in_test = line_touched_test || test_below.is_some();
            lines.push(ScannedLine {
                code: std::mem::take(&mut code),
                in_test,
                allows: parse_allows(&line_comments),
                comments: std::mem::take(&mut line_comments),
            });
            line_touched_test = test_below.is_some();
            if c.is_none() {
                break;
            }
            i += 1;
            continue;
        }
        let Some(c) = c else { break };
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    state = State::Str(false);
                    i += 1;
                } else if is_raw_str_start(&chars, i) {
                    let (fences, consumed) = raw_str_open(&chars, i);
                    for _ in 0..consumed {
                        code.push(' ');
                    }
                    code.push('"');
                    state = State::RawStr(fences);
                    i += consumed + 1;
                } else if c == '\'' {
                    // Distinguish char literals from lifetimes/labels: a
                    // literal is `'x'` or `'\…'`; anything else (`'a`,
                    // `'outer:`) is left in the code text untouched.
                    if next == Some('\\') {
                        code.push('\'');
                        // Skip the quote, the backslash, and the escaped
                        // character itself — `'\''` must not mistake the
                        // escaped quote for the closing one.
                        i += 3;
                        while let Some(&cc) = chars.get(i) {
                            i += 1;
                            if cc == '\'' {
                                break;
                            }
                        }
                        code.push('\'');
                    } else if next.is_some() && chars.get(i + 2).copied() == Some('\'') {
                        code.push('\'');
                        code.push('\'');
                        i += 3;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    if c == '{' {
                        if armed && test_below.is_none() {
                            test_below = Some(depth);
                            armed = false;
                            line_touched_test = true;
                        }
                        depth += 1;
                    } else if c == '}' {
                        depth -= 1;
                        if test_below == Some(depth) {
                            test_below = None;
                            line_touched_test = true;
                        }
                    }
                    code.push(c);
                    if code.ends_with("#[cfg(test)]") {
                        armed = true;
                    }
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(d) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(d + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    if d == 1 {
                        line_comments.push(std::mem::take(&mut comment));
                        state = State::Code;
                    } else {
                        state = State::BlockComment(d - 1);
                    }
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str(escaped) => {
                if escaped {
                    state = State::Str(false);
                } else if c == '\\' {
                    state = State::Str(true);
                } else if c == '"' {
                    code.push('"');
                    state = State::Code;
                }
                i += 1;
            }
            State::RawStr(fences) => {
                if c == '"' && closes_raw(&chars, i, fences) {
                    code.push('"');
                    i += 1 + fences as usize;
                    state = State::Code;
                } else {
                    i += 1;
                }
            }
        }
    }

    // Carry comment-only allow directives forward to the next code line.
    let mut pending: Vec<String> = Vec::new();
    for line in &mut lines {
        if line.code.trim().is_empty() {
            pending.append(&mut line.allows);
        } else {
            line.allows.append(&mut pending);
        }
    }
    ScannedFile { lines }
}

/// Does `chars[i..]` open a raw (or raw byte) string literal? Requires the
/// preceding char to not be part of an identifier, so `attr"…"` or
/// `hdr"…"` never misfire.
fn is_raw_str_start(chars: &[char], i: usize) -> bool {
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i;
    if chars.get(j).copied() == Some('b') {
        j += 1;
    }
    if chars.get(j).copied() != Some('r') {
        // A plain byte string `b"…"` is handled by the `"` arm; only the
        // `r`-prefixed forms need the fence scan.
        return false;
    }
    j += 1;
    while chars.get(j).copied() == Some('#') {
        j += 1;
    }
    chars.get(j).copied() == Some('"')
}

/// Number of `#` fences and chars consumed up to (not including) the
/// opening quote of a raw string starting at `i`.
fn raw_str_open(chars: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if chars.get(j).copied() == Some('b') {
        j += 1;
    }
    j += 1; // the `r`
    let mut fences = 0u32;
    while chars.get(j).copied() == Some('#') {
        fences += 1;
        j += 1;
    }
    (fences, j - i)
}

/// Does the `"` at `i` close a raw string with `fences` trailing `#`s?
fn closes_raw(chars: &[char], i: usize, fences: u32) -> bool {
    (1..=fences as usize).all(|k| chars.get(i + k).copied() == Some('#'))
}

/// Extract rule ids from `lint: allow(rule-a, rule-b)` directives in the
/// line's comments.
fn parse_allows(comments: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for comment in comments {
        let mut rest = comment.as_str();
        while let Some(pos) = rest.find("lint: allow(") {
            let after = &rest[pos + "lint: allow(".len()..];
            let Some(close) = after.find(')') else { break };
            for rule in after[..close].split(',') {
                let rule = rule.trim();
                if !rule.is_empty() {
                    out.push(rule.to_string());
                }
            }
            rest = &after[close..];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_stripped() {
        let src = "let x = \"panic!(boom)\"; // panic!\nlet y = 2; /* unwrap() */ let z = 3;\n";
        let f = scan(src);
        assert!(!f.lines[0].code.contains("panic"));
        assert!(f.lines[0].code.contains("let x = \"\";"));
        assert!(!f.lines[1].code.contains("unwrap"));
        assert!(f.lines[1].code.contains("let z = 3;"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = "let s = r#\"has \"quotes\" and unwrap()\"#; s.len();\n";
        let f = scan(src);
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("s.len()"));
    }

    #[test]
    fn multiline_strings_keep_line_count() {
        let src = "let s = \"line one\nline two unwrap()\nline three\";\nlet x = 1;\n";
        let f = scan(src);
        assert_eq!(f.lines.len(), 5); // 4 lines + trailing empty
        assert!(!f.lines[1].code.contains("unwrap"));
        assert!(f.lines[3].code.contains("let x = 1;"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment unwrap() */ let a = 1;\n";
        let f = scan(src);
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("let a = 1;"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { if x.is_empty() { '\"' } else { '\\n' } }\n";
        let f = scan(src);
        assert!(f.lines[0].code.contains("fn f<'a>"));
        // The quote char literal must not open a string.
        assert!(f.lines[0].code.contains("else"));
    }

    #[test]
    fn escaped_quote_char_literal_does_not_open_a_string() {
        // Regression: `'\''` used to step only past the backslash, so
        // the escaped quote read as the closing one and the real closer
        // opened a phantom string that swallowed the rest of the file.
        let src = "let q = '\\''; let after = value.len();\nlet next = 1;\n";
        let f = scan(src);
        assert!(f.lines[0].code.contains("let after = value.len();"), "{:?}", f.lines[0].code);
        assert!(f.lines[1].code.contains("let next = 1;"), "{:?}", f.lines[1].code);
        // Longer escapes (`'\n'`, `'\x7f'`, `'\u{1F600}'`) also close.
        let src = "let a = '\\x7f'; let b = '\\u{41}'; done();\n";
        let f = scan(src);
        assert!(f.lines[0].code.contains("done();"), "{:?}", f.lines[0].code);
    }

    #[test]
    fn cfg_test_region_is_tracked() {
        let src = "fn prod() { work(); }\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn prod2() {}\n";
        let f = scan(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test, "inside the test mod");
        assert!(!f.lines[5].in_test, "after the test mod closes");
    }

    #[test]
    fn allow_directives_attach_and_carry_forward() {
        let src = "// lint: allow(no-panic) — reason\nlet a = x.unwrap();\nlet b = y.unwrap(); // lint: allow(no-panic, float-eq)\nlet c = 1;\n";
        let f = scan(src);
        assert_eq!(f.lines[1].allows, vec!["no-panic"]);
        assert_eq!(f.lines[2].allows, vec!["no-panic", "float-eq"]);
        assert!(f.lines[3].allows.is_empty());
    }
}
