//! A small worklist dataflow framework over [`crate::cfg`] graphs.
//!
//! An [`Analysis`] supplies a boundary fact for the entry node, an
//! edge-sensitive transfer function, and a join. The solver iterates to
//! a fixed point with a FIFO worklist. Facts must form a finite lattice
//! under `join` (every pass here uses set-union over the function's
//! finitely many bindings, so termination is structural); a safety valve
//! caps iterations anyway so a non-monotone transfer can never hang the
//! analyzer.
//!
//! Transfer runs **per edge**, not per node: the same node can send
//! different facts down its `Seq` and `Err` edges. That is what lets the
//! resource-leak pass say "`let fd = sys::accept4(l)?` binds `fd` on the
//! success edge but *not* on the error edge".

use crate::cfg::{Cfg, Edge, NodeId};
use std::collections::VecDeque;

/// A forward dataflow analysis.
pub trait Analysis {
    /// The lattice element tracked per node.
    type Fact: Clone + PartialEq;

    /// Fact entering the CFG's entry node.
    fn boundary(&self, cfg: &Cfg) -> Self::Fact;

    /// Fact leaving `node` along `edge`, given the fact at the node's
    /// entry.
    fn transfer(&self, cfg: &Cfg, node: NodeId, edge: &Edge, fact: &Self::Fact) -> Self::Fact;

    /// Least upper bound of two facts.
    fn join(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact;
}

/// Solve to a fixed point. Returns the fact at each node's *entry*;
/// `None` marks nodes unreachable from entry.
pub fn solve<A: Analysis>(a: &A, cfg: &Cfg) -> Vec<Option<A::Fact>> {
    let n = cfg.nodes.len();
    let mut facts: Vec<Option<A::Fact>> = vec![None; n];
    facts[cfg.entry] = Some(a.boundary(cfg));
    let mut work: VecDeque<NodeId> = VecDeque::new();
    work.push_back(cfg.entry);
    // Monotone set-union facts converge in O(nodes × vars); the valve
    // only exists to bound a buggy analysis.
    let budget = n.saturating_mul(64) + 4096;
    let mut steps = 0usize;
    while let Some(u) = work.pop_front() {
        steps += 1;
        if steps > budget {
            break;
        }
        let Some(fu) = facts[u].clone() else { continue };
        let out_edges: Vec<Edge> = cfg.succs(u).copied().collect();
        for e in out_edges {
            let out = a.transfer(cfg, u, &e, &fu);
            let merged = match &facts[e.to] {
                None => out,
                Some(old) => a.join(old, &out),
            };
            if facts[e.to].as_ref() != Some(&merged) {
                facts[e.to] = Some(merged);
                work.push_back(e.to);
            }
        }
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{build, EdgeKind, NodeKind};
    use crate::lexer::scan;
    use crate::parser::parse_file;
    use std::collections::BTreeSet;

    /// Toy analysis: the set of names bound on some path to each node.
    struct Bound;

    impl Analysis for Bound {
        type Fact = BTreeSet<String>;

        fn boundary(&self, cfg: &Cfg) -> Self::Fact {
            cfg.params.iter().cloned().collect()
        }

        fn transfer(
            &self,
            cfg: &Cfg,
            node: NodeId,
            edge: &Edge,
            fact: &Self::Fact,
        ) -> Self::Fact {
            let mut out = fact.clone();
            if let NodeKind::Bind { vars, .. } = &cfg.nodes[node].kind {
                // `?` on the initializer means the binding never
                // happened on the error edge.
                if edge.kind != EdgeKind::Err && edge.kind != EdgeKind::Panic {
                    out.extend(vars.iter().cloned());
                }
            }
            out
        }

        fn join(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact {
            a.union(b).cloned().collect()
        }
    }

    fn facts_at_exit(src: &str) -> Vec<BTreeSet<String>> {
        let parsed = parse_file(&scan(src));
        assert!(parsed.unparsed.is_empty(), "{:?}", parsed.unparsed);
        let cfg = build(&parsed.functions[0]);
        let facts = solve(&Bound, &cfg);
        vec![facts[cfg.exit].clone().expect("exit reachable")]
    }

    #[test]
    fn bindings_flow_to_exit() {
        let exit = &facts_at_exit("fn f(a: u32) {\n    let b = g(a);\n    use_it(b);\n}\n")[0];
        assert!(exit.contains("a") && exit.contains("b"));
    }

    #[test]
    fn err_edge_does_not_bind() {
        // On the error path `fd` is never bound, so the exit fact (a
        // may-analysis union) still contains it only because the success
        // path reaches exit too; a function that diverges after binding
        // shows the distinction.
        let src = "fn f() -> R {\n    let fd = acquire()?;\n    loop { hold(fd); }\n}\n";
        let exit = &facts_at_exit(src)[0];
        // Exit is reachable only via the err edge, where fd is unbound.
        assert!(!exit.contains("fd"), "{exit:?}");
    }

    #[test]
    fn branches_join_with_union() {
        let src = "fn f(c: bool) {\n    if c {\n        let x = one();\n        use_it(x);\n    } else {\n        let y = two();\n        use_it(y);\n    }\n}\n";
        let exit = &facts_at_exit(src)[0];
        assert!(exit.contains("x") && exit.contains("y"));
    }

    #[test]
    fn loops_reach_fixed_point() {
        let src = "fn f(n: u32) {\n    for i in 0..n {\n        let v = step(i);\n        use_it(v);\n    }\n}\n";
        let exit = &facts_at_exit(src)[0];
        assert!(exit.contains("n"));
        assert!(exit.contains("v"), "loop-carried binding reaches exit via the loop-exit edge");
    }
}
