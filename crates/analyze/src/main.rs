//! `tasq-analyze` — workspace lint, invariant, and race-audit gate.
//!
//! ```text
//! tasq-analyze check [--root DIR] [--format human|json] [--out FILE] [--static-only]
//!                    [--pass lints|lock-order|resource-leak|unsafe-boundary|lock-discipline]
//! ```
//!
//! Exits 0 when every pass is clean, 1 when any deny diagnostic is
//! produced, 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;
use tasq_analyze::{report, run_check, CheckOptions};

const USAGE: &str = "usage: tasq-analyze check [--root DIR] [--format human|json] \
                     [--out FILE] [--static-only] [--pass NAME]\n  passes: lints, \
                     lock-order, resource-leak, unsafe-boundary, lock-discipline";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(ok) => {
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("tasq-analyze: {message}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let Some(command) = args.first() else {
        return Err("missing command".into());
    };
    if command != "check" {
        return Err(format!("unknown command `{command}`"));
    }
    let mut opts = CheckOptions::default();
    let mut format = "human".to_string();
    let mut out_path: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                opts.root = PathBuf::from(flag_value(args, &mut i)?);
            }
            "--format" => {
                format = flag_value(args, &mut i)?;
                if format != "human" && format != "json" {
                    return Err(format!("unknown format `{format}`"));
                }
            }
            "--out" => {
                out_path = Some(PathBuf::from(flag_value(args, &mut i)?));
            }
            "--static-only" => {
                opts.static_only = true;
            }
            "--pass" => {
                opts.pass = Some(flag_value(args, &mut i)?);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }

    let check = run_check(&opts).map_err(|e| format!("check failed: {e}"))?;
    let rendered = if format == "json" {
        report::to_json(&check)
    } else {
        report::to_human(&check)
    };
    if let Some(path) = out_path {
        std::fs::write(&path, &rendered)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        // Keep the terminal summary even when the full report goes to a
        // file — CI logs should show the verdict inline.
        print!("{}", report::to_human(&check));
    } else {
        print!("{rendered}");
    }
    Ok(check.ok())
}

fn flag_value(args: &[String], i: &mut usize) -> Result<String, String> {
    *i += 1;
    args.get(*i).cloned().ok_or_else(|| format!("{} needs a value", args[*i - 1]))
}
