//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! Hand-rolled because the build is offline; a single 256-entry table
//! computed at first use, byte-at-a-time. Matches the ubiquitous
//! zlib/`crc32fast` checksum so frames written here are inspectable with
//! standard tooling.

/// Lazily-built lookup table for the reflected IEEE polynomial.
fn table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 == 1 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    })
}

/// CRC-32 of `bytes` (IEEE, init `!0`, final xor `!0`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = !0u32;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ table[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn matches_known_vectors() {
        // Standard check value for the ASCII digits "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"checkpoint payload");
        let mut flipped = b"checkpoint payload".to_vec();
        flipped[3] ^= 1;
        assert_ne!(crc32(&flipped), base);
    }
}
