//! Seeded, deterministic chaos plans.
//!
//! A [`ChaosPlan`] is a pure function of `(preset, seed)`: every fault it
//! injects — the checkpoint after which the trainer "dies", the byte at
//! which a committed log is sheared, the request sequence numbers where
//! serving workers panic, the NN-tier fault window, the deadline storm —
//! is derived with the SplitMix64 finalizer, so a chaos run replays
//! bit-identically and its report can be asserted on in CI.

use serde::{Deserialize, Serialize};

/// SplitMix64-style finalizing mix of two words: a cheap, high-quality
/// pure hash for deriving per-site randomness without threading an RNG.
pub fn mix64(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a hash to a uniform f64 in `[0, 1)` (53 mantissa bits).
pub fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A burst of requests submitted with a near-zero deadline budget.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DeadlineStorm {
    /// First request sequence of the storm.
    pub start_seq: u64,
    /// Number of consecutive storm requests.
    pub requests: u64,
    /// Deadline budget, in microseconds, given to storm requests.
    pub budget_us: u64,
}

/// The full fault script for one chaos run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Preset name this plan was derived from.
    pub preset: String,
    /// Seed the derivations used.
    pub seed: u64,
    /// Training: simulate process death after this many checkpoint
    /// commits (counted across stages).
    pub kill_after_checkpoints: Option<u64>,
    /// Training: after the kill, shear this many bytes off the tail of
    /// the last-written checkpoint log (a kill-at-byte-k torn write).
    pub torn_tail_bytes: Option<u64>,
    /// Serving: request sequence numbers whose scoring worker panics.
    pub worker_panics: Vec<u64>,
    /// Serving: `[start, end)` request-sequence window where the NN tier
    /// fails (trips the circuit breaker onto the degradation ladder).
    pub nn_fault_window: Option<(u64, u64)>,
    /// Serving: deadline storm burst.
    pub deadline_storm: Option<DeadlineStorm>,
}

/// Preset names accepted by [`ChaosPlan::preset`], mildest first.
pub const PRESET_NAMES: [&str; 4] = ["none", "mild", "production", "adversarial"];

impl ChaosPlan {
    /// Derive the plan for a named preset. `None` for an unknown name.
    pub fn preset(name: &str, seed: u64) -> Option<Self> {
        let mut plan = Self {
            preset: name.to_string(),
            seed,
            kill_after_checkpoints: None,
            torn_tail_bytes: None,
            worker_panics: Vec::new(),
            nn_fault_window: None,
            deadline_storm: None,
        };
        match name {
            "none" => {}
            "mild" => {
                plan.kill_after_checkpoints = Some(2 + mix64(seed, 1) % 6);
                plan.worker_panics = vec![16 + mix64(seed, 2) % 32];
            }
            "production" => {
                plan.kill_after_checkpoints = Some(3 + mix64(seed, 1) % 8);
                plan.torn_tail_bytes = Some(1 + mix64(seed, 5) % 24);
                plan.worker_panics =
                    vec![16 + mix64(seed, 2) % 32, 200 + mix64(seed, 3) % 32];
                // Long enough to exhaust any failure threshold ≤ 8 even
                // with micro-batch dedup, then ends so half-open probes
                // succeed and the breaker closes within the run.
                let start = 64 + mix64(seed, 4) % 16;
                plan.nn_fault_window = Some((start, start + 48));
                plan.deadline_storm = Some(DeadlineStorm {
                    start_seq: 256 + mix64(seed, 6) % 16,
                    requests: 24,
                    budget_us: 0,
                });
            }
            "adversarial" => {
                plan.kill_after_checkpoints = Some(1 + mix64(seed, 1) % 12);
                plan.torn_tail_bytes = Some(1 + mix64(seed, 5) % 64);
                plan.worker_panics = (0..4)
                    .map(|i| 16 + i * 72 + mix64(seed, 16 + i) % 48)
                    .collect();
                let start = 48 + mix64(seed, 4) % 32;
                plan.nn_fault_window = Some((start, start + 64));
                plan.deadline_storm = Some(DeadlineStorm {
                    start_seq: 224 + mix64(seed, 6) % 32,
                    requests: 48,
                    budget_us: 0,
                });
            }
            _ => return None,
        }
        Some(plan)
    }

    /// Does the scoring worker panic on request `seq`?
    pub fn panics_at(&self, seq: u64) -> bool {
        self.worker_panics.contains(&seq)
    }

    /// Is the NN tier faulted for request `seq`?
    pub fn nn_faulted(&self, seq: u64) -> bool {
        self.nn_fault_window.is_some_and(|(a, b)| (a..b).contains(&seq))
    }

    /// Deadline budget override for request `seq` (storm members get the
    /// storm's budget, everyone else `None`).
    pub fn storm_budget_us(&self, seq: u64) -> Option<u64> {
        self.deadline_storm.and_then(|s| {
            (s.start_seq..s.start_seq + s.requests).contains(&seq).then_some(s.budget_us)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_pure_functions_of_preset_and_seed() {
        for name in PRESET_NAMES {
            let a = ChaosPlan::preset(name, 42).unwrap();
            let b = ChaosPlan::preset(name, 42).unwrap();
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "{name} not deterministic");
        }
        let a = ChaosPlan::preset("production", 1).unwrap();
        let b = ChaosPlan::preset("production", 2).unwrap();
        assert_ne!(format!("{a:?}"), format!("{b:?}"), "seed ignored");
        assert!(ChaosPlan::preset("bogus", 1).is_none());
    }

    #[test]
    fn production_faults_are_well_formed() {
        let plan = ChaosPlan::preset("production", 7).unwrap();
        let (a, b) = plan.nn_fault_window.unwrap();
        assert!(b - a >= 40, "window must outlast any sane failure threshold");
        assert!(plan.panics_at(plan.worker_panics[0]));
        assert!(!plan.panics_at(u64::MAX));
        assert!(plan.nn_faulted(a) && plan.nn_faulted(b - 1) && !plan.nn_faulted(b));
        let storm = plan.deadline_storm.unwrap();
        assert_eq!(plan.storm_budget_us(storm.start_seq), Some(storm.budget_us));
        assert_eq!(plan.storm_budget_us(storm.start_seq + storm.requests), None);
        // Faults are sequenced: panics bracket the window, storm comes last.
        assert!(plan.worker_panics[0] < a);
        assert!(storm.start_seq >= b);
    }

    #[test]
    fn mix64_spreads_and_unit_is_in_range() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            let h = mix64(42, i);
            assert!(seen.insert(h), "collision at {i}");
            let u = unit_f64(h);
            assert!((0.0..1.0).contains(&u));
        }
    }
}
