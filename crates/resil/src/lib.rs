//! # tasq-resil — crash consistency and fault tolerance for TASQ
//!
//! PR 1 made the *simulated* cluster fault-tolerant; this crate makes
//! the real tasq processes fault-tolerant. Four pieces:
//!
//! * [`frame`] — append-only CRC32-framed checkpoint logs with an
//!   fsync-per-append commit protocol. Recovery scans the valid prefix,
//!   types a torn tail ([`ResilError::TornTail`]) as distinct from
//!   post-commit corruption ([`ResilError::CrcMismatch`]), and trims it.
//! * [`snapshot`] — whole-file atomic snapshots (write-temp → fsync →
//!   rename → fsync-dir) for artifacts replaced wholesale, with the same
//!   CRC discipline on load.
//! * [`breaker`] — a tick-driven circuit breaker (closed → open →
//!   half-open → closed) that never reads the wall clock, so serving
//!   degradation replays deterministically under test.
//! * [`chaos`] — seeded [`ChaosPlan`]s: every injected fault is a pure
//!   function of `(preset, seed)`, which is what lets CI assert
//!   `resumed_bit_identical` and zero-silent-loss on real kill/recover
//!   runs.
//!
//! The crate deliberately depends only on `serde` and `tasq-obs` (for
//! the `resil_*` counters and commit/restore spans); core, serve,
//! scope-sim, and the CLI all layer on top of it.

#![warn(missing_docs)]

pub mod breaker;
pub mod chaos;
pub mod crc;
pub mod error;
pub mod frame;
pub mod metrics;
pub mod snapshot;
pub mod store;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use chaos::{ChaosPlan, DeadlineStorm, PRESET_NAMES};
pub use error::ResilError;
pub use frame::{Frame, FrameLog, Recovery};
pub use metrics::metrics;
pub use store::CheckpointStore;
