//! Whole-file atomic snapshots: write-temp → fsync → rename → fsync-dir.
//!
//! For artifacts that are replaced wholesale (model files, manifests'
//! compacted form) rather than appended to. The commit protocol
//! guarantees a reader never observes a half-written file: either the
//! old snapshot is intact or the new one is, and the CRC32 in the header
//! distinguishes a committed snapshot from post-commit corruption.
//!
//! ```text
//! file := magic "TQSN" | version u32 LE | len u32 LE | crc32(payload) u32 LE | payload
//! ```

use crate::crc::crc32;
use crate::error::ResilError;
use crate::frame::sync_parent_dir;
use crate::metrics::metrics;
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

/// File magic for atomic snapshots.
pub const SNAP_MAGIC: [u8; 4] = *b"TQSN";
/// Format version stamped after the magic.
pub const SNAP_VERSION: u32 = 1;
/// Header bytes before the payload: magic + version + len + crc.
pub const SNAP_HEADER_LEN: usize = 16;

/// Atomically commit `payload` to `path`.
///
/// The bytes are first written and fsynced to `<path>.tmp`, then renamed
/// over `path`, then the parent directory is fsynced — a crash at any
/// point leaves either the previous snapshot or the new one, never a
/// mixture.
pub fn commit(path: &Path, payload: &[u8]) -> Result<(), ResilError> {
    let _span = tasq_obs::span(
        tasq_obs::Level::Debug,
        "resil_snapshot_commit",
        &[("bytes", tasq_obs::FieldValue::U64(payload.len() as u64))],
    );
    let len = u32::try_from(payload.len()).map_err(|_| {
        ResilError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "snapshot payload exceeds u32 length",
        ))
    })?;
    let tmp = tmp_path(path);
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&SNAP_MAGIC)?;
        file.write_all(&SNAP_VERSION.to_le_bytes())?;
        file.write_all(&len.to_le_bytes())?;
        file.write_all(&crc32(payload).to_le_bytes())?;
        file.write_all(payload)?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)?;
    metrics().checkpoint_writes.inc();
    Ok(())
}

/// Load and verify a snapshot committed by [`commit`].
///
/// * Missing file → [`ResilError::NoCheckpoint`].
/// * Truncated header or payload → [`ResilError::TornTail`] (a tear —
///   though under the atomic commit protocol this indicates tampering
///   with the committed file, not a crash).
/// * Wrong magic/version → [`ResilError::BadMagic`]; CRC failure →
///   [`ResilError::CrcMismatch`]. Both are refusals, never a partial load.
pub fn load(path: &Path) -> Result<Vec<u8>, ResilError> {
    let _span = tasq_obs::span(tasq_obs::Level::Debug, "resil_snapshot_restore", &[]);
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
            return Err(ResilError::NoCheckpoint)
        }
        Err(err) => return Err(ResilError::Io(err)),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    let payload = load_bytes(&bytes)?;
    metrics().recoveries.inc();
    Ok(payload)
}

/// [`load`] over an in-memory image (exposed for torn-write fuzzing).
pub fn load_bytes(bytes: &[u8]) -> Result<Vec<u8>, ResilError> {
    if bytes.len() < 4 {
        return Err(torn(0, bytes.len()));
    }
    if bytes[0..4] != SNAP_MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(&bytes[0..4]);
        return Err(ResilError::BadMagic { found });
    }
    if bytes.len() < SNAP_HEADER_LEN {
        return Err(torn(4, bytes.len()));
    }
    let mut version = [0u8; 4];
    version.copy_from_slice(&bytes[4..8]);
    if u32::from_le_bytes(version) != SNAP_VERSION {
        return Err(ResilError::BadMagic { found: version });
    }
    let mut len4 = [0u8; 4];
    len4.copy_from_slice(&bytes[8..12]);
    let len = u32::from_le_bytes(len4) as usize;
    let mut crc4 = [0u8; 4];
    crc4.copy_from_slice(&bytes[12..16]);
    let stored = u32::from_le_bytes(crc4);
    let payload_end = SNAP_HEADER_LEN + len;
    if bytes.len() < payload_end {
        return Err(torn(SNAP_HEADER_LEN as u64, bytes.len()));
    }
    let payload = &bytes[SNAP_HEADER_LEN..payload_end];
    let computed = crc32(payload);
    if computed != stored {
        return Err(ResilError::CrcMismatch { offset: SNAP_HEADER_LEN as u64, stored, computed });
    }
    Ok(payload.to_vec())
}

fn torn(offset: u64, _len: usize) -> ResilError {
    metrics().torn_detected.inc();
    ResilError::TornTail { offset, recovered_frames: 0 }
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tasq-resil-snap-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn commit_then_load_roundtrip() {
        let path = tmp("roundtrip.snap");
        commit(&path, b"model weights").unwrap();
        assert_eq!(load(&path).unwrap(), b"model weights");
        // Re-commit replaces atomically.
        commit(&path, b"newer weights").unwrap();
        assert_eq!(load(&path).unwrap(), b"newer weights");
        assert!(!tmp_path(&path).exists());
    }

    #[test]
    fn missing_snapshot_is_typed() {
        let err = load(Path::new("/nonexistent/x.snap")).unwrap_err();
        assert!(matches!(err, ResilError::NoCheckpoint));
    }

    #[test]
    fn corrupt_snapshot_is_refused() {
        let path = tmp("corrupt.snap");
        commit(&path, b"pristine bytes").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        let err = load_bytes(&bytes).unwrap_err();
        assert!(matches!(err, ResilError::CrcMismatch { .. }));
    }

    #[test]
    fn truncation_at_every_offset_is_typed() {
        let path = tmp("fuzz.snap");
        commit(&path, b"0123456789abcdef0123456789").unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            let err = load_bytes(&full[..cut]).unwrap_err();
            assert!(
                err.is_torn() || err.is_corrupt(),
                "cut at {cut}: unexpected {err:?}"
            );
        }
        assert!(load_bytes(&full).is_ok());
    }
}
