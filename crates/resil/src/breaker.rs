//! Tick-driven circuit breaker (closed → open → half-open → closed).
//!
//! Deliberately clockless: "time" is whatever monotone counter the
//! caller already has (request sequence numbers in the scoring server,
//! event counts in tests), so breaker behaviour replays bit-identically
//! under the chaos harness. The state machine is the classic one:
//!
//! * **Closed** — traffic flows; `failure_threshold` *consecutive*
//!   failures trip it open.
//! * **Open** — traffic is refused until `cooldown_ticks` have elapsed
//!   since the trip, then the breaker moves to half-open.
//! * **Half-open** — traffic is allowed as probes; `probe_successes`
//!   consecutive successes close the breaker, any failure re-trips it.

use serde::{Deserialize, Serialize};

/// Breaker tuning.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive failures (while closed) that trip the breaker.
    pub failure_threshold: u32,
    /// Ticks to hold the breaker open before probing.
    pub cooldown_ticks: u64,
    /// Consecutive half-open successes required to close.
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self { failure_threshold: 5, cooldown_ticks: 32, probe_successes: 2 }
    }
}

/// Breaker position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Traffic flows normally.
    Closed,
    /// Traffic is refused; cooling down.
    Open,
    /// Probing: traffic allowed, watching the outcomes.
    HalfOpen,
}

/// The tick-driven circuit breaker.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    half_open_successes: u32,
    opened_at: u64,
    trips: u64,
    recoveries: u64,
}

impl CircuitBreaker {
    /// New breaker in the closed state.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            half_open_successes: 0,
            opened_at: 0,
            trips: 0,
            recoveries: 0,
        }
    }

    /// Should the protected operation run at `tick`? Advances open →
    /// half-open once the cooldown has elapsed.
    pub fn allow(&mut self, tick: u64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if tick.saturating_sub(self.opened_at) >= self.config.cooldown_ticks {
                    self.state = BreakerState::HalfOpen;
                    self.half_open_successes = 0;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record the outcome of an allowed operation.
    pub fn record(&mut self, tick: u64, success: bool) {
        if success {
            self.record_success();
        } else {
            self.record_failure(tick);
        }
    }

    fn record_success(&mut self) {
        match self.state {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.half_open_successes += 1;
                if self.half_open_successes >= self.config.probe_successes {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                    self.recoveries += 1;
                }
            }
            BreakerState::Open => {}
        }
    }

    fn record_failure(&mut self, tick: u64) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trip(tick);
                }
            }
            // A half-open probe failure re-trips immediately.
            BreakerState::HalfOpen => self.trip(tick),
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, tick: u64) {
        self.state = BreakerState::Open;
        self.opened_at = tick;
        self.consecutive_failures = 0;
        self.half_open_successes = 0;
        self.trips += 1;
    }

    /// Current position.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Times a half-open probe run closed the breaker.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown_ticks: 10,
            probe_successes: 2,
        })
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let mut b = breaker();
        b.record(1, false);
        b.record(2, false);
        b.record(3, true); // resets the streak
        b.record(4, false);
        b.record(5, false);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record(6, false);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn open_refuses_until_cooldown_then_probes() {
        let mut b = breaker();
        for t in 0..3 {
            b.record(t, false);
        }
        assert!(!b.allow(5), "still cooling down");
        assert!(b.allow(12), "cooldown elapsed: half-open probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record(12, true);
        assert_eq!(b.state(), BreakerState::HalfOpen, "one probe is not enough");
        b.record(13, true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.recoveries(), 1);
    }

    #[test]
    fn half_open_failure_retrips() {
        let mut b = breaker();
        for t in 0..3 {
            b.record(t, false); // trips at tick 2
        }
        assert!(b.allow(12));
        b.record(12, false);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        assert!(!b.allow(15));
        assert!(b.allow(22));
    }

    #[test]
    fn tick_driven_replay_is_deterministic() {
        // The same outcome/tick script always lands in the same state.
        let script: Vec<(u64, bool)> =
            (0..40).map(|t| (t, t % 7 != 0 && t % 5 != 0)).collect();
        let run = |mut b: CircuitBreaker| {
            let mut states = Vec::new();
            for &(t, ok) in &script {
                if b.allow(t) {
                    b.record(t, ok);
                }
                states.push(b.state());
            }
            (states, b.trips(), b.recoveries())
        };
        assert_eq!(run(breaker()), run(breaker()));
    }
}
