//! Typed failure taxonomy for the resilience layer.
//!
//! Every recovery path in the workspace branches on these variants, so
//! the distinctions are load-bearing: a [`ResilError::TornTail`] means
//! "the process died mid-append and the valid prefix is trustworthy"
//! (recover from the previous frame), while [`ResilError::CrcMismatch`]
//! means "bytes changed after commit" (refuse the artifact entirely).

use std::fmt;

/// Errors surfaced by checkpoint persistence and recovery.
#[derive(Debug)]
pub enum ResilError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file does not start with the expected magic, or a frame
    /// header inside it is structurally impossible (e.g. a length that
    /// overflows the file by more than a truncation could explain).
    BadMagic {
        /// What was found at the header position.
        found: [u8; 4],
    },
    /// The file ends mid-frame: a header or payload was cut short.
    ///
    /// This is the expected signature of a crash during an append; the
    /// frames before the tear are intact and safe to recover from.
    TornTail {
        /// Byte offset where the incomplete frame starts.
        offset: u64,
        /// Complete frames recovered before the tear.
        recovered_frames: usize,
    },
    /// A structurally complete frame failed its CRC32 check: the bytes
    /// were corrupted *after* commit, so nothing past this point can be
    /// trusted.
    CrcMismatch {
        /// Byte offset of the corrupt frame.
        offset: u64,
        /// CRC stored in the frame header.
        stored: u32,
        /// CRC computed over the payload as read.
        computed: u32,
    },
    /// No checkpoint exists (fresh start, not a failure of recovery).
    NoCheckpoint,
    /// A recovered payload failed to decode into the expected type.
    Decode {
        /// What was being decoded.
        context: &'static str,
    },
}

impl fmt::Display for ResilError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResilError::Io(err) => write!(f, "checkpoint i/o failed: {err}"),
            ResilError::BadMagic { found } => {
                write!(f, "not a tasq checkpoint (magic {found:02x?})")
            }
            ResilError::TornTail { offset, recovered_frames } => write!(
                f,
                "torn tail at byte {offset}: append interrupted; \
                 {recovered_frames} intact frame(s) precede it"
            ),
            ResilError::CrcMismatch { offset, stored, computed } => write!(
                f,
                "crc mismatch at byte {offset}: stored {stored:#010x}, \
                 computed {computed:#010x} — refusing corrupt frame"
            ),
            ResilError::NoCheckpoint => write!(f, "no checkpoint present"),
            ResilError::Decode { context } => {
                write!(f, "recovered payload failed to decode as {context}")
            }
        }
    }
}

impl std::error::Error for ResilError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResilError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ResilError {
    fn from(err: std::io::Error) -> Self {
        ResilError::Io(err)
    }
}

impl ResilError {
    /// True when the error signature is a mid-append interruption whose
    /// valid prefix remains trustworthy (recovery may fall back to the
    /// previous good frame).
    pub fn is_torn(&self) -> bool {
        matches!(self, ResilError::TornTail { .. })
    }

    /// True when the artifact must be refused outright (post-commit
    /// corruption or a foreign file).
    pub fn is_corrupt(&self) -> bool {
        matches!(self, ResilError::CrcMismatch { .. } | ResilError::BadMagic { .. })
    }
}
