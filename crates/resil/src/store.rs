//! Directory of named per-stage checkpoint logs.
//!
//! A [`CheckpointStore`] maps stage names (`"flight"`, `"gbdt"`, …) to
//! [`FrameLog`] files under one directory, caching open writers so
//! appends after the first are O(1). Recovery is per-stage: each log's
//! valid prefix is scanned once at first touch, torn tails are trimmed
//! and counted, and the caller resumes from the last committed frame.

use crate::error::ResilError;
use crate::frame::{recover, FrameLog, Recovery};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A directory of named append-only checkpoint logs.
pub struct CheckpointStore {
    dir: PathBuf,
    logs: Mutex<HashMap<String, FrameLog>>,
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, ResilError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir, logs: Mutex::new(HashMap::new()) })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of a stage's log file.
    pub fn stage_path(&self, stage: &str) -> PathBuf {
        self.dir.join(format!("{stage}.ckpt"))
    }

    /// Durably append one checkpoint frame to `stage`; returns its
    /// sequence number.
    pub fn append(&self, stage: &str, payload: &[u8]) -> Result<u64, ResilError> {
        let _span = tasq_obs::span(
            tasq_obs::Level::Debug,
            "resil_checkpoint_commit",
            &[("bytes", tasq_obs::FieldValue::U64(payload.len() as u64))],
        );
        let mut logs = self.logs.lock().unwrap_or_else(|e| e.into_inner());
        let log = match logs.get_mut(stage) {
            Some(log) => log,
            None => {
                let (log, _) = FrameLog::open_or_create(self.stage_path(stage))?;
                logs.entry(stage.to_string()).or_insert(log)
            }
        };
        log.append(payload)
    }

    /// Recover a stage's valid frame prefix (trimming any torn tail and
    /// leaving the log ready for appends that extend it).
    pub fn recover_stage(&self, stage: &str) -> Result<Recovery, ResilError> {
        let _span = tasq_obs::span(tasq_obs::Level::Debug, "resil_checkpoint_restore", &[]);
        let mut logs = self.logs.lock().unwrap_or_else(|e| e.into_inner());
        let (log, recovery) = FrameLog::open_or_create(self.stage_path(stage))?;
        logs.insert(stage.to_string(), log);
        Ok(recovery)
    }

    /// Read-only scan of a stage's committed frames (no trimming, no
    /// writer cached). [`ResilError::NoCheckpoint`] when the log is
    /// absent.
    pub fn scan(&self, stage: &str) -> Result<Recovery, ResilError> {
        recover(&self.stage_path(stage))
    }

    /// Number of committed frames in a stage (0 when the log is absent).
    pub fn committed(&self, stage: &str) -> Result<usize, ResilError> {
        match self.scan(stage) {
            Ok(recovery) => Ok(recovery.frames.len()),
            Err(ResilError::NoCheckpoint) => Ok(0),
            Err(err) => Err(err),
        }
    }

    /// Delete every stage log (used to start a run from scratch).
    pub fn reset(&self) -> Result<(), ResilError> {
        let mut logs = self.logs.lock().unwrap_or_else(|e| e.into_inner());
        logs.clear();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let is_ckpt = path.extension().is_some_and(|e| e == "ckpt");
            if is_ckpt {
                std::fs::remove_file(&path)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(name: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join("tasq-resil-store-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::open(dir).unwrap()
    }

    #[test]
    fn stages_are_independent() {
        let store = store("independent");
        store.append("flight", b"chunk-0").unwrap();
        store.append("gbdt", b"round-0").unwrap();
        store.append("flight", b"chunk-1").unwrap();
        assert_eq!(store.committed("flight").unwrap(), 2);
        assert_eq!(store.committed("gbdt").unwrap(), 1);
        assert_eq!(store.committed("nn").unwrap(), 0);
    }

    #[test]
    fn recover_resumes_appends() {
        let dir = std::env::temp_dir().join("tasq-resil-store-tests").join("resume");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = CheckpointStore::open(&dir).unwrap();
            store.append("stage", b"one").unwrap();
        }
        let store = CheckpointStore::open(&dir).unwrap();
        let recovery = store.recover_stage("stage").unwrap();
        assert_eq!(recovery.frames.len(), 1);
        store.append("stage", b"two").unwrap();
        assert_eq!(store.committed("stage").unwrap(), 2);
    }

    #[test]
    fn reset_clears_all_stages() {
        let store = store("reset");
        store.append("a", b"x").unwrap();
        store.append("b", b"y").unwrap();
        store.reset().unwrap();
        assert_eq!(store.committed("a").unwrap(), 0);
        assert_eq!(store.committed("b").unwrap(), 0);
    }
}
