//! Always-on resilience counters, registered in the global
//! [`tasq_obs::Registry`] on first touch so every binary that links this
//! crate exposes them without wiring.

use tasq_obs::Counter;

/// Handles to the `resil_*` counters.
pub struct ResilMetrics {
    /// Checkpoint frames and snapshots durably committed.
    pub checkpoint_writes: Counter,
    /// Successful recoveries (a log or snapshot read back and accepted).
    pub recoveries: Counter,
    /// Torn tails detected and typed during recovery.
    pub torn_detected: Counter,
}

/// Global `resil_*` counters (idempotent registration).
pub fn metrics() -> &'static ResilMetrics {
    static METRICS: std::sync::OnceLock<ResilMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let r = tasq_obs::Registry::global();
        ResilMetrics {
            checkpoint_writes: r
                .counter("resil_checkpoint_writes", "checkpoint frames durably committed"),
            recoveries: r.counter("resil_recoveries", "checkpoints recovered and accepted"),
            torn_detected: r
                .counter("resil_torn_detected", "torn checkpoint tails detected on recovery"),
        }
    })
}
