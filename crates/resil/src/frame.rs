//! Append-only CRC32-framed checkpoint log.
//!
//! ## On-disk format
//!
//! ```text
//! file   := magic "TQRL" | version u32 LE | frame*
//! frame  := seq u64 LE | len u32 LE | crc32(payload) u32 LE | payload
//! ```
//!
//! Every append writes one frame and fsyncs before returning, so the
//! prefix of complete frames is always crash-consistent: a process death
//! mid-append leaves a *torn tail* (structurally incomplete final frame)
//! that recovery detects, types as [`ResilError::TornTail`], and trims —
//! the preceding frames remain trustworthy. A structurally complete
//! frame whose CRC does not match is a different animal entirely
//! (post-commit corruption) and recovery refuses the log from that point
//! with [`ResilError::CrcMismatch`].

use crate::error::ResilError;
use crate::{crc::crc32, metrics::metrics};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File magic for framed checkpoint logs.
pub const LOG_MAGIC: [u8; 4] = *b"TQRL";
/// Format version stamped after the magic.
pub const LOG_VERSION: u32 = 1;
/// Bytes before the first frame: magic + version.
pub const LOG_HEADER_LEN: u64 = 8;
/// Bytes in a frame header: seq + len + crc.
pub const FRAME_HEADER_LEN: u64 = 16;

/// One recovered frame.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Zero-based append sequence number.
    pub seq: u64,
    /// The committed payload bytes.
    pub payload: Vec<u8>,
}

/// Outcome of scanning a log: the valid frame prefix plus, when the file
/// ends mid-frame, the typed tear that recovery trimmed.
#[derive(Debug)]
pub struct Recovery {
    /// Complete, CRC-verified frames in append order.
    pub frames: Vec<Frame>,
    /// The torn tail, when the file ended mid-append.
    pub torn: Option<ResilError>,
    /// Byte length of the valid prefix (header + complete frames).
    pub valid_len: u64,
}

impl Recovery {
    /// The last durably committed frame, if any.
    pub fn last(&self) -> Option<&Frame> {
        self.frames.last()
    }
}

/// Writer over an append-only framed log.
pub struct FrameLog {
    path: PathBuf,
    file: File,
    next_seq: u64,
}

impl FrameLog {
    /// Create a fresh log (truncating any existing file), committing the
    /// header durably before returning.
    pub fn create(path: impl Into<PathBuf>) -> Result<Self, ResilError> {
        let path = path.into();
        let mut file =
            OpenOptions::new().create(true).write(true).truncate(true).open(&path)?;
        file.write_all(&LOG_MAGIC)?;
        file.write_all(&LOG_VERSION.to_le_bytes())?;
        file.sync_data()?;
        sync_parent_dir(&path)?;
        Ok(Self { path, file, next_seq: 0 })
    }

    /// Open an existing log for appending, first recovering its valid
    /// prefix and trimming any torn tail. Creates the log when absent.
    ///
    /// Returns the recovery outcome alongside the writer so callers can
    /// resume from the last committed frame.
    pub fn open_or_create(path: impl Into<PathBuf>) -> Result<(Self, Recovery), ResilError> {
        let path = path.into();
        if !path.exists() {
            let log = Self::create(path)?;
            return Ok((log, Recovery { frames: Vec::new(), torn: None, valid_len: LOG_HEADER_LEN }));
        }
        let recovery = recover(&path)?;
        if recovery.torn.is_some() {
            metrics().torn_detected.inc();
        }
        if recovery.valid_len < LOG_HEADER_LEN {
            // The tear landed inside the file header itself: nothing was
            // ever committed, so start the log over from scratch.
            let log = Self::create(path)?;
            metrics().recoveries.inc();
            return Ok((log, recovery));
        }
        let file = OpenOptions::new().write(true).open(&path)?;
        // Trim the torn tail so new appends extend the valid prefix.
        file.set_len(recovery.valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        let next_seq = recovery.frames.len() as u64;
        metrics().recoveries.inc();
        Ok((Self { path, file, next_seq }, recovery))
    }

    /// Durably append one frame; returns its sequence number.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, ResilError> {
        let seq = self.next_seq;
        let len = u32::try_from(payload.len()).map_err(|_| {
            ResilError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "frame payload exceeds u32 length",
            ))
        })?;
        let crc = crc32(payload);
        let mut buf = Vec::with_capacity(FRAME_HEADER_LEN as usize + payload.len());
        buf.extend_from_slice(&seq.to_le_bytes());
        buf.extend_from_slice(&len.to_le_bytes());
        buf.extend_from_slice(&crc.to_le_bytes());
        buf.extend_from_slice(payload);
        self.file.write_all(&buf)?;
        self.file.sync_data()?;
        self.next_seq = seq + 1;
        metrics().checkpoint_writes.inc();
        Ok(seq)
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Sequence the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

/// Scan a log file, returning its valid frame prefix.
///
/// * Missing file → [`ResilError::NoCheckpoint`].
/// * File ends mid-structure (header or frame) → `Ok` with
///   [`Recovery::torn`] set: the tear is typed, the prefix is usable.
/// * Wrong magic/version, a CRC mismatch, or an out-of-order sequence
///   number → hard error: the artifact is refused, not repaired.
pub fn recover(path: &Path) -> Result<Recovery, ResilError> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
            return Err(ResilError::NoCheckpoint)
        }
        Err(err) => return Err(ResilError::Io(err)),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    recover_bytes(&bytes)
}

/// [`recover`] over an in-memory image (exposed for torn-write fuzzing).
pub fn recover_bytes(bytes: &[u8]) -> Result<Recovery, ResilError> {
    if bytes.len() < 4 {
        // Header never finished committing: a tear at the very start.
        return Ok(Recovery {
            frames: Vec::new(),
            torn: Some(ResilError::TornTail { offset: 0, recovered_frames: 0 }),
            valid_len: 0,
        });
    }
    if bytes[0..4] != LOG_MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(&bytes[0..4]);
        return Err(ResilError::BadMagic { found });
    }
    if bytes.len() < LOG_HEADER_LEN as usize {
        return Ok(Recovery {
            frames: Vec::new(),
            torn: Some(ResilError::TornTail { offset: 4, recovered_frames: 0 }),
            valid_len: 0,
        });
    }
    let version = u32::from_le_bytes(read4(bytes, 4));
    if version != LOG_VERSION {
        return Err(ResilError::BadMagic { found: read4(bytes, 4) });
    }

    let mut frames = Vec::new();
    let mut at = LOG_HEADER_LEN as usize;
    loop {
        if at == bytes.len() {
            // Clean end on a frame boundary.
            return Ok(Recovery { frames, torn: None, valid_len: at as u64 });
        }
        if bytes.len() - at < FRAME_HEADER_LEN as usize {
            return Ok(torn_at(frames, at));
        }
        let seq = u64::from_le_bytes(read8(bytes, at));
        let len = u32::from_le_bytes(read4(bytes, at + 8)) as usize;
        let stored = u32::from_le_bytes(read4(bytes, at + 12));
        let payload_at = at + FRAME_HEADER_LEN as usize;
        if bytes.len() - payload_at < len {
            return Ok(torn_at(frames, at));
        }
        let payload = &bytes[payload_at..payload_at + len];
        let computed = crc32(payload);
        if computed != stored {
            return Err(ResilError::CrcMismatch { offset: at as u64, stored, computed });
        }
        if seq != frames.len() as u64 {
            // A CRC-valid frame with the wrong sequence means the writer
            // misbehaved; refuse rather than guess.
            return Err(ResilError::Decode { context: "frame sequence number" });
        }
        frames.push(Frame { seq, payload: payload.to_vec() });
        at = payload_at + len;
    }
}

fn torn_at(frames: Vec<Frame>, at: usize) -> Recovery {
    let recovered = frames.len();
    Recovery {
        valid_len: at as u64,
        torn: Some(ResilError::TornTail { offset: at as u64, recovered_frames: recovered }),
        frames,
    }
}

fn read4(bytes: &[u8], at: usize) -> [u8; 4] {
    let mut out = [0u8; 4];
    out.copy_from_slice(&bytes[at..at + 4]);
    out
}

fn read8(bytes: &[u8], at: usize) -> [u8; 8] {
    let mut out = [0u8; 8];
    out.copy_from_slice(&bytes[at..at + 8]);
    out
}

/// Fsync the parent directory so a rename/create is durable.
pub(crate) fn sync_parent_dir(path: &Path) -> Result<(), ResilError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            // Directory fsync is best-effort on platforms that refuse
            // opening directories for write; opening read-only suffices
            // for fsync on linux.
            let dir = File::open(parent)?;
            dir.sync_all()?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("tasq-resil-frame-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn append_and_recover_roundtrip() {
        let path = tmp("roundtrip.log");
        let mut log = FrameLog::create(&path).unwrap();
        assert_eq!(log.append(b"alpha").unwrap(), 0);
        assert_eq!(log.append(b"beta").unwrap(), 1);
        let rec = recover(&path).unwrap();
        assert!(rec.torn.is_none());
        assert_eq!(rec.frames.len(), 2);
        assert_eq!(rec.frames[0].payload, b"alpha");
        assert_eq!(rec.last().unwrap().payload, b"beta");
    }

    #[test]
    fn missing_file_is_typed() {
        let err = recover(Path::new("/nonexistent/tasq.log")).unwrap_err();
        assert!(matches!(err, ResilError::NoCheckpoint));
    }

    #[test]
    fn reopen_resumes_sequence() {
        let path = tmp("reopen.log");
        {
            let mut log = FrameLog::create(&path).unwrap();
            log.append(b"one").unwrap();
        }
        let (mut log, rec) = FrameLog::open_or_create(&path).unwrap();
        assert_eq!(rec.frames.len(), 1);
        assert_eq!(log.append(b"two").unwrap(), 1);
        let rec = recover(&path).unwrap();
        assert_eq!(rec.frames.len(), 2);
    }

    #[test]
    fn corrupt_payload_is_refused() {
        let path = tmp("corrupt.log");
        let mut log = FrameLog::create(&path).unwrap();
        log.append(b"payload-bytes").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x40; // flip a payload bit post-commit
        let err = recover_bytes(&bytes).unwrap_err();
        assert!(err.is_corrupt(), "{err}");
    }

    #[test]
    fn foreign_file_is_refused() {
        let err = recover_bytes(b"not a checkpoint at all").unwrap_err();
        assert!(matches!(err, ResilError::BadMagic { .. }));
    }

    #[test]
    fn torn_tail_is_trimmed_on_reopen() {
        let path = tmp("torn.log");
        {
            let mut log = FrameLog::create(&path).unwrap();
            log.append(b"good frame").unwrap();
            log.append(b"doomed frame").unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Cut into the middle of the second frame's payload.
        std::fs::write(&path, &full[..full.len() - 4]).unwrap();
        let (mut log, rec) = FrameLog::open_or_create(&path).unwrap();
        assert_eq!(rec.frames.len(), 1);
        assert!(rec.torn.as_ref().is_some_and(|t| t.is_torn()));
        // The tail was trimmed; a new append lands on a clean boundary.
        log.append(b"replacement").unwrap();
        let rec = recover(&path).unwrap();
        assert!(rec.torn.is_none());
        assert_eq!(rec.frames.len(), 2);
        assert_eq!(rec.frames[1].payload, b"replacement");
    }
}
