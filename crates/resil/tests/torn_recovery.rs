//! Fuzz-style torn-write recovery: truncate a valid multi-frame
//! checkpoint log at *every* byte offset and assert the outcome is
//! always a typed recovery — the valid frame prefix plus a typed torn
//! tail — never a panic, a hard error, or silent garbage.

use tasq_resil::frame::{recover_bytes, FrameLog, LOG_HEADER_LEN};
use tasq_resil::{CheckpointStore, ResilError};

fn build_log(dir: &std::path::Path) -> (std::path::PathBuf, Vec<Vec<u8>>, Vec<u64>) {
    let path = dir.join("fuzz.ckpt");
    let payloads: Vec<Vec<u8>> = (0..4u8)
        .map(|i| (0..=(40 + i * 13)).map(|b| b ^ (i * 31)).collect())
        .collect();
    let mut log = FrameLog::create(&path).unwrap();
    let mut boundaries = vec![LOG_HEADER_LEN];
    for p in &payloads {
        log.append(p).unwrap();
        boundaries.push(std::fs::metadata(&path).unwrap().len());
    }
    (path, payloads, boundaries)
}

#[test]
fn truncation_at_every_byte_recovers_the_valid_prefix() {
    let dir = std::env::temp_dir().join("tasq-resil-torn-fuzz");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let (path, payloads, boundaries) = build_log(&dir);
    let full = std::fs::read(&path).unwrap();

    for cut in 0..=full.len() {
        let image = &full[..cut];
        let recovery = recover_bytes(image)
            .unwrap_or_else(|e| panic!("cut at {cut}: hard error {e}"));
        // Frames committed strictly before the cut must all survive.
        let intact =
            boundaries.iter().filter(|&&b| b <= cut as u64).count().saturating_sub(1);
        assert_eq!(recovery.frames.len(), intact, "cut at {cut}");
        for (frame, want) in recovery.frames.iter().zip(&payloads) {
            assert_eq!(&frame.payload, want, "cut at {cut}: payload mangled");
        }
        let on_boundary = boundaries.contains(&(cut as u64));
        if on_boundary {
            assert!(recovery.torn.is_none(), "cut at {cut}: boundary misread as tear");
        } else {
            // Mid-frame cut: the tear is typed, and recovery falls back
            // to the previous good frame.
            let torn = recovery.torn.as_ref().unwrap_or_else(|| {
                panic!("cut at {cut}: tear not detected")
            });
            assert!(torn.is_torn(), "cut at {cut}: {torn}");
            if intact > 0 {
                assert_eq!(
                    recovery.last().unwrap().payload,
                    payloads[intact - 1],
                    "cut at {cut}: wrong fallback frame"
                );
            }
        }
    }
}

#[test]
fn truncated_store_resumes_appends_from_last_good_frame() {
    let dir = std::env::temp_dir().join("tasq-resil-torn-resume");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let (path, payloads, boundaries) = build_log(&dir);
    let full = std::fs::read(&path).unwrap();

    // Shear mid-way through the last frame, then reopen through the
    // store and extend the log: the torn frame is replaced cleanly.
    let cut = (boundaries[3] as usize + full.len()) / 2;
    std::fs::write(&path, &full[..cut]).unwrap();
    let store = CheckpointStore::open(&dir).unwrap();
    let recovery = store.recover_stage("fuzz").unwrap();
    assert_eq!(recovery.frames.len(), 3);
    assert!(recovery.torn.as_ref().is_some_and(ResilError::is_torn));
    store.append("fuzz", &payloads[3]).unwrap();
    let clean = store.scan("fuzz").unwrap();
    assert!(clean.torn.is_none());
    assert_eq!(clean.frames.len(), 4);
    assert_eq!(clean.frames[3].payload, payloads[3]);
}

#[test]
fn bitflips_never_pass_as_valid_frames() {
    let dir = std::env::temp_dir().join("tasq-resil-flip-fuzz");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let (path, _payloads, boundaries) = build_log(&dir);
    let full = std::fs::read(&path).unwrap();

    // Flip one bit inside the *first* frame's payload region: recovery
    // must refuse (corruption), not reinterpret.
    let payload_start = boundaries[0] as usize + 16;
    for at in payload_start..payload_start + 8 {
        let mut image = full.clone();
        image[at] ^= 0x10;
        let err = recover_bytes(&image).unwrap_err();
        assert!(err.is_corrupt(), "flip at {at}: {err:?}");
    }
}
