//! Criterion benchmarks for the TASQ workspace (see benches/).
