//! AREPAS micro-benchmarks: section splitting and full skyline
//! simulation across skyline lengths (Figures 6–8 machinery). The paper's
//! pitch is that AREPAS is a *lightweight* augmentation path that scales
//! to hundreds of thousands of jobs — these benches quantify that.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn make_skyline(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|i| {
            let base = 10.0 + 40.0 * ((i as f64 / 37.0).sin().abs());
            base * rng.gen_range(0.5..1.5)
        })
        .collect()
}

fn bench_split_sections(c: &mut Criterion) {
    let mut group = c.benchmark_group("arepas/split_sections");
    for len in [60usize, 600, 6000] {
        let skyline = make_skyline(len, 1);
        group.bench_with_input(BenchmarkId::from_parameter(len), &skyline, |b, s| {
            b.iter(|| arepas::split_sections(black_box(s), black_box(25.0)));
        });
    }
    group.finish();
}

fn bench_simulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("arepas/simulate");
    for len in [60usize, 600, 6000] {
        let skyline = make_skyline(len, 2);
        group.bench_with_input(BenchmarkId::from_parameter(len), &skyline, |b, s| {
            b.iter(|| arepas::simulate(black_box(s), black_box(20.0)));
        });
    }
    group.finish();
}

fn bench_augmentation_sweep(c: &mut Criterion) {
    // One job's full augmentation: five allocations from one skyline.
    let skyline = make_skyline(600, 3);
    c.bench_function("arepas/augment_five_allocations", |b| {
        b.iter(|| {
            for fraction in [0.8, 0.6, 0.4, 0.2, 0.1] {
                black_box(arepas::simulate_runtime(black_box(&skyline), 60.0 * fraction));
            }
        });
    });
}

criterion_group!(benches, bench_split_sections, bench_simulate, bench_augmentation_sweep);
criterion_main!(benches);
