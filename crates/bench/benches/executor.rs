//! Cluster-executor benchmarks: workload generation, stage extraction,
//! and event-driven execution at several allocations (the ground-truth
//! substrate behind Figures 1, 3 and 8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scope_sim::{ExecutionConfig, FaultPlan, StageGraph, WorkloadConfig, WorkloadGenerator};
use std::hint::black_box;

fn bench_workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor/generate_workload");
    for n in [100usize, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let config = WorkloadConfig { num_jobs: n, seed: 1, ..Default::default() };
            b.iter(|| WorkloadGenerator::new(config.clone()).generate());
        });
    }
    group.finish();
}

fn bench_stage_extraction(c: &mut Criterion) {
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 50,
        seed: 2,
        ..Default::default()
    })
    .generate();
    c.bench_function("executor/stage_extraction_50_jobs", |b| {
        b.iter(|| {
            for job in &jobs {
                black_box(StageGraph::from_plan(black_box(&job.plan), job.seed));
            }
        });
    });
}

fn bench_execution(c: &mut Criterion) {
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 200,
        seed: 3,
        ..Default::default()
    })
    .generate();
    // A mid-sized job.
    let job = jobs
        .iter()
        .find(|j| (50..=150).contains(&j.requested_tokens))
        .unwrap_or(&jobs[0]);
    let executor = job.executor();
    let config = ExecutionConfig::default();

    let mut group = c.benchmark_group("executor/run");
    for divisor in [1u32, 4, 16] {
        let alloc = (job.requested_tokens / divisor).max(1);
        group.bench_with_input(BenchmarkId::from_parameter(alloc), &alloc, |b, &alloc| {
            b.iter(|| executor.run(black_box(alloc), &config));
        });
    }
    group.finish();
}

/// Fault-layer cost: the same job under each fault preset, plus the
/// empty-plan case. The `none` entry is the overhead guard — with an
/// empty plan the injector draws no randomness, so its timing should sit
/// within ~5% of what the pre-fault-layer executor measured; compare the
/// `none` and preset medians to see what fault handling itself costs.
fn bench_execution_with_faults(c: &mut Criterion) {
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 200,
        seed: 3,
        ..Default::default()
    })
    .generate();
    let job = jobs
        .iter()
        .find(|j| (50..=150).contains(&j.requested_tokens))
        .unwrap_or(&jobs[0]);
    let executor = job.executor();
    let alloc = job.requested_tokens;

    let mut group = c.benchmark_group("executor/run_faults");
    for (label, plan) in [
        ("none", FaultPlan::none()),
        ("mild", FaultPlan::mild()),
        ("production", FaultPlan::production()),
        ("adversarial", FaultPlan::adversarial()),
    ] {
        let config = ExecutionConfig { faults: plan, noise_seed: 9, ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
            b.iter(|| executor.run(black_box(alloc), config));
        });
    }
    group.finish();
}

fn bench_performance_curve(c: &mut Criterion) {
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 20,
        seed: 4,
        ..Default::default()
    })
    .generate();
    let executor = jobs[0].executor();
    c.bench_function("executor/performance_curve_6_points", |b| {
        b.iter(|| executor.performance_curve(black_box(&[5, 10, 20, 40, 80, 160])));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_workload_generation, bench_stage_extraction, bench_execution, bench_execution_with_faults, bench_performance_curve
}
criterion_main!(benches);
