//! Tracing hot-path micro-benchmarks: the costs a request pays for
//! observability. Context minting and wire codecs run on every traced
//! request; `span_off` and `histogram_record` quantify the two claims
//! the serving stack leans on — an unsampled span is one relaxed load
//! plus a context copy, and `record_traced` on an already-populated
//! exemplar slot is a floor check away from plain `record`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tasq_obs::{span, subscriber_off, FieldValue, Level, Registry, TraceContext};

fn bench_context(c: &mut Criterion) {
    c.bench_function("trace/mint", |b| {
        b.iter(|| black_box(TraceContext::mint(black_box(true))));
    });

    let header = TraceContext::mint(true).traceparent();
    c.bench_function("trace/parse_traceparent", |b| {
        b.iter(|| black_box(TraceContext::parse_traceparent(black_box(&header))));
    });

    let ctx = TraceContext::mint(true);
    let mut wire = Vec::with_capacity(TraceContext::WIRE_BYTES);
    c.bench_function("trace/wire_roundtrip", |b| {
        b.iter(|| {
            wire.clear();
            black_box(&ctx).encode(&mut wire);
            black_box(TraceContext::decode(&wire))
        });
    });
}

fn bench_span_off(c: &mut Criterion) {
    // The subscriber-off path every request takes in a plain benchmark
    // run: one relaxed load, no allocation, no field formatting.
    subscriber_off();
    let ctx = TraceContext::mint(true);
    c.bench_function("trace/span_subscriber_off", |b| {
        b.iter(|| {
            let _guard = span(
                Level::Debug,
                "bench_request",
                &[("trace", FieldValue::TraceId(black_box(ctx.trace_id)))],
            );
        });
    });
}

fn bench_histogram(c: &mut Criterion) {
    let registry = Registry::new();
    let plain = registry.histogram("bench_plain_us", "plain record path");
    c.bench_function("trace/histogram_record", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 37) % 10_000;
            plain.record(black_box(v));
        });
    });

    // Warm the exemplar slots first so the steady state measures the
    // floor fast path, not slot acquisition.
    let traced = registry.histogram("bench_traced_us", "exemplar record path");
    let ctx = TraceContext::mint(true);
    for v in 0..64u64 {
        traced.record_traced(v * 151, ctx.trace_id);
    }
    c.bench_function("trace/histogram_record_traced", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 37) % 10_000;
            traced.record_traced(black_box(v), black_box(ctx.trace_id));
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_context, bench_span_off, bench_histogram
}
criterion_main!(benches);
