//! Model-artifact codec benchmarks: serializing and deserializing the NN
//! model the pipeline registers in the store.

use criterion::{criterion_group, criterion_main, Criterion};
use scope_sim::{WorkloadConfig, WorkloadGenerator};
use std::hint::black_box;
use tasq::augment::AugmentConfig;
use tasq::codec;
use tasq::dataset::Dataset;
use tasq::models::{NnPcc, NnTrainConfig};

fn trained_nn() -> NnPcc {
    let jobs =
        WorkloadGenerator::new(WorkloadConfig { num_jobs: 40, seed: 10, ..Default::default() })
            .generate();
    let ds = Dataset::build(&jobs, &AugmentConfig::default());
    NnPcc::train(&ds, &NnTrainConfig { epochs: 3, ..Default::default() })
}

fn bench_serialize(c: &mut Criterion) {
    let nn = trained_nn();
    c.bench_function("codec/serialize_nn_model", |b| {
        b.iter(|| codec::to_bytes(black_box(&nn)).unwrap());
    });
}

fn bench_deserialize(c: &mut Criterion) {
    let nn = trained_nn();
    let bytes = codec::to_bytes(&nn).unwrap();
    c.bench_function("codec/deserialize_nn_model", |b| {
        b.iter(|| codec::from_bytes::<NnPcc>(black_box(&bytes)).unwrap());
    });
}

fn bench_matrix_roundtrip(c: &mut Criterion) {
    let m = tasq_ml::Matrix::from_fn(100, 100, |r, col| (r * 100 + col) as f64 * 0.5);
    c.bench_function("codec/matrix_100x100_roundtrip", |b| {
        b.iter(|| {
            let bytes = codec::to_bytes(black_box(&m)).unwrap();
            codec::from_bytes::<tasq_ml::Matrix>(&bytes).unwrap()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_serialize, bench_deserialize, bench_matrix_roundtrip
}
criterion_main!(benches);
