//! Serving-stack micro-benchmarks: plan-signature hashing, the sharded
//! LRU cache, and the end-to-end server in its four interesting
//! configurations — batched vs unbatched submission and cached vs
//! uncached recurring traffic. The last pair quantifies the headline
//! serving claim: recurring production jobs answered from the signature
//! cache skip featurization and inference entirely.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scope_sim::{replay_traffic, Job, TrafficConfig, WorkloadConfig, WorkloadGenerator};
use std::collections::VecDeque;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;
use tasq::models::{NnTrainConfig, XgbTrainConfig};
use tasq::pipeline::{
    JobRepository, ModelChoice, ModelStore, PipelineConfig, ScoringConfig, TasqPipeline,
};
use tasq_serve::cache::CacheConfig;
use tasq_serve::{ModelRegistry, PlanSignature, ScoringServer, ServeConfig, SignatureCache};

fn jobs(n: usize, seed: u64) -> Vec<Job> {
    WorkloadGenerator::new(WorkloadConfig { num_jobs: n, seed, ..Default::default() }).generate()
}

fn registry(seed: u64) -> Arc<ModelRegistry> {
    let repo = JobRepository::new();
    repo.ingest(jobs(20, seed));
    let store = ModelStore::new();
    TasqPipeline::new(PipelineConfig {
        xgb: XgbTrainConfig { num_rounds: 15, ..Default::default() },
        nn: NnTrainConfig { epochs: 8, ..Default::default() },
        ..Default::default()
    })
    .train(&repo, &store)
    .expect("trains");
    Arc::new(
        ModelRegistry::deploy(&store, ModelChoice::Nn, ScoringConfig::default())
            .expect("deploys"),
    )
}

fn bench_signature(c: &mut Criterion) {
    let population = jobs(16, 101);
    c.bench_function("serve/plan_signature", |b| {
        b.iter(|| {
            for job in &population {
                black_box(PlanSignature::of_job(black_box(job)));
            }
        });
    });
}

fn bench_cache(c: &mut Criterion) {
    let cache = SignatureCache::new(&CacheConfig::default());
    let registry = registry(103);
    let population = jobs(64, 105);
    let keys: Vec<u64> = population.iter().map(|j| PlanSignature::of_job(j).cache_key(1)).collect();
    let response = registry.current().service().score(&population[0]);
    for &key in &keys {
        cache.insert(key, response.clone());
    }
    c.bench_function("serve/cache_hit", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(cache.get(black_box(keys[i])));
        });
    });
    c.bench_function("serve/cache_insert_evicting", |b| {
        let small = SignatureCache::new(&CacheConfig { capacity: 16, shards: 2, enabled: true });
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
            small.insert(black_box(key), response.clone());
        });
    });
}

/// Push a fixed stream through a server configuration and wait for all
/// responses (the unit of work every server bench iterates).
fn pump(server: &ScoringServer, traffic: &[Job]) {
    let mut window: VecDeque<tasq_serve::Ticket> = VecDeque::new();
    for job in traffic {
        if window.len() >= 64 {
            if let Some(ticket) = window.pop_front() {
                black_box(ticket.wait());
            }
        }
        window.push_back(server.submit(job.clone()).expect("admitted"));
    }
    for ticket in window {
        black_box(ticket.wait());
    }
}

fn bench_batched_vs_unbatched(c: &mut Criterion) {
    // Recurring traffic with the cache disabled: the difference is the
    // worker pool coalescing micro-batches (scoring each distinct plan
    // signature once per batch) versus scoring one request at a time.
    let traffic = replay_traffic(
        &jobs(20, 107),
        &TrafficConfig { requests: 200, repeat_fraction: 0.8, seed: 9 },
    );
    let mut group = c.benchmark_group("serve/batching");
    for (label, max_batch) in [("unbatched", 1usize), ("batched_16", 16)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &max_batch, |b, &max_batch| {
            let server = ScoringServer::start(
                registry(109),
                ServeConfig {
                    workers: 2,
                    max_batch,
                    // Tight fill deadline: the stream is short, so the
                    // default 500 µs would dominate the tail batches.
                    max_delay: Duration::from_micros(100),
                    cache: CacheConfig { enabled: false, ..Default::default() },
                    ..Default::default()
                },
            );
            b.iter(|| pump(&server, &traffic));
        });
    }
    group.finish();
}

fn bench_cached_vs_uncached(c: &mut Criterion) {
    // Recurring traffic (80% repeats over a small daily population): the
    // signature cache turns most requests into hash-and-return.
    let traffic = replay_traffic(
        &jobs(20, 111),
        &TrafficConfig { requests: 400, repeat_fraction: 0.8, seed: 11 },
    );
    let mut group = c.benchmark_group("serve/recurring_traffic");
    for (label, enabled) in [("uncached", false), ("cached", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &enabled, |b, &enabled| {
            let server = ScoringServer::start(
                registry(113),
                ServeConfig {
                    workers: 2,
                    cache: CacheConfig { enabled, ..Default::default() },
                    ..Default::default()
                },
            );
            b.iter(|| pump(&server, &traffic));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_signature, bench_cache, bench_batched_vs_unbatched, bench_cached_vs_uncached
}
criterion_main!(benches);
