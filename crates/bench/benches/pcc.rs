//! PCC benchmarks: power-law fitting (Figure 9), optimal-token search,
//! elbow finding (Figure 3), and smoothing-spline fitting (XGBoost SS).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tasq::pcc::PowerLawPcc;
use tasq_ml::spline::SmoothingSpline;

fn curve_points(n: usize) -> Vec<(f64, f64)> {
    let truth = PowerLawPcc::new(-0.7, 5000.0);
    (0..n)
        .map(|i| {
            let tokens = 2.0 + i as f64 * 3.0;
            (tokens, truth.predict(tokens as u32) * (1.0 + 0.01 * ((i * 7) % 5) as f64))
        })
        .collect()
}

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("pcc/fit");
    for n in [5usize, 20, 100] {
        let points = curve_points(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &points, |b, p| {
            b.iter(|| PowerLawPcc::fit(black_box(p)));
        });
    }
    group.finish();
}

fn bench_optimal_tokens(c: &mut Criterion) {
    let pcc = PowerLawPcc::new(-0.65, 4200.0);
    c.bench_function("pcc/optimal_tokens", |b| {
        b.iter(|| pcc.optimal_tokens(black_box(0.01), 1, 6287));
    });
}

fn bench_elbow(c: &mut Criterion) {
    let pcc = PowerLawPcc::new(-0.8, 2500.0);
    c.bench_function("pcc/elbow_10_to_200", |b| {
        b.iter(|| pcc.elbow(black_box(10), black_box(200)));
    });
}

fn bench_spline_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("pcc/spline_fit");
    for n in [9usize, 50, 200] {
        let points = curve_points(n);
        let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| SmoothingSpline::fit(black_box(&xs), black_box(&ys), 50.0));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fit, bench_optimal_tokens, bench_elbow, bench_spline_fit);
criterion_main!(benches);
