//! Featurization benchmarks (paper Tables 1–2): job-level aggregation,
//! operator-level extraction, and dataset preparation including the
//! one-time execution + AREPAS augmentation per job.

use criterion::{criterion_group, criterion_main, Criterion};
use scope_sim::{StageGraph, WorkloadConfig, WorkloadGenerator};
use std::hint::black_box;
use tasq::augment::AugmentConfig;
use tasq::dataset::Dataset;
use tasq::featurize::{featurize_job, featurize_operators, FeatureScaler};

fn bench_featurize(c: &mut Criterion) {
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 100,
        seed: 5,
        ..Default::default()
    })
    .generate();
    let stages: Vec<usize> = jobs
        .iter()
        .map(|j| StageGraph::from_plan(&j.plan, j.seed).num_stages())
        .collect();

    c.bench_function("featurize/job_level_100_jobs", |b| {
        b.iter(|| {
            for (job, &num_stages) in jobs.iter().zip(&stages) {
                black_box(featurize_job(black_box(&job.plan), num_stages));
            }
        });
    });

    c.bench_function("featurize/operator_level_100_jobs", |b| {
        b.iter(|| {
            for job in &jobs {
                black_box(featurize_operators(black_box(&job.plan)));
            }
        });
    });
}

fn bench_scaler(c: &mut Criterion) {
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 200,
        seed: 6,
        ..Default::default()
    })
    .generate();
    let rows: Vec<Vec<f64>> = jobs
        .iter()
        .map(|j| {
            let stages = StageGraph::from_plan(&j.plan, j.seed).num_stages();
            featurize_job(&j.plan, stages).values
        })
        .collect();
    c.bench_function("featurize/scaler_fit_200_rows", |b| {
        b.iter(|| FeatureScaler::fit(black_box(&rows)));
    });
    let scaler = FeatureScaler::fit(&rows);
    c.bench_function("featurize/scaler_transform_200_rows", |b| {
        b.iter(|| scaler.transform_all(black_box(&rows)));
    });
}

fn bench_dataset_build(c: &mut Criterion) {
    let jobs = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 50,
        seed: 7,
        ..Default::default()
    })
    .generate();
    let config = AugmentConfig::default();
    c.bench_function("featurize/dataset_build_50_jobs", |b| {
        b.iter(|| Dataset::build(black_box(&jobs), &config));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_featurize, bench_scaler, bench_dataset_build
}
criterion_main!(benches);
