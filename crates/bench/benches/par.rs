//! Work-stealing runtime benchmarks (`tasq-par`): scheduler overhead on
//! uniform vs. steal-heavy (skewed) task sets, and the blocked
//! row-parallel GEMM against its sequential counterpart.
//!
//! Numbers depend on the host's core count — on a single-core container
//! the parallel variants measure pure scheduling overhead, which is the
//! interesting quantity there.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tasq_ml::matrix::Matrix;
use tasq_par::Pool;

/// Deterministic floating-point spin: `iters` dependent FLOPs.
fn spin(seed: u64, iters: u64) -> f64 {
    let mut acc = (seed as f64).mul_add(1e-9, 1.0);
    for i in 0..iters {
        acc = acc.mul_add(1.000_000_1, (i as f64) * 1e-12);
    }
    acc
}

fn bench_par_map_shapes(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get()).min(8);
    let pool = Pool::new(threads);
    let seq = Pool::sequential();
    const TASKS: usize = 256;
    const TOTAL_ITERS: u64 = 256 * 2_000;

    // Uniform: every task costs the same — static chunking would already
    // balance this, so it measures baseline dispatch overhead.
    let uniform: Vec<u64> = vec![TOTAL_ITERS / TASKS as u64; TASKS];
    // Steal-heavy: the same total work front-loaded into a few huge tasks
    // (cost ~ 1/(i+1), normalized) — idle workers must steal to help.
    let weights: Vec<f64> = (0..TASKS).map(|i| 1.0 / (i + 1) as f64).collect();
    let wsum: f64 = weights.iter().sum();
    let skewed: Vec<u64> = weights
        .iter()
        .map(|w| ((w / wsum) * TOTAL_ITERS as f64) as u64 + 1)
        .collect();

    let mut group = c.benchmark_group("par/par_map");
    for (shape, tasks) in [("uniform", &uniform), ("steal_heavy", &skewed)] {
        group.bench_with_input(
            BenchmarkId::new(shape, format!("seq_t{}", seq.threads())),
            tasks,
            |b, tasks| {
                b.iter(|| {
                    seq.par_map(black_box(tasks), |i, &iters| spin(i as u64, iters))
                        .expect("bench closures do not panic")
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new(shape, format!("pool_t{threads}")),
            tasks,
            |b, tasks| {
                b.iter(|| {
                    pool.par_map(black_box(tasks), |i, &iters| spin(i as u64, iters))
                        .expect("bench closures do not panic")
                });
            },
        );
    }
    group.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get()).min(8);
    let pool = Pool::new(threads);
    let seq = Pool::sequential();

    let mut group = c.benchmark_group("par/gemm");
    for n in [64usize, 128] {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|r| (0..n).map(|c| spin((r * n + c) as u64, 0)).collect())
            .collect();
        let a = Matrix::from_rows(&rows);
        let b_mat = a.transpose();
        group.bench_with_input(BenchmarkId::new("seq", n), &n, |b, _| {
            b.iter(|| black_box(&a).matmul_par(black_box(&b_mat), &seq));
        });
        group.bench_with_input(
            BenchmarkId::new(format!("pool_t{threads}"), n),
            &n,
            |b, _| {
                b.iter(|| black_box(&a).matmul_par(black_box(&b_mat), &pool));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_par_map_shapes, bench_gemm
}
criterion_main!(benches);
