//! Allocation-policy benchmarks (Figures 1–2 machinery): policy series
//! construction and the bisection search for the minimum token count
//! within a performance-loss budget.

use criterion::{criterion_group, criterion_main, Criterion};
use scope_sim::{ExecutionConfig, Skyline, WorkloadConfig, WorkloadGenerator};
use std::hint::black_box;
use tasq::policy::{min_tokens_within_loss, reduction_histogram, AllocationPolicy};

fn observed_skylines(n: usize) -> Vec<(Skyline, u32)> {
    let jobs =
        WorkloadGenerator::new(WorkloadConfig { num_jobs: n, seed: 11, ..Default::default() })
            .generate();
    let config = ExecutionConfig::default();
    jobs.iter()
        .map(|j| {
            (
                j.executor()
                    .run(j.requested_tokens, &config)
                    .expect("fault-free execution cannot fail")
                    .skyline,
                j.requested_tokens,
            )
        })
        .collect()
}

fn bench_policy_series(c: &mut Criterion) {
    let skylines = observed_skylines(20);
    c.bench_function("policy/adaptive_peak_series_20_jobs", |b| {
        b.iter(|| {
            for (skyline, requested) in &skylines {
                black_box(AllocationPolicy::AdaptivePeak.series(skyline, *requested));
            }
        });
    });
}

fn bench_min_tokens(c: &mut Criterion) {
    let skylines = observed_skylines(10);
    c.bench_function("policy/min_tokens_bisection_10_jobs", |b| {
        b.iter(|| {
            for (skyline, requested) in &skylines {
                black_box(min_tokens_within_loss(skyline, *requested, black_box(0.05)));
            }
        });
    });
}

fn bench_reduction_histogram(c: &mut Criterion) {
    let skylines = observed_skylines(30);
    c.bench_function("policy/figure2_histogram_30_jobs", |b| {
        b.iter(|| reduction_histogram(black_box(&skylines), &[0.0, 0.05, 0.10]));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_policy_series, bench_min_tokens, bench_reduction_histogram
}
criterion_main!(benches);
