//! Cluster-scheduler and baseline-simulator benchmarks (the extension
//! machinery): shared-pool simulation throughput and per-prediction costs
//! of AREPAS vs. the Amdahl and Jockey baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scope_sim::amdahl::AmdahlModel;
use scope_sim::cluster::{poisson_arrivals, Cluster};
use scope_sim::jockey::JockeyModel;
use scope_sim::{ExecutionConfig, StageGraph, WorkloadConfig, WorkloadGenerator};
use std::hint::black_box;

fn bench_cluster_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster/simulate");
    for n in [20usize, 80] {
        let jobs = WorkloadGenerator::new(WorkloadConfig {
            num_jobs: n,
            seed: 13,
            ..Default::default()
        })
        .generate();
        let capacity =
            jobs.iter().map(|j| j.requested_tokens).max().unwrap_or(1).max(100) * 2;
        let cluster = Cluster::new(capacity);
        let submissions = poisson_arrivals(&jobs, 15.0, |j| j.requested_tokens, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &submissions, |b, s| {
            b.iter(|| cluster.simulate(black_box(s)).expect("grants fit the pool"));
        });
    }
    group.finish();
}

fn bench_baseline_predictions(c: &mut Criterion) {
    let job = WorkloadGenerator::new(WorkloadConfig {
        num_jobs: 30,
        seed: 14,
        ..Default::default()
    })
    .generate()
    .into_iter()
    .max_by_key(|j| j.plan.num_operators())
    .expect("non-empty workload");
    let graph = StageGraph::from_plan(&job.plan, job.seed);
    let skyline = job
        .executor()
        .run(job.requested_tokens, &ExecutionConfig::default())
        .expect("fault-free execution cannot fail")
        .skyline;
    let amdahl = AmdahlModel::from_stage_graph(&graph);
    let jockey = JockeyModel::from_prior_run(graph);
    let alloc = (job.requested_tokens / 2).max(1);

    c.bench_function("cluster/predict_arepas", |b| {
        b.iter(|| arepas::simulate_runtime(black_box(skyline.samples()), alloc as f64));
    });
    c.bench_function("cluster/predict_amdahl", |b| {
        b.iter(|| amdahl.predict_runtime(black_box(alloc)));
    });
    c.bench_function("cluster/predict_jockey", |b| {
        b.iter(|| jockey.predict_runtime(black_box(alloc)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cluster_simulation, bench_baseline_predictions
}
criterion_main!(benches);
