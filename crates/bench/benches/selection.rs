//! Job-subset-selection benchmarks (Figure 11 machinery): k-means
//! clustering, the full four-step selection, and the KS quality test.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use scope_sim::{WorkloadConfig, WorkloadGenerator};
use std::hint::black_box;
use tasq::augment::AugmentConfig;
use tasq::dataset::Dataset;
use tasq::selection::{select_jobs, SelectionConfig};
use tasq_ml::kmeans::{kmeans, KMeansConfig};
use tasq_ml::matrix::Matrix;
use tasq_ml::stats::ks_two_sample;

fn dataset(n: usize) -> Dataset {
    let jobs =
        WorkloadGenerator::new(WorkloadConfig { num_jobs: n, seed: 9, ..Default::default() })
            .generate();
    Dataset::build(&jobs, &AugmentConfig::default())
}

fn bench_kmeans(c: &mut Criterion) {
    let ds = dataset(300);
    let data = Matrix::from_rows(&ds.job_feature_rows());
    c.bench_function("selection/kmeans_k8_300_jobs", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            kmeans(&mut rng, black_box(&data), &KMeansConfig { k: 8, ..Default::default() })
        });
    });
}

fn bench_full_selection(c: &mut Criterion) {
    let ds = dataset(300);
    let config = SelectionConfig { sample_size: 50, ..Default::default() };
    c.bench_function("selection/full_procedure_300_jobs", |b| {
        b.iter(|| select_jobs(black_box(&ds), &config));
    });
}

fn bench_ks_test(c: &mut Criterion) {
    let a: Vec<f64> = (0..5000).map(|i| (i as f64 * 0.37).sin() * 100.0).collect();
    let b_sample: Vec<f64> = (0..5000).map(|i| (i as f64 * 0.41).cos() * 110.0).collect();
    c.bench_function("selection/ks_two_sample_5k", |b| {
        b.iter(|| ks_two_sample(black_box(&a), black_box(&b_sample)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kmeans, bench_full_selection, bench_ks_test
}
criterion_main!(benches);
