//! Networked serving benchmarks: the incremental HTTP/1.1 parser and
//! binary frame codec in isolation (pure byte-shuffling cost), and the
//! end-to-end wire round trip — a real `tasq-net` epoll server on a
//! loopback socket, one persistent connection, one request per
//! iteration — in both framings. The round-trip numbers bound what a
//! single synchronous client can see; `tasq-cli loadgen --networked`
//! measures aggregate throughput across processes.

use criterion::{criterion_group, criterion_main, Criterion};
use scope_sim::{Job, WorkloadConfig, WorkloadGenerator};
use std::hint::black_box;
use std::sync::Arc;
use tasq::codec;
use tasq::models::{NnTrainConfig, XgbTrainConfig};
use tasq::pipeline::{
    JobRepository, ModelChoice, ModelStore, PipelineConfig, ScoringConfig, TasqPipeline,
};
use tasq_net::{
    frame, http, sys, BinaryClient, BufPool, Conn, HttpClient, HttpLimits, NetConfig, NetServer,
    ScoreOutcome,
};
use tasq_serve::{ModelRegistry, ScoringServer, ServeConfig};

fn jobs(n: usize, seed: u64) -> Vec<Job> {
    WorkloadGenerator::new(WorkloadConfig { num_jobs: n, seed, ..Default::default() }).generate()
}

fn registry(seed: u64) -> Arc<ModelRegistry> {
    let repo = JobRepository::new();
    repo.ingest(jobs(20, seed));
    let store = ModelStore::new();
    TasqPipeline::new(PipelineConfig {
        xgb: XgbTrainConfig { num_rounds: 15, ..Default::default() },
        nn: NnTrainConfig { epochs: 8, ..Default::default() },
        ..Default::default()
    })
    .train(&repo, &store)
    .expect("trains");
    Arc::new(
        ModelRegistry::deploy(&store, ModelChoice::Nn, ScoringConfig::default())
            .expect("deploys"),
    )
}

fn bench_http_parse(c: &mut Criterion) {
    let body = codec::to_bytes(&jobs(1, 11)[0]).expect("encodes");
    let mut request = format!(
        "POST /score HTTP/1.1\r\nHost: bench\r\nContent-Type: application/octet-stream\r\n\
         Content-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    request.extend_from_slice(&body);
    let limits = HttpLimits::default();
    c.bench_function("net/http_parse", |b| {
        b.iter(|| match http::parse_request(black_box(&request), 0, &limits) {
            http::HttpParse::Complete(req, consumed) => {
                black_box((req, consumed));
            }
            other => panic!("unexpected parse state {other:?}"),
        });
    });
}

fn bench_frame_parse(c: &mut Criterion) {
    let payload = codec::to_bytes(&jobs(1, 13)[0]).expect("encodes");
    let mut wire = Vec::new();
    frame::write_request_frame(&mut wire, &payload);
    c.bench_function("net/frame_parse", |b| {
        b.iter(|| match frame::parse_frame(black_box(&wire), 0) {
            frame::FrameParse::Complete(payload, consumed) => {
                black_box((payload, consumed));
            }
            other => panic!("unexpected frame state {other:?}"),
        });
    });
}

/// Span extraction against the copying parsers: the hot path resolves
/// requests as `(start, len)` offsets into the receive buffer, so the
/// only per-request allocation left is the submission-boundary copy.
fn bench_parse_spans(c: &mut Criterion) {
    let payload = codec::to_bytes(&jobs(1, 13)[0]).expect("encodes");
    let mut wire = Vec::new();
    frame::write_request_frame(&mut wire, &payload);
    c.bench_function("net/frame_parse_span", |b| {
        b.iter(|| match frame::parse_frame_span(black_box(&wire), 0) {
            frame::FrameParseSpan::Complete { payload_start, payload_len, used, .. } => {
                black_box((payload_start, payload_len, used));
            }
            other => panic!("unexpected frame state {other:?}"),
        });
    });

    let body = codec::to_bytes(&jobs(1, 11)[0]).expect("encodes");
    let mut request = format!(
        "POST /score HTTP/1.1\r\nHost: bench\r\nContent-Type: application/octet-stream\r\n\
         Content-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    request.extend_from_slice(&body);
    let limits = HttpLimits::default();
    c.bench_function("net/http_parse_span", |b| {
        b.iter(|| match http::parse_request_span(black_box(&request), 0, &limits) {
            http::HttpParseSpan::Complete { head, body_start, body_len, used } => {
                black_box((head, body_start, body_len, used));
            }
            other => panic!("unexpected parse state {other:?}"),
        });
    });
}

/// Flushing a multi-response write queue: one `write` per buffer versus
/// one gathered `writev` for the whole queue. `/dev/null` always accepts
/// the full vector, so each iteration measures pure gather + syscall
/// cost — the same work the shard does once per epoll wake.
fn bench_flush_strategies(c: &mut Criterion) {
    use std::os::unix::io::IntoRawFd;
    if !sys::supported() {
        return;
    }
    let response = vec![0u8; 96];
    for (name, coalesce) in [("net/flush_write_per_buffer", false), ("net/flush_writev", true)] {
        let fd = std::fs::OpenOptions::new()
            .write(true)
            .open("/dev/null")
            .expect("opens /dev/null")
            .into_raw_fd();
        let mut pool = BufPool::new(16);
        let mut conn = Conn::from_fd(fd, pool.checkout());
        c.bench_function(name, |b| {
            b.iter(|| {
                for _ in 0..8 {
                    let mut buf = pool.checkout();
                    buf.extend_from_slice(&response);
                    conn.queue_buffer(buf);
                }
                let flushed = conn.flush(&mut pool, coalesce).expect("flushes");
                black_box(flushed);
            });
        });
        conn.reclaim(&mut pool);
    }
}

fn bench_wire_roundtrip(c: &mut Criterion) {
    let server = ScoringServer::start(registry(17), ServeConfig::default());
    let net = NetServer::bind("127.0.0.1:0", NetConfig::default(), server).expect("binds");
    let addr = net.local_addr().to_string();
    let job = jobs(1, 19).remove(0);

    let mut binary = BinaryClient::connect(&addr).expect("connects");
    c.bench_function("net/roundtrip_binary", |b| {
        b.iter(|| match binary.score(black_box(&job)).expect("scores") {
            ScoreOutcome::Ok(resp) => {
                black_box(resp);
            }
            ScoreOutcome::Rejected(status) => panic!("rejected with {status}"),
        });
    });

    let mut http = HttpClient::connect(&addr).expect("connects");
    c.bench_function("net/roundtrip_http", |b| {
        b.iter(|| match http.score(black_box(&job)).expect("scores") {
            ScoreOutcome::Ok(resp) => {
                black_box(resp);
            }
            ScoreOutcome::Rejected(status) => panic!("rejected with {status}"),
        });
    });

    drop(binary);
    drop(http);
    net.trigger_drain();
    net.shutdown();
}

criterion_group!(
    benches,
    bench_http_parse,
    bench_frame_parse,
    bench_parse_spans,
    bench_flush_strategies,
    bench_wire_roundtrip
);
criterion_main!(benches);
