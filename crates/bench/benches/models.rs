//! Model benchmarks — the machinery behind the paper's Table 7
//! (training time per epoch and inference time): NN and GNN epochs,
//! per-job inference for all four models, and XGBoost training.

use criterion::{criterion_group, criterion_main, Criterion};
use scope_sim::{WorkloadConfig, WorkloadGenerator};
use std::hint::black_box;
use tasq::augment::AugmentConfig;
use tasq::dataset::Dataset;
use tasq::models::{
    GnnPcc, GnnTrainConfig, NnPcc, NnTrainConfig, PccPredictor, ScoringInput, XgbRuntime,
    XgbTrainConfig, XgboostPl, XgboostSs,
};

fn dataset(n: usize) -> Dataset {
    let jobs =
        WorkloadGenerator::new(WorkloadConfig { num_jobs: n, seed: 8, ..Default::default() })
            .generate();
    Dataset::build(&jobs, &AugmentConfig::default())
}

/// Table 7, "training per epoch": one NN epoch over 200 jobs.
fn bench_nn_train_epoch(c: &mut Criterion) {
    let ds = dataset(200);
    c.bench_function("models/nn_train_epoch_200_jobs", |b| {
        b.iter(|| {
            NnPcc::train(
                black_box(&ds),
                &NnTrainConfig { epochs: 1, ..Default::default() },
            )
        });
    });
}

/// Table 7, GNN counterpart: one GNN epoch over 200 jobs.
fn bench_gnn_train_epoch(c: &mut Criterion) {
    let ds = dataset(200);
    c.bench_function("models/gnn_train_epoch_200_jobs", |b| {
        b.iter(|| {
            GnnPcc::train(
                black_box(&ds),
                &GnnTrainConfig { epochs: 1, ..Default::default() },
            )
        });
    });
}

/// Table 7, "inference per 10,000 jobs": per-job prediction costs.
fn bench_inference(c: &mut Criterion) {
    let ds = dataset(200);
    let nn = NnPcc::train(&ds, &NnTrainConfig { epochs: 5, ..Default::default() });
    let gnn = GnnPcc::train(&ds, &GnnTrainConfig { epochs: 2, ..Default::default() });
    let xgb = XgbRuntime::train(&ds, &XgbTrainConfig { num_rounds: 50, ..Default::default() });
    let xgb_ss = XgboostSs::new(xgb.clone());
    let xgb_pl = XgboostPl::new(xgb);

    let models: [(&str, &dyn PccPredictor); 4] = [
        ("nn", &nn),
        ("gnn", &gnn),
        ("xgb_ss", &xgb_ss),
        ("xgb_pl", &xgb_pl),
    ];
    for (name, model) in models {
        c.bench_function(&format!("models/inference_{name}_per_job"), |b| {
            let mut idx = 0usize;
            b.iter(|| {
                let example = &ds.examples[idx % ds.len()];
                idx += 1;
                let input = ScoringInput {
                    features: &example.features,
                    op_features: &example.op_features,
                    reference_tokens: example.observed_tokens,
                };
                black_box(model.predict(&input))
            });
        });
    }
}

fn bench_xgb_train(c: &mut Criterion) {
    let ds = dataset(200);
    c.bench_function("models/xgb_train_50_rounds_200_jobs", |b| {
        b.iter(|| {
            XgbRuntime::train(
                black_box(&ds),
                &XgbTrainConfig { num_rounds: 50, ..Default::default() },
            )
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_nn_train_epoch, bench_gnn_train_epoch, bench_inference, bench_xgb_train
}
criterion_main!(benches);
