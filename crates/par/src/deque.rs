//! Bounded Chase-Lev-style work-stealing deque over plain atomics.
//!
//! Each worker owns one [`Deque`]; the owner pushes and pops at the
//! *bottom*, thieves steal from the *top*. The memory-ordering discipline
//! follows Lê et al., "Correct and Efficient Work-Stealing for Weak Memory
//! Models" (PPoPP 2013), with one simplification that keeps the whole
//! structure in safe Rust: items are plain `u64`s (the runtime packs
//! `[lo, hi)` index ranges into one word), stored in a fixed ring of
//! `AtomicU64` slots, so no buffer growth, no raw pointers and no
//! `unsafe` are needed.
//!
//! Boundedness is sound for the runtime's usage: a worker's deque only
//! ever holds the O(log n) suffix halves it published while splitting one
//! range, and [`Deque::push`] signals fullness instead of overwriting —
//! the caller then just processes the range inline. A slot can only be
//! recycled by `push` after `top` has advanced past it, and a stale thief
//! CAS on `top` fails by monotonicity, so a successful steal always
//! returns the value that was published for that index.

use std::sync::atomic::{fence, AtomicIsize, AtomicU64, Ordering};

/// Ring capacity. Range splitting adds at most ~log2(n) entries per
/// deque, so 64 slots cover any input this workspace can address.
const CAPACITY: usize = 64;

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal {
    /// Got an item from the top of the victim's deque.
    Success(u64),
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; try again.
    Retry,
}

/// One worker's bounded deque of packed index ranges.
pub struct Deque {
    top: AtomicIsize,
    bottom: AtomicIsize,
    buf: Box<[AtomicU64]>,
}

impl Default for Deque {
    fn default() -> Self {
        Self::new()
    }
}

impl Deque {
    /// Empty deque with the fixed ring capacity.
    pub fn new() -> Self {
        let buf: Vec<AtomicU64> = (0..CAPACITY).map(|_| AtomicU64::new(0)).collect();
        Self {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buf: buf.into_boxed_slice(),
        }
    }

    /// Pre-fill with a single item before the deque is shared with any
    /// other thread (no synchronization needed at that point).
    pub fn seed_initial(&self, v: u64) {
        self.buf[0].store(v, Ordering::Relaxed);
        self.bottom.store(1, Ordering::Relaxed);
    }

    /// Owner-only: push `v` at the bottom. Returns `false` when the ring
    /// is full (caller keeps the work and runs it inline).
    pub fn push(&self, v: u64) -> bool {
        // ORDERING: `bottom` is only written by the owner (this thread),
        // so Relaxed reads back our own last store. `top` needs Acquire
        // to synchronize with the thief's `top` CAS release: slot
        // `t - 1` may only be recycled once the steal of it is visible,
        // otherwise the fullness check could overwrite an in-flight
        // steal's slot.
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t >= CAPACITY as isize {
            return false;
        }
        self.buf[(b as usize) % CAPACITY].store(v, Ordering::Relaxed);
        // ORDERING: release fence publishes the slot write before the
        // `bottom` store below; a thief that observes `b + 1` therefore
        // observes the slot contents (paired with the thief's SeqCst
        // fence in `steal`).
        fence(Ordering::Release);
        self.bottom.store(b + 1, Ordering::Relaxed);
        true
    }

    /// Owner-only: pop from the bottom (LIFO for locality).
    pub fn pop(&self) -> Option<u64> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        // ORDERING: the SeqCst fence makes the `bottom` decrement and the
        // `top` read below a single point in the total order against the
        // matching fence in `steal`. Without it, owner and thief could
        // each read the *old* value of the other's counter and both take
        // the same last item.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let v = self.buf[(b as usize) % CAPACITY].load(Ordering::Relaxed);
            if t == b {
                // Last item: race thieves for it via `top`.
                // ORDERING: the CAS is SeqCst so exactly one of
                // {owner, thief} wins the slot in the single total
                // order; Relaxed on failure is enough because a lost
                // race only means "a thief already took it" and we
                // restore `bottom` either way.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                if won {
                    Some(v)
                } else {
                    None
                }
            } else {
                Some(v)
            }
        } else {
            // Deque was empty; restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Any thread: steal from the top (FIFO — thieves take the oldest,
    /// largest ranges, which is what makes splitting effective).
    pub fn steal(&self) -> Steal {
        // ORDERING: Acquire on `top` observes other thieves' CAS
        // releases; the SeqCst fence orders this load against the
        // `bottom` read so the emptiness check pairs with the owner's
        // fence in `pop` (see there). Acquire on `bottom` pairs with the
        // owner's release fence in `push`, making the slot contents for
        // every index below `b` visible before we read them.
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t < b {
            let v = self.buf[(t as usize) % CAPACITY].load(Ordering::Relaxed);
            // ORDERING: SeqCst success makes the claim of index `t`
            // globally ordered against the owner's last-item CAS; a
            // failed CAS (Relaxed) means someone else advanced `top`
            // first and `v` must be discarded, hence `Retry`.
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                Steal::Success(v)
            } else {
                Steal::Retry
            }
        } else {
            Steal::Empty
        }
    }

    /// Observed length (approximate under concurrency; exact when quiesced).
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Acquire);
        let t = self.top.load(Ordering::Acquire);
        (b - t).max(0) as usize
    }

    /// Whether the deque is observed empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as SharedCounter;

    #[test]
    fn push_pop_lifo() {
        let d = Deque::new();
        assert!(d.is_empty());
        assert!(d.push(1));
        assert!(d.push(2));
        assert!(d.push(3));
        assert_eq!(d.len(), 3);
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), Some(1));
        assert_eq!(d.pop(), None);
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn steal_fifo() {
        let d = Deque::new();
        d.push(10);
        d.push(20);
        assert_eq!(d.steal(), Steal::Success(10));
        assert_eq!(d.steal(), Steal::Success(20));
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn push_reports_full() {
        let d = Deque::new();
        for i in 0..CAPACITY as u64 {
            assert!(d.push(i));
        }
        assert!(!d.push(999));
        assert_eq!(d.steal(), Steal::Success(0));
        assert!(d.push(999));
    }

    #[test]
    fn seed_initial_then_steal() {
        let d = Deque::new();
        d.seed_initial(42);
        assert_eq!(d.len(), 1);
        assert_eq!(d.steal(), Steal::Success(42));
    }

    #[test]
    fn concurrent_owner_and_thieves_conserve_items() {
        // Owner pushes 1..=N and pops; two thieves steal. Every item must
        // be consumed exactly once (sum check).
        const N: u64 = 20_000;
        let d = Deque::new();
        let consumed = SharedCounter::new(0);
        let done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let d = &d;
                let consumed = &consumed;
                let done = &done;
                s.spawn(move || loop {
                    match d.steal() {
                        Steal::Success(v) => {
                            consumed.fetch_add(v, Ordering::Relaxed);
                        }
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) && d.is_empty() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let mut next = 1u64;
            while next <= N {
                if d.push(next) {
                    next += 1;
                } else {
                    // Ring full: drain one ourselves.
                    if let Some(v) = d.pop() {
                        consumed.fetch_add(v, Ordering::Relaxed);
                    }
                }
            }
            while let Some(v) = d.pop() {
                consumed.fetch_add(v, Ordering::Relaxed);
            }
            done.store(true, Ordering::Release);
        });
        assert_eq!(consumed.load(Ordering::Relaxed), N * (N + 1) / 2);
    }
}
