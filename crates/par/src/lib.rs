//! # tasq-par — deterministic work-stealing runtime for the offline pipeline
//!
//! TASQ's offline loop (flighting every sampled job at several token
//! counts, featurizing plans, fitting k-means/GBDT/NN models) is
//! embarrassingly parallel, but this build environment has no access to
//! crates.io, so rayon is unavailable. This crate implements the needed
//! slice of a data-parallel runtime from scratch on top of `std::thread`:
//!
//! * [`Pool`] — a thread-count handle whose [`Pool::par_map`] /
//!   [`Pool::par_for_chunks`] fan work out over Chase-Lev-style bounded
//!   per-worker deques ([`deque`]): each worker owns a deque of index
//!   ranges, pops from the bottom, and steals from the top of its peers.
//! * [`Pool::scope`] — a crossbeam-style scoped spawn API backed by a
//!   shared injector queue, for heterogeneous task sets.
//! * Panic capture — worker panics never cross the pool boundary; they
//!   are converted into a typed [`ParError`] carrying the lowest task
//!   index observed panicking and the panic message.
//!
//! ## Determinism contract
//!
//! Scheduling order is nondeterministic (thieves race), but **results are
//! not**: every input index owns exactly one output slot, tasks may only
//! read shared inputs and write their own slot, and any randomness must be
//! pre-split per task from a base seed (see `tasq_ml::rand_ext::split_seed`)
//! rather than drawn from a shared stream. Under that contract a
//! `par_map` at any thread count is bit-identical to the sequential map,
//! which is what the workspace's same-seed reproducibility tests assert.

#![warn(missing_docs)]

pub mod deque;

use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use deque::{Deque, Steal};
use parking_lot::Mutex;
use tasq_obs::{span_with_parent, Counter, FieldValue, Level, Registry};

/// Registry-backed runtime counters. Handles are registered once and
/// incremented with relaxed atomics — steal-loop instrumentation stays
/// off every lock. The counts are scheduling telemetry only; results are
/// bit-identical whatever they read.
struct ParMetrics {
    tasks: Counter,
    steals: Counter,
    steal_retries: Counter,
    overflow: Counter,
}

fn metrics() -> &'static ParMetrics {
    static METRICS: std::sync::OnceLock<ParMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = Registry::global();
        ParMetrics {
            tasks: registry
                .counter("par_tasks_total", "Items executed by the work-stealing runtime"),
            steals: registry
                .counter("par_steals_total", "Ranges successfully stolen from a peer deque"),
            steal_retries: registry
                .counter("par_steal_retries_total", "Contended steal attempts that retried"),
            overflow: registry.counter(
                "par_overflow_total",
                "Deque-full pushes: the range ran inline instead of becoming stealable",
            ),
        }
    })
}

/// Error produced when parallel work fails.
///
/// The runtime never lets a worker panic escape: the first panicking task
/// (lowest input index among observed panics, for stable reporting) is
/// captured and surfaced as a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParError {
    /// A task panicked. `index` is the input index (for `par_map` /
    /// `par_for_chunks`) or the spawn sequence number (for `scope`).
    TaskPanicked {
        /// Input index / spawn sequence of the panicking task.
        index: usize,
        /// Stringified panic payload.
        message: String,
    },
    /// A worker thread died without delivering its results and without
    /// recording a panic. This indicates a bug in the runtime itself.
    ResultMissing {
        /// Input index whose output slot was never filled.
        index: usize,
    },
}

impl fmt::Display for ParError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TaskPanicked { index, message } => {
                write!(f, "parallel task {index} panicked: {message}")
            }
            Self::ResultMissing { index } => {
                write!(f, "no result delivered for task {index} (runtime bug)")
            }
        }
    }
}

impl std::error::Error for ParError {}

/// Render a panic payload as text (the common `&str` / `String` payloads;
/// anything else gets a placeholder).
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// First-panic recorder shared by all workers of one parallel call.
///
/// Keeps the panic with the lowest task index so the reported error does
/// not depend on scheduling when a single task is at fault.
#[derive(Default)]
struct PanicSlot {
    slot: Mutex<Option<(usize, String)>>,
}

impl PanicSlot {
    fn record(&self, index: usize, payload: Box<dyn Any + Send>) {
        let message = panic_message(payload.as_ref());
        let mut slot = self.slot.lock();
        match &*slot {
            Some((prev, _)) if *prev <= index => {}
            _ => *slot = Some((index, message)),
        }
    }

    fn take(&self) -> Option<(usize, String)> {
        self.slot.lock().take()
    }
}

/// A work-stealing pool configured for a fixed number of threads.
///
/// The handle itself is cheap (worker threads are spawned per call and
/// joined before the call returns, so borrowed inputs need no `'static`
/// bound). `Pool::new(1)` (or [`Pool::sequential`]) runs everything inline
/// on the calling thread with identical results and error semantics.
#[derive(Debug, Clone)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Self::with_available_parallelism()
    }
}

/// Encoded `[lo, hi)` index ranges flow through the deques as `u64`s.
fn encode_range(lo: usize, hi: usize) -> u64 {
    ((lo as u64) << 32) | (hi as u64)
}

fn decode_range(v: u64) -> (usize, usize) {
    ((v >> 32) as usize, (v & 0xFFFF_FFFF) as usize)
}

/// Shared state for one `par_map` call.
struct MapShared {
    deques: Vec<Deque>,
    /// Items not yet completed; workers exit when this hits zero.
    remaining: AtomicUsize,
    /// Set on the first panic; workers drain out promptly.
    abort: AtomicBool,
    panic: PanicSlot,
    /// Span open on the submitting thread when the call was made; worker
    /// task spans parent onto it across the thread boundary.
    parent_span: u64,
}

impl Pool {
    /// Pool over `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self { threads: threads.max(1) }
    }

    /// Single-threaded pool: every call runs inline on the caller.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// Pool sized to `std::thread::available_parallelism()`.
    pub fn with_available_parallelism() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self::new(threads)
    }

    /// Number of worker threads this pool fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Map `f` over `items` in parallel, returning outputs in input order.
    ///
    /// `f` receives `(index, &item)`; output slot `i` is written exactly
    /// once by whichever worker executes task `i`, so the returned vector
    /// is bit-identical to `items.iter().enumerate().map(..).collect()`
    /// regardless of thread count. The chunk grain is chosen
    /// automatically; use [`Pool::par_map_grain`] to control it.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Result<Vec<U>, ParError>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        let grain = (items.len() / (self.threads * 4)).max(1);
        self.par_map_grain(items, grain, f)
    }

    /// [`Pool::par_map`] with an explicit splitting grain: ranges longer
    /// than `grain` are halved and the upper half made stealable.
    pub fn par_map_grain<T, U, F>(
        &self,
        items: &[T],
        grain: usize,
        f: F,
    ) -> Result<Vec<U>, ParError>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let grain = grain.max(1);
        // Ranges are packed into u64 halves; gigantic inputs (never hit by
        // this workspace) take the inline path instead of overflowing.
        if self.threads == 1 || n <= grain || n > u32::MAX as usize {
            let _task_span = span_with_parent(
                Level::Trace,
                "par_task",
                tasq_obs::current_span_id(),
                &[
                    ("lo", FieldValue::U64(0)),
                    ("hi", FieldValue::U64(n as u64)),
                    ("inline", FieldValue::Bool(true)),
                ],
            );
            let mut out = Vec::with_capacity(n);
            for (i, item) in items.iter().enumerate() {
                match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                    Ok(v) => out.push(v),
                    Err(payload) => {
                        return Err(ParError::TaskPanicked {
                            index: i,
                            message: panic_message(payload.as_ref()),
                        })
                    }
                }
            }
            metrics().tasks.add(n as u64);
            return Ok(out);
        }

        let workers = self.threads.min(n);
        let deques: Vec<Deque> = (0..workers)
            .map(|w| {
                let lo = w * n / workers;
                let hi = (w + 1) * n / workers;
                let d = Deque::new();
                if lo < hi {
                    d.seed_initial(encode_range(lo, hi));
                }
                d
            })
            .collect();
        let shared = MapShared {
            deques,
            remaining: AtomicUsize::new(n),
            abort: AtomicBool::new(false),
            panic: PanicSlot::default(),
            parent_span: tasq_obs::current_span_id(),
        };

        let partials: Vec<Vec<(usize, U)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let shared = &shared;
                    let f = &f;
                    s.spawn(move || map_worker(w, shared, items, f, grain))
                })
                .collect();
            // Worker bodies catch every task panic, so join() only fails
            // on a runtime bug; a lost partial surfaces as ResultMissing.
            handles.into_iter().map(|h| h.join().unwrap_or_default()).collect()
        });

        if let Some((index, message)) = shared.panic.take() {
            return Err(ParError::TaskPanicked { index, message });
        }
        let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
        for part in partials {
            for (i, v) in part {
                slots[i] = Some(v);
            }
        }
        let mut out = Vec::with_capacity(n);
        for (i, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(v) => out.push(v),
                None => return Err(ParError::ResultMissing { index: i }),
            }
        }
        Ok(out)
    }

    /// Run `f` over consecutive `chunk_len`-sized mutable chunks of `data`
    /// in parallel. `f` receives `(chunk_index, chunk)`; chunks are
    /// disjoint, so no synchronization is needed inside `f`. This is the
    /// building block for the blocked row-parallel gemm in `tasq-ml`.
    pub fn par_for_chunks<T, F>(
        &self,
        data: &mut [T],
        chunk_len: usize,
        f: F,
    ) -> Result<(), ParError>
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let chunk_len = chunk_len.max(1);
        if self.threads == 1 || data.len() <= chunk_len {
            for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(i, chunk))) {
                    return Err(ParError::TaskPanicked {
                        index: i,
                        message: panic_message(payload.as_ref()),
                    });
                }
            }
            return Ok(());
        }
        // Hand each chunk to exactly one task through a take-once slot;
        // the deques deliver every index exactly once, so the lock is
        // uncontended and exists only to move `&mut` across threads safely.
        let slots: Vec<Mutex<Option<&mut [T]>>> =
            data.chunks_mut(chunk_len).map(|c| Mutex::new(Some(c))).collect();
        self.par_map_grain(&slots, 1, |i, slot| {
            if let Some(chunk) = slot.lock().take() {
                f(i, chunk);
            }
        })
        .map(|_| ())
    }

    /// Crossbeam-style scope: `body` may spawn heterogeneous tasks that
    /// borrow from the caller's stack; all tasks complete (or are
    /// abandoned after a panic) before `scope` returns. A task panic is
    /// returned as [`ParError::TaskPanicked`] with the spawn sequence
    /// number of the first (lowest-sequence) panicking task.
    pub fn scope<'env, F, R>(&self, body: F) -> Result<R, ParError>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let shared = ScopeShared {
            queue: Mutex::new(VecDeque::new()),
            pending: AtomicUsize::new(0),
            done: AtomicBool::new(false),
            abort: AtomicBool::new(false),
            panic: PanicSlot::default(),
            next_seq: AtomicUsize::new(0),
            parent_span: tasq_obs::current_span_id(),
        };
        let result = std::thread::scope(|s| {
            for _ in 1..self.threads {
                let shared = &shared;
                s.spawn(move || scope_worker(shared));
            }
            let r = body(&Scope { shared: &shared });
            shared.done.store(true, Ordering::Release);
            // The caller drains alongside the helpers (and is the only
            // executor when the pool is sequential).
            scope_worker(&shared);
            r
        });
        if let Some((index, message)) = shared.panic.take() {
            return Err(ParError::TaskPanicked { index, message });
        }
        Ok(result)
    }
}

type ScopeTask<'env> = Box<dyn FnOnce() + Send + 'env>;

struct ScopeShared<'env> {
    queue: Mutex<VecDeque<(usize, ScopeTask<'env>)>>,
    pending: AtomicUsize,
    done: AtomicBool,
    abort: AtomicBool,
    panic: PanicSlot,
    next_seq: AtomicUsize,
    /// Span open on the thread that entered [`Pool::scope`]; task spans
    /// parent onto it from whichever worker runs them.
    parent_span: u64,
}

/// Spawn handle passed to the closure given to [`Pool::scope`].
pub struct Scope<'sc, 'env> {
    shared: &'sc ScopeShared<'env>,
}

impl<'sc, 'env> Scope<'sc, 'env> {
    /// Queue `f` for execution by the scope's workers. Tasks run in an
    /// unspecified order and must follow the determinism contract (own
    /// their outputs, pre-split their seeds).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let seq = self.shared.next_seq.fetch_add(1, Ordering::Relaxed);
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        self.shared.queue.lock().push_back((seq, Box::new(f)));
    }
}

fn scope_worker(shared: &ScopeShared<'_>) {
    loop {
        let task = shared.queue.lock().pop_front();
        match task {
            Some((seq, t)) => {
                if shared.abort.load(Ordering::Acquire) {
                    // A task already panicked: drop remaining tasks
                    // without running them so the scope unwinds quickly.
                    shared.pending.fetch_sub(1, Ordering::AcqRel);
                    continue;
                }
                let task_span = span_with_parent(
                    Level::Trace,
                    "par_scope_task",
                    shared.parent_span,
                    &[("seq", FieldValue::U64(seq as u64))],
                );
                if let Err(payload) = catch_unwind(AssertUnwindSafe(t)) {
                    shared.panic.record(seq, payload);
                    shared.abort.store(true, Ordering::Release);
                }
                drop(task_span);
                metrics().tasks.inc();
                shared.pending.fetch_sub(1, Ordering::AcqRel);
            }
            None => {
                if shared.done.load(Ordering::Acquire)
                    && shared.pending.load(Ordering::Acquire) == 0
                {
                    break;
                }
                std::thread::yield_now();
            }
        }
    }
}

fn map_worker<T, U, F>(
    me: usize,
    shared: &MapShared,
    items: &[T],
    f: &F,
    grain: usize,
) -> Vec<(usize, U)>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let mut local: Vec<(usize, U)> = Vec::new();
    let workers = shared.deques.len();
    'outer: loop {
        if shared.abort.load(Ordering::Acquire) {
            break;
        }
        if let Some(range) = shared.deques[me].pop() {
            process_range(me, range, shared, items, f, grain, &mut local);
            continue;
        }
        for off in 1..workers {
            let victim = (me + off) % workers;
            let mut spins = 0;
            loop {
                match shared.deques[victim].steal() {
                    Steal::Success(range) => {
                        metrics().steals.inc();
                        process_range(me, range, shared, items, f, grain, &mut local);
                        continue 'outer;
                    }
                    Steal::Empty => break,
                    Steal::Retry => {
                        metrics().steal_retries.inc();
                        spins += 1;
                        if spins > 16 {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
            }
        }
        if shared.remaining.load(Ordering::Acquire) == 0 {
            break;
        }
        std::thread::yield_now();
    }
    local
}

/// Execute one stolen/popped range: repeatedly publish the upper half for
/// stealing while the range is longer than `grain`, then run the kept
/// prefix inline. If the deque is full (bounded buffer), the rest of the
/// range simply runs inline — correctness never depends on a push landing.
#[allow(clippy::too_many_arguments)]
fn process_range<T, U, F>(
    me: usize,
    range: u64,
    shared: &MapShared,
    items: &[T],
    f: &F,
    grain: usize,
    local: &mut Vec<(usize, U)>,
) where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let (lo, mut hi) = decode_range(range);
    while hi - lo > grain {
        let mid = lo + (hi - lo) / 2;
        if !shared.deques[me].push(encode_range(mid, hi)) {
            metrics().overflow.inc();
            break;
        }
        hi = mid;
    }
    let _task_span = span_with_parent(
        Level::Trace,
        "par_task",
        shared.parent_span,
        &[
            ("lo", FieldValue::U64(lo as u64)),
            ("hi", FieldValue::U64(hi as u64)),
            ("worker", FieldValue::U64(me as u64)),
        ],
    );
    let mut executed = 0u64;
    for (i, item) in items.iter().enumerate().take(hi).skip(lo) {
        if shared.abort.load(Ordering::Relaxed) {
            break;
        }
        match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
            Ok(v) => {
                local.push((i, v));
                executed += 1;
                shared.remaining.fetch_sub(1, Ordering::AcqRel);
            }
            Err(payload) => {
                shared.panic.record(i, payload);
                shared.abort.store(true, Ordering::Release);
                break;
            }
        }
    }
    metrics().tasks.add(executed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_matches_sequential_order() {
        let items: Vec<u64> = (0..997).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 4, 8] {
            let pool = Pool::new(threads);
            let got = pool.par_map(&items, |_, &x| x * x + 1).unwrap();
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_map_grain_one_forces_stealing() {
        let items: Vec<usize> = (0..64).collect();
        let pool = Pool::new(4);
        let got = pool.par_map_grain(&items, 1, |i, &x| i + x).unwrap();
        let expected: Vec<usize> = (0..64).map(|i| 2 * i).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn par_map_is_repeatable() {
        let items: Vec<u64> = (0..300).collect();
        let pool = Pool::new(4);
        let first = pool.par_map(&items, |i, &x| x.wrapping_mul(31).wrapping_add(i as u64));
        for _ in 0..5 {
            let again = pool.par_map(&items, |i, &x| x.wrapping_mul(31).wrapping_add(i as u64));
            assert_eq!(first, again);
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let pool = Pool::new(4);
        let empty: Vec<u32> = Vec::new();
        assert_eq!(pool.par_map(&empty, |_, &x| x).unwrap(), Vec::<u32>::new());
        assert_eq!(pool.par_map(&[7u32], |_, &x| x + 1).unwrap(), vec![8]);
    }

    #[test]
    fn par_map_propagates_panic_with_index() {
        let items: Vec<u32> = (0..50).collect();
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            let err = pool
                .par_map(&items, |_, &x| {
                    assert!(x != 33, "boom at {x}");
                    x
                })
                .unwrap_err();
            match err {
                ParError::TaskPanicked { index, message } => {
                    assert_eq!(index, 33, "threads={threads}");
                    assert!(message.contains("boom at 33"), "message={message}");
                }
                other => panic!("unexpected error: {other:?}"),
            }
        }
    }

    #[test]
    fn par_for_chunks_writes_disjoint_chunks() {
        let mut data = vec![0u64; 1000];
        let pool = Pool::new(4);
        pool.par_for_chunks(&mut data, 64, |ci, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (ci * 64 + j) as u64;
            }
        })
        .unwrap();
        let expected: Vec<u64> = (0..1000).collect();
        assert_eq!(data, expected);
    }

    #[test]
    fn scope_runs_every_spawn_and_borrows() {
        let counter = AtomicU64::new(0);
        let pool = Pool::new(4);
        pool.scope(|s| {
            for i in 0..100u64 {
                let counter = &counter;
                s.spawn(move || {
                    counter.fetch_add(i, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 99 * 100 / 2);
    }

    #[test]
    fn scope_propagates_panic() {
        let pool = Pool::new(2);
        let err = pool
            .scope(|s| {
                s.spawn(|| {});
                s.spawn(|| panic!("scope task exploded"));
            })
            .unwrap_err();
        match err {
            ParError::TaskPanicked { message, .. } => {
                assert!(message.contains("scope task exploded"));
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn sequential_pool_is_inline() {
        let pool = Pool::sequential();
        assert_eq!(pool.threads(), 1);
        let got = pool.par_map(&[1u8, 2, 3], |i, &x| (i as u8) + x).unwrap();
        assert_eq!(got, vec![1, 3, 5]);
    }

    #[test]
    fn worker_spans_parent_onto_caller_and_survive_panics() {
        tasq_obs::set_subscriber(None, true);
        let _ = tasq_obs::span::take_collected();
        let root = tasq_obs::span(Level::Info, "par_root", &[]);
        let root_id = root.id();
        let pool = Pool::new(4);
        let items: Vec<usize> = (0..64).collect();
        let doubled = pool.par_map_grain(&items, 1, |i, &x| i + x).unwrap();
        assert_eq!(doubled.len(), 64);
        // A captured task panic must not corrupt the caller's span stack.
        let err = pool
            .par_map_grain(&items, 1, |i, &x| {
                assert!(i != 10, "instrumented boom");
                x
            })
            .unwrap_err();
        assert!(matches!(err, ParError::TaskPanicked { index: 10, .. }));
        assert_eq!(tasq_obs::current_span_id(), root_id);
        drop(root);
        let events = tasq_obs::span::take_collected();
        tasq_obs::subscriber_off();
        let root_event = events.iter().find(|e| e.name == "par_root").unwrap();
        let tasks: Vec<_> = events.iter().filter(|e| e.name == "par_task").collect();
        assert!(!tasks.is_empty());
        assert!(tasks.iter().all(|t| t.parent == root_id), "workers parent onto the caller");
        assert!(tasks.iter().all(|t| t.start_us >= root_event.start_us));
        assert!(metrics().tasks.get() >= 64);
    }

    #[test]
    fn error_display_is_informative() {
        let e = ParError::TaskPanicked { index: 4, message: "oops".into() };
        assert!(e.to_string().contains("task 4"));
        assert!(e.to_string().contains("oops"));
    }
}
