//! Hot-swappable model registry.
//!
//! Production scoring cannot stop for a retrain: a new model version is
//! registered in the [`ModelStore`], validated against probe jobs, and
//! only then swapped in — atomically, so concurrent scorers never observe
//! a half-updated deployment. Validation failure (undeployable artifact,
//! non-finite or degraded predictions) leaves the previous version
//! serving untouched: rollback is the *absence* of the swap, which makes
//! torn states impossible by construction.
//!
//! The swap itself is epoch-style: the whole deployment (service + its
//! provenance) lives in one [`Arc`] behind a [`parking_lot::RwLock`];
//! readers clone the `Arc` under a read lock and keep scoring against
//! their snapshot even while a writer replaces the pointer. Each
//! successful swap bumps a `generation`, which the serving cache mixes
//! into its keys so stale cached predictions become unreachable.
//!
//! For crash recovery, a registry can be opened *durably*
//! ([`ModelRegistry::deploy_durable`]): every probe-validated deployment
//! is appended to a WAL-style manifest (a `tasq-resil` CRC-framed
//! [`FrameLog`]) **before** it starts serving. On restart the manifest
//! replays to the last durable record — a torn tail from a crash
//! mid-append is trimmed back to the previous record, a corrupt frame
//! (CRC mismatch) refuses recovery outright — and generation numbering
//! resumes from there, so cache keys from a previous process life can
//! never alias a post-restart deployment.

use parking_lot::{Mutex, RwLock};
use scope_sim::Job;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tasq::pipeline::{
    DeployError, ModelChoice, ModelStore, ScoringConfig, ScoringService, ServedTier,
    NN_MODEL_NAME, XGB_MODEL_NAME,
};
use tasq_resil::{FrameLog, ResilError};

/// One immutable deployment: the scoring service plus its provenance.
pub struct ActiveModel {
    service: ScoringService,
    /// Model family served as the primary tier.
    pub choice: ModelChoice,
    /// Store version of the primary artifact backing this deployment.
    pub version: u32,
    /// Monotone deployment counter (1 for the initial deploy).
    pub generation: u64,
}

impl ActiveModel {
    /// The scoring service of this deployment.
    pub fn service(&self) -> &ScoringService {
        &self.service
    }
}

impl fmt::Debug for ActiveModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ActiveModel")
            .field("choice", &self.choice)
            .field("version", &self.version)
            .field("generation", &self.generation)
            .finish_non_exhaustive()
    }
}

/// Why a hot-swap was refused (the previous deployment keeps serving).
#[derive(Debug)]
pub enum SwapError {
    /// The candidate artifact could not be deployed at all.
    Deploy(DeployError),
    /// The candidate deployed but failed probe validation.
    Validation {
        /// Probes scored.
        probes: usize,
        /// Probes whose response failed the checks.
        failures: usize,
        /// First observed failure, for the operator.
        detail: String,
    },
    /// The durable manifest could not record the swap; without a durable
    /// record the swap is not performed and the previous deployment
    /// keeps serving (write-ahead semantics).
    Manifest(String),
}

impl fmt::Display for SwapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwapError::Deploy(e) => write!(f, "hot-swap rejected: {e}"),
            SwapError::Validation { probes, failures, detail } => {
                write!(f, "hot-swap rejected: {failures}/{probes} probe failures ({detail})")
            }
            SwapError::Manifest(detail) => {
                write!(f, "hot-swap rejected: manifest append failed ({detail})")
            }
        }
    }
}

impl std::error::Error for SwapError {}

impl From<DeployError> for SwapError {
    fn from(e: DeployError) -> Self {
        SwapError::Deploy(e)
    }
}

/// One durable manifest entry: a deployment that passed probe validation
/// and was (or is about to start) serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestRecord {
    /// Generation of the deployment (monotone across process restarts).
    pub generation: u64,
    /// Model family served as the primary tier.
    pub choice: ModelChoice,
    /// Store version of the primary artifact.
    pub version: u32,
}

/// Why a durable deployment could not start.
#[derive(Debug)]
pub enum DurableDeployError {
    /// The artifact itself could not be deployed.
    Deploy(DeployError),
    /// The manifest could not be recovered or written. A corrupt frame
    /// (CRC mismatch on a non-tail frame) lands here: recovery refuses to
    /// guess and the operator must intervene. A merely *torn* tail does
    /// not — it is trimmed to the last durable record automatically.
    Manifest(ResilError),
}

impl fmt::Display for DurableDeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableDeployError::Deploy(e) => write!(f, "durable deploy failed: {e}"),
            DurableDeployError::Manifest(e) => {
                write!(f, "durable deploy failed: manifest unusable ({e})")
            }
        }
    }
}

impl std::error::Error for DurableDeployError {}

impl From<DeployError> for DurableDeployError {
    fn from(e: DeployError) -> Self {
        DurableDeployError::Deploy(e)
    }
}

fn decode_record(payload: &[u8]) -> Result<ManifestRecord, ResilError> {
    tasq::codec::from_bytes(payload).map_err(|_| ResilError::Decode { context: "manifest record" })
}

fn encode_record(record: &ManifestRecord) -> Result<Vec<u8>, ResilError> {
    tasq::codec::to_bytes(record)
        .map(|bytes| bytes.to_vec())
        .map_err(|_| ResilError::Decode { context: "manifest record" })
}

/// The registry: one active deployment, swappable under traffic.
pub struct ModelRegistry {
    active: RwLock<Arc<ActiveModel>>,
    swaps: AtomicU64,
    rollbacks: AtomicU64,
    /// WAL-style deployment manifest (durable registries only).
    manifest: Option<Mutex<FrameLog>>,
}

/// Store name of the artifact backing a model choice's primary tier.
fn primary_artifact_name(choice: ModelChoice) -> &'static str {
    match choice {
        ModelChoice::Nn => NN_MODEL_NAME,
        ModelChoice::XgboostSs | ModelChoice::XgboostPl => XGB_MODEL_NAME,
    }
}

fn latest_version(store: &ModelStore, choice: ModelChoice) -> u32 {
    store.versions(primary_artifact_name(choice)).last().copied().unwrap_or(0)
}

/// Token grid on which deploy probes sample the candidate's primary
/// curve: doubling steps across the service's configured search range.
fn probe_grid(config: &ScoringConfig) -> Vec<u32> {
    let mut grid = Vec::new();
    let mut tokens = config.min_tokens.max(1);
    let max = config.max_tokens.max(tokens);
    while tokens < max && grid.len() < 16 {
        grid.push(tokens);
        tokens = tokens.saturating_mul(2);
    }
    grid.push(max);
    grid
}

/// Probe-validate a candidate deployment. Two audits per probe job, both
/// of which must pass:
///
/// 1. **Curve invariants** — the *raw primary* prediction, sampled on a
///    token grid via [`ScoringService::primary_curve`], must satisfy the
///    PCC contract ([`tasq::validate::validate_curve`]): finite, positive,
///    and monotone non-increasing within [`tasq::validate::CURVE_TOLERANCE`].
///    This is checked before the response because serve-time degradation
///    would otherwise mask a broken primary behind a healthy fallback.
/// 2. **Response sanity** — the scored response must be finite, allocate
///    at least one token, and be served by the *primary* tier — a model
///    that immediately degrades to its fallback is not an upgrade.
fn validate(service: &ScoringService, probes: &[Job]) -> Result<(), SwapError> {
    let grid = probe_grid(service.config());
    let mut failures = 0usize;
    let mut detail = String::new();
    for job in probes {
        let curve_reason = service.primary_curve(job, &grid).and_then(|curve| {
            tasq::validate::validate_curve(&curve, tasq::validate::CURVE_TOLERANCE)
                .err()
                .map(|violations| format!("primary curve failed its audit: {}", violations[0]))
        });
        let reason = curve_reason.or_else(|| {
            let response = service.score(job);
            if !response.predicted_runtime_at_request.is_finite() {
                Some("non-finite runtime prediction".to_string())
            } else if response.optimal_tokens == 0 {
                Some("zero-token allocation".to_string())
            } else if response.served_tier != ServedTier::Primary {
                Some(format!("served by {:?} tier, not Primary", response.served_tier))
            } else {
                None
            }
        });
        if let Some(reason) = reason {
            failures += 1;
            if detail.is_empty() {
                detail = format!("job {}: {reason}", job.id);
            }
        }
    }
    if failures > 0 {
        Err(SwapError::Validation { probes: probes.len(), failures, detail })
    } else {
        Ok(())
    }
}

impl ModelRegistry {
    /// Initial deployment from a store. Fails when the primary artifact
    /// cannot be loaded (same contract as [`ScoringService::deploy`]).
    pub fn deploy(
        store: &ModelStore,
        choice: ModelChoice,
        config: ScoringConfig,
    ) -> Result<Self, DeployError> {
        let service = ScoringService::deploy(store, choice, config)?;
        let active = ActiveModel {
            service,
            choice,
            version: latest_version(store, choice),
            generation: 1,
        };
        Ok(Self {
            active: RwLock::new(Arc::new(active)),
            swaps: AtomicU64::new(0),
            rollbacks: AtomicU64::new(0),
            manifest: None,
        })
    }

    /// Deploy with a durable WAL-style manifest at `manifest_path`.
    ///
    /// The manifest is replayed first: generation numbering resumes after
    /// the last durable record (a fresh manifest starts at 1), so a
    /// restarted server can never reuse a generation a previous process
    /// life already served under. The new deployment is appended to the
    /// manifest *before* it starts serving; every subsequent successful
    /// [`ModelRegistry::hot_swap`] is likewise logged ahead of the swap.
    ///
    /// A torn manifest tail (crash mid-append) is trimmed to the last
    /// durable record; a corrupt manifest (CRC mismatch, foreign magic)
    /// is refused with [`DurableDeployError::Manifest`].
    pub fn deploy_durable(
        store: &ModelStore,
        choice: ModelChoice,
        config: ScoringConfig,
        manifest_path: &Path,
    ) -> Result<Self, DurableDeployError> {
        let (mut log, recovery) =
            FrameLog::open_or_create(manifest_path).map_err(DurableDeployError::Manifest)?;
        let last = recovery
            .last()
            .map(|frame| decode_record(&frame.payload))
            .transpose()
            .map_err(DurableDeployError::Manifest)?;
        let service = ScoringService::deploy(store, choice, config)?;
        let generation = last.map_or(1, |record| record.generation + 1);
        let version = latest_version(store, choice);
        let record = ManifestRecord { generation, choice, version };
        let payload = encode_record(&record).map_err(DurableDeployError::Manifest)?;
        log.append(&payload).map_err(DurableDeployError::Manifest)?;
        let active = ActiveModel { service, choice, version, generation };
        Ok(Self {
            active: RwLock::new(Arc::new(active)),
            swaps: AtomicU64::new(0),
            rollbacks: AtomicU64::new(0),
            manifest: Some(Mutex::new(log)),
        })
    }

    /// Replay a manifest (read-only) to its last durable record, without
    /// opening a registry. `Ok(None)` when no manifest exists yet; a
    /// corrupt manifest is refused with the typed error.
    pub fn last_manifest_record(
        manifest_path: &Path,
    ) -> Result<Option<ManifestRecord>, ResilError> {
        match tasq_resil::frame::recover(manifest_path) {
            Ok(recovery) => {
                recovery.last().map(|frame| decode_record(&frame.payload)).transpose()
            }
            Err(ResilError::NoCheckpoint) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Snapshot of the current deployment. Cheap (`Arc` clone under a
    /// read lock); the snapshot stays valid across concurrent swaps.
    pub fn current(&self) -> Arc<ActiveModel> {
        Arc::clone(&self.active.read())
    }

    /// Generation of the current deployment.
    pub fn generation(&self) -> u64 {
        self.active.read().generation
    }

    /// Successful swaps since deploy (the initial deploy is not counted).
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Refused swaps (the previous deployment kept serving).
    pub fn rollback_count(&self) -> u64 {
        self.rollbacks.load(Ordering::Relaxed)
    }

    /// Attempt to replace the active deployment with the latest artifacts
    /// for `choice`. The candidate is deployed and probe-validated *off*
    /// the serving path; only a fully validated candidate is swapped in,
    /// atomically. On any failure the previous deployment keeps serving
    /// and the error says why.
    pub fn hot_swap(
        &self,
        store: &ModelStore,
        choice: ModelChoice,
        config: ScoringConfig,
        probes: &[Job],
    ) -> Result<Arc<ActiveModel>, SwapError> {
        let candidate = match ScoringService::deploy(store, choice, config) {
            Ok(service) => service,
            Err(e) => {
                self.rollbacks.fetch_add(1, Ordering::Relaxed);
                return Err(e.into());
            }
        };
        if let Err(e) = validate(&candidate, probes) {
            self.rollbacks.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        let version = latest_version(store, choice);
        let mut active = self.active.write();
        let generation = active.generation + 1;
        if let Some(manifest) = &self.manifest {
            // Write-ahead: the swap is durable before it is observable.
            // On append failure nothing swaps, so the manifest can lag
            // reality (a logged deploy that crashed before serving) but
            // never lead it with an unserved generation... which is
            // exactly what replay-then-resume-numbering tolerates.
            let record = ManifestRecord { generation, choice, version };
            let appended = encode_record(&record)
                .and_then(|payload| manifest.lock().append(&payload).map(|_| ()));
            if let Err(e) = appended {
                drop(active);
                self.rollbacks.fetch_add(1, Ordering::Relaxed);
                return Err(SwapError::Manifest(e.to_string()));
            }
        }
        let next = Arc::new(ActiveModel { service: candidate, choice, version, generation });
        *active = Arc::clone(&next);
        drop(active);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_sim::{WorkloadConfig, WorkloadGenerator};
    use tasq::models::{NnTrainConfig, XgbTrainConfig};
    use tasq::pipeline::{JobRepository, PipelineConfig, StoreError, TasqPipeline};

    fn jobs(n: usize, seed: u64) -> Vec<Job> {
        WorkloadGenerator::new(WorkloadConfig { num_jobs: n, seed, ..Default::default() })
            .generate()
    }

    fn trained_store(seed: u64) -> ModelStore {
        let repo = JobRepository::new();
        repo.ingest(jobs(20, seed));
        let store = ModelStore::new();
        TasqPipeline::new(PipelineConfig {
            xgb: XgbTrainConfig { num_rounds: 15, ..Default::default() },
            nn: NnTrainConfig { epochs: 8, ..Default::default() },
            ..Default::default()
        })
        .train(&repo, &store)
        .expect("trains");
        store
    }

    #[test]
    fn deploy_then_swap_bumps_generation_and_version() {
        let store = trained_store(41);
        let registry =
            ModelRegistry::deploy(&store, ModelChoice::Nn, ScoringConfig::default()).unwrap();
        let before = registry.current();
        assert_eq!((before.generation, before.version), (1, 1));

        // Retrain: same pipeline registers v2 artifacts.
        let repo = JobRepository::new();
        repo.ingest(jobs(20, 43));
        TasqPipeline::new(PipelineConfig {
            xgb: XgbTrainConfig { num_rounds: 15, ..Default::default() },
            nn: NnTrainConfig { epochs: 8, ..Default::default() },
            ..Default::default()
        })
        .train(&repo, &store)
        .unwrap();

        let probes = jobs(4, 45);
        let after = registry
            .hot_swap(&store, ModelChoice::Nn, ScoringConfig::default(), &probes)
            .expect("valid swap");
        assert_eq!((after.generation, after.version), (2, 2));
        assert_eq!(registry.generation(), 2);
        assert_eq!(registry.swap_count(), 1);
        assert_eq!(registry.rollback_count(), 0);
        // The pre-swap snapshot is still fully usable (epoch semantics).
        let response = before.service().score(&probes[0]);
        assert!(response.predicted_runtime_at_request.is_finite());
    }

    #[test]
    fn corrupt_new_version_rolls_back_to_the_previous_one() {
        let store = trained_store(47);
        let registry =
            ModelRegistry::deploy(&store, ModelChoice::Nn, ScoringConfig::default()).unwrap();
        // A retrain goes wrong: the new latest NN artifact is garbage.
        store.register(NN_MODEL_NAME, &0xBAAD_F00Du64).unwrap();
        let probes = jobs(3, 49);
        let err = registry
            .hot_swap(&store, ModelChoice::Nn, ScoringConfig::default(), &probes)
            .expect_err("corrupt artifact must not swap in");
        assert!(matches!(
            err,
            SwapError::Deploy(DeployError::PrimaryUnavailable {
                cause: StoreError::Corrupt { .. },
                ..
            })
        ));
        assert_eq!(registry.rollback_count(), 1);
        // The registry still serves generation 1 / version 1, correctly.
        let active = registry.current();
        assert_eq!((active.generation, active.version), (1, 1));
        let response = active.service().score(&probes[0]);
        assert_eq!(response.served_tier, ServedTier::Primary);
    }

    #[test]
    fn probe_validation_rejects_a_degraded_candidate() {
        // A candidate that can only answer from a non-primary tier (here:
        // an empty store, so every probe lands on the analytic tier) must
        // fail validation with a per-probe accounting.
        let degraded = ScoringService::deploy_degraded(
            &ModelStore::new(),
            ModelChoice::Nn,
            ScoringConfig::default(),
        );
        let err = validate(&degraded, &jobs(3, 53)).expect_err("analytic tier fails probes");
        match err {
            SwapError::Validation { probes, failures, detail } => {
                assert_eq!((probes, failures), (3, 3));
                assert!(detail.contains("Analytic"));
            }
            other => panic!("expected validation failure, got {other}"),
        }
    }

    #[test]
    fn planted_non_monotone_model_is_rejected_by_the_curve_audit() {
        use tasq::augment::AugmentConfig;
        use tasq::dataset::Dataset;
        use tasq::models::XgbRuntime;
        use tasq::pipeline::XGB_MODEL_NAME;

        let store = trained_store(59);
        let registry =
            ModelRegistry::deploy(&store, ModelChoice::XgboostPl, ScoringConfig::default())
                .unwrap();
        assert_eq!(registry.generation(), 1);

        // Poison a retrain: rewrite every augmented training point so run
        // time *rises* with tokens, then register the resulting model as
        // the new latest XGBoost artifact. Its fitted power law slopes
        // upward — exactly the PCC violation the deploy probe must catch.
        let mut dataset = Dataset::build(&jobs(20, 61), &AugmentConfig::default());
        for example in &mut dataset.examples {
            for point in &mut example.xgb_points {
                point.runtime = 10.0 + point.tokens * 5.0;
            }
        }
        let poisoned =
            XgbRuntime::train(&dataset, &XgbTrainConfig { num_rounds: 40, ..Default::default() });
        store.register(XGB_MODEL_NAME, &poisoned).unwrap();

        let probes = jobs(4, 63);
        let err = registry
            .hot_swap(&store, ModelChoice::XgboostPl, ScoringConfig::default(), &probes)
            .expect_err("rising curve must not swap in");
        match &err {
            SwapError::Validation { failures, detail, .. } => {
                assert!(*failures > 0);
                assert!(detail.contains("non-monotone"), "detail: {detail}");
            }
            other => panic!("expected a validation rejection, got {other}"),
        }
        assert_eq!(registry.rollback_count(), 1);
        // The previous (healthy) deployment keeps serving.
        let active = registry.current();
        assert_eq!((active.generation, active.version), (1, 1));
    }

    fn manifest_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tasq-manifest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn durable_registry_resumes_generation_numbering_across_restarts() {
        let dir = manifest_dir("resume");
        let path = dir.join("registry.wal");
        let store = trained_store(91);

        let first =
            ModelRegistry::deploy_durable(&store, ModelChoice::Nn, ScoringConfig::default(), &path)
                .expect("fresh manifest");
        assert_eq!(first.generation(), 1);
        let probes = jobs(3, 93);
        first
            .hot_swap(&store, ModelChoice::Nn, ScoringConfig::default(), &probes)
            .expect("swap recorded");
        assert_eq!(first.generation(), 2);
        drop(first);

        // "Process restart": the manifest replays and numbering resumes
        // past everything a previous life served under.
        let second =
            ModelRegistry::deploy_durable(&store, ModelChoice::Nn, ScoringConfig::default(), &path)
                .expect("recovered manifest");
        assert_eq!(second.generation(), 3, "generation resumes after the last durable record");
        let last = ModelRegistry::last_manifest_record(&path).unwrap().expect("records exist");
        assert_eq!(last, ManifestRecord { generation: 3, choice: ModelChoice::Nn, version: 1 });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_manifest_recovers_last_record_and_corrupt_manifest_refuses() {
        let dir = manifest_dir("damage");
        let path = dir.join("registry.wal");
        let store = trained_store(95);
        drop(
            ModelRegistry::deploy_durable(&store, ModelChoice::Nn, ScoringConfig::default(), &path)
                .unwrap(),
        );
        drop(
            ModelRegistry::deploy_durable(&store, ModelChoice::Nn, ScoringConfig::default(), &path)
                .unwrap(),
        );
        let intact = std::fs::read(&path).unwrap();

        // A crash mid-append tears the second record: replay trims back
        // to the first, and the next deployment becomes generation 2.
        std::fs::write(&path, &intact[..intact.len() - 3]).unwrap();
        let last = ModelRegistry::last_manifest_record(&path).unwrap().expect("first record");
        assert_eq!(last.generation, 1);
        let reopened =
            ModelRegistry::deploy_durable(&store, ModelChoice::Nn, ScoringConfig::default(), &path)
                .expect("torn tail is trimmed, not fatal");
        assert_eq!(reopened.generation(), 2);
        drop(reopened);

        // Bit rot inside a committed frame is NOT recoverable: refuse.
        let mut rotten = intact.clone();
        rotten[24] ^= 0xFF; // first frame's payload (8 log header + 16 frame header)
        std::fs::write(&path, &rotten).unwrap();
        assert!(ModelRegistry::last_manifest_record(&path).is_err());
        assert!(matches!(
            ModelRegistry::deploy_durable(
                &store,
                ModelChoice::Nn,
                ScoringConfig::default(),
                &path
            ),
            Err(DurableDeployError::Manifest(e)) if e.is_corrupt()
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_readers_never_observe_a_torn_swap() {
        // Seeded interleaving loop: readers hammer `current()` and check
        // the deployment's internal consistency while a writer swaps
        // between model families as fast as it can. A torn swap would
        // surface as a generation/choice/version mismatch.
        let store = trained_store(55);
        let registry = std::sync::Arc::new(
            ModelRegistry::deploy(&store, ModelChoice::Nn, ScoringConfig::default()).unwrap(),
        );
        let probes = jobs(2, 57);
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let mut readers = Vec::new();
            for r in 0..3u64 {
                let registry = std::sync::Arc::clone(&registry);
                let probes = probes.clone();
                let stop = &stop;
                readers.push(s.spawn(move || {
                    let mut observed = Vec::new();
                    let mut spin = r;
                    loop {
                        let done = stop.load(Ordering::Relaxed);
                        let active = registry.current();
                        // Consistency: version matches the choice's
                        // artifact lineage (both families have exactly
                        // one registered version here), and generation
                        // only ever moves forward.
                        assert_eq!(active.version, 1, "torn version");
                        observed.push(active.generation);
                        // Scoring through the snapshot always works.
                        let response = active.service().score(&probes[(spin % 2) as usize]);
                        assert!(response.predicted_runtime_at_request.is_finite());
                        assert_eq!(response.served_tier, ServedTier::Primary);
                        spin = spin.wrapping_mul(6364136223846793005).wrapping_add(1);
                        if done {
                            break;
                        }
                    }
                    assert!(
                        observed.windows(2).all(|w| w[0] <= w[1]),
                        "generation went backwards"
                    );
                    observed.len()
                }));
            }
            let mut expected_generation = 1u64;
            for _ in 0..30 {
                // Redeploy the NN family repeatedly: each swap replaces
                // the whole deployment snapshot even when the artifact
                // version is unchanged (a rollout of identical bits is
                // still a new generation).
                let swapped = registry
                    .hot_swap(&store, ModelChoice::Nn, ScoringConfig::default(), &probes)
                    .expect("swap");
                expected_generation += 1;
                assert_eq!(swapped.generation, expected_generation);
                assert_eq!(swapped.choice, ModelChoice::Nn);
            }
            stop.store(true, Ordering::Relaxed);
            let total: usize = readers.into_iter().map(|h| h.join().expect("reader")).sum();
            assert!(total > 0, "readers made progress");
            assert_eq!(registry.swap_count(), 30);
        });
    }
}
