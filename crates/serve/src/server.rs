//! The concurrent scoring server.
//!
//! A bounded worker pool wraps a [`ModelRegistry`] deployment:
//!
//! 1. **Fast path** — `submit` hashes the job's plan signature and, on a
//!    cache hit, answers immediately on the caller's thread with no
//!    queueing and no model inference.
//! 2. **Batched path** — cache misses enter a bounded queue; workers
//!    coalesce them into micro-batches under a max-batch / max-delay
//!    policy, dedupe identical signatures within a batch, score against
//!    the current registry snapshot, fan results back out over per-request
//!    channels, and populate the cache.
//! 3. **Admission control** — when the queue passes the shed watermark
//!    the request is answered inline from the analytic Amdahl tier
//!    (cheap, model-free, clearly marked); at full capacity it is
//!    rejected with [`SubmitError::Overloaded`]. The queue can therefore
//!    never grow beyond its configured bound.
//!
//! All coordination is std-only (threads + mpsc channels + atomics), in
//! keeping with the workspace's vendored offline dependencies.

use crate::cache::{CacheConfig, SignatureCache};
use crate::registry::ModelRegistry;
use crate::signature::PlanSignature;
use crate::stats::{LatencyHistogram, ServerStatsSnapshot};
use parking_lot::Mutex;
use scope_sim::{EventTrace, Job, TraceOp};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, OnceLock};
use std::time::{Duration, Instant};
use tasq::pipeline::{ScoreResponse, ScoringService};
use tasq_obs::{Counter, FieldValue, Level};

/// Always-on counters mirrored into the global metrics registry so the
/// Prometheus/JSON expositions see serving activity live, without waiting
/// for a stats snapshot. Relaxed atomic increments; never contended.
struct ServeMetrics {
    submitted: Counter,
    completed: Counter,
    cache_hits: Counter,
    model_scored: Counter,
    shed: Counter,
    rejected: Counter,
    batches: Counter,
    /// Process-wide latency histogram; each server also keeps its own
    /// detached histogram for per-server snapshots.
    latency: tasq_obs::Histogram,
}

fn serve_metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = tasq_obs::Registry::global();
        ServeMetrics {
            submitted: r.counter("serve_submitted_total", "requests accepted by submit"),
            completed: r.counter("serve_completed_total", "requests answered on any path"),
            cache_hits: r
                .counter("serve_cache_hits_total", "requests answered from the signature cache"),
            model_scored: r
                .counter("serve_model_scored_total", "requests scored by the worker pool"),
            shed: r.counter("serve_shed_total", "requests shed to the analytic tier"),
            rejected: r.counter("serve_rejected_total", "requests rejected as overloaded"),
            batches: r.counter("serve_batches_total", "micro-batches executed"),
            latency: r
                .histogram("serve_latency_us", "end-to-end request latency in microseconds"),
        }
    })
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads scoring micro-batches.
    pub workers: usize,
    /// Maximum requests coalesced into one micro-batch.
    pub max_batch: usize,
    /// Maximum time a worker waits to fill a batch once it holds the
    /// first request.
    pub max_delay: Duration,
    /// Hard bound on queued (admitted but unscored) requests; beyond it
    /// `submit` returns [`SubmitError::Overloaded`].
    pub queue_capacity: usize,
    /// Queue depth at which requests shed to the analytic tier instead of
    /// queueing (set `>= queue_capacity` to disable shedding).
    pub shed_watermark: usize,
    /// Signature-cache settings.
    pub cache: CacheConfig,
    /// Optional synchronization-event trace. When set, every queued
    /// request's channel handoffs and request/response buffer accesses
    /// are appended to the shared log, which the `tasq-analyze`
    /// happens-before checker replays to prove the serving stack free of
    /// unsynchronized cross-thread accesses. `None` (the default) records
    /// nothing and costs nothing.
    pub trace: Option<EventTrace>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_batch: 16,
            max_delay: Duration::from_micros(500),
            queue_capacity: 512,
            shed_watermark: 448,
            cache: CacheConfig::default(),
            trace: None,
        }
    }
}

/// Channel id of the request queue in the serving stack's synchronization
/// log. The id spaces here are disjoint from the executor's `sync_log`
/// convention; each request's reply channel and request/response buffers
/// are keyed by the envelope's sequence number below the base.
pub const CHAN_QUEUE: u64 = 6 << 32;
/// Channel id base of per-request reply channels in the trace.
pub const CHAN_REPLY_BASE: u64 = 7 << 32;
/// Resource id base of per-request job buffers in the trace.
pub const RES_REQUEST_BASE: u64 = 8 << 32;
/// Resource id base of per-request response buffers in the trace.
pub const RES_RESPONSE_BASE: u64 = 9 << 32;

/// Which serving path answered a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServedVia {
    /// Signature-cache hit; no inference ran.
    Cache,
    /// Scored by the worker pool against the active model.
    Model,
    /// Shed to the analytic tier under queue pressure.
    Shed,
}

/// A completed scoring request.
#[derive(Debug, Clone)]
pub struct ServedResponse {
    /// The scoring response (with this request's own job id).
    pub response: ScoreResponse,
    /// Which path produced it.
    pub via: ServedVia,
    /// Registry generation that answered.
    pub generation: u64,
}

/// Why a request was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; retry later or back off.
    Overloaded {
        /// Queue depth observed at rejection.
        depth: usize,
        /// The configured bound.
        capacity: usize,
    },
    /// The server is shutting down.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Overloaded { depth, capacity } => {
                write!(f, "overloaded: queue depth {depth} at capacity {capacity}")
            }
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Handle to an in-flight (or already answered) request.
pub struct Ticket {
    inner: TicketInner,
}

enum TicketInner {
    Ready(ServedResponse),
    Pending {
        rx: mpsc::Receiver<ServedResponse>,
        trace: Option<EventTrace>,
        seq: u64,
    },
}

impl Ticket {
    /// Wait for the response. `None` only if the server was torn down
    /// with the request still queued.
    pub fn wait(self) -> Option<ServedResponse> {
        match self.inner {
            TicketInner::Ready(response) => Some(response),
            TicketInner::Pending { rx, trace, seq } => {
                let response = rx.recv().ok()?;
                if let Some(trace) = &trace {
                    let actor = trace.register_actor();
                    trace.record(actor, TraceOp::Recv { chan: CHAN_REPLY_BASE | seq, msg: seq });
                    trace.record(actor, TraceOp::Read(RES_RESPONSE_BASE | seq));
                }
                Some(response)
            }
        }
    }
}

struct Envelope {
    job: Job,
    key: u64,
    seq: u64,
    submitted: Instant,
    reply: mpsc::SyncSender<ServedResponse>,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    cache_hits: AtomicU64,
    model_scored: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    peak_queue_depth: AtomicU64,
    /// Per-envelope sequence numbers keying trace channels/resources.
    trace_seq: AtomicU64,
}

struct Shared {
    registry: Arc<ModelRegistry>,
    cache: SignatureCache,
    /// Analytic-only scorer for the shed path (model-free, cheap).
    analytic: ScoringService,
    depth: AtomicUsize,
    counters: Counters,
    latency: LatencyHistogram,
    shutdown: AtomicBool,
    config: ServeConfig,
}

impl Shared {
    fn finish(&self, via: ServedVia, submitted: Instant) {
        let elapsed = submitted.elapsed();
        self.latency.record(elapsed);
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
        let metrics = serve_metrics();
        metrics.latency.record(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
        metrics.completed.inc();
        match via {
            ServedVia::Cache => {
                metrics.cache_hits.inc();
                &self.counters.cache_hits
            }
            ServedVia::Model => {
                metrics.model_scored.inc();
                &self.counters.model_scored
            }
            ServedVia::Shed => {
                metrics.shed.inc();
                &self.counters.shed
            }
        }
        .fetch_add(1, Ordering::Relaxed);
    }
}

/// The running server: spawn with [`ScoringServer::start`], submit jobs,
/// read [`ScoringServer::stats`], and drop (or [`ScoringServer::shutdown`])
/// to stop. Dropping joins the workers after draining the queue.
pub struct ScoringServer {
    shared: Arc<Shared>,
    tx: mpsc::SyncSender<Envelope>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// How long an idle worker sleeps between shutdown checks.
const IDLE_POLL: Duration = Duration::from_millis(20);

impl ScoringServer {
    /// Start the worker pool against a registry deployment.
    pub fn start(registry: Arc<ModelRegistry>, config: ServeConfig) -> Self {
        let scoring_config = registry.current().service().config().clone();
        let shared = Arc::new(Shared {
            cache: SignatureCache::new(&config.cache),
            analytic: ScoringService::analytic(scoring_config),
            registry,
            depth: AtomicUsize::new(0),
            counters: Counters::default(),
            latency: LatencyHistogram::new(),
            shutdown: AtomicBool::new(false),
            config: config.clone(),
        });
        // The channel bound exceeds the admission bound, so `send` below
        // never blocks: depth accounting rejects first.
        let bound = config.queue_capacity + config.workers.max(1) * config.max_batch.max(1) + 1;
        let (tx, rx) = mpsc::sync_channel::<Envelope>(bound);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || worker_loop(&shared, &rx))
            })
            .collect();
        Self { shared, tx, workers }
    }

    /// Submit one job for scoring. Returns a [`Ticket`] immediately; the
    /// ticket is pre-resolved on the cache and shed paths.
    pub fn submit(&self, job: Job) -> Result<Ticket, SubmitError> {
        let shared = &self.shared;
        if shared.shutdown.load(Ordering::Relaxed) {
            return Err(SubmitError::ShuttingDown);
        }
        let _span =
            tasq_obs::span(Level::Debug, "serve_submit", &[("job", FieldValue::U64(job.id))]);
        shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
        serve_metrics().submitted.inc();
        let submitted = Instant::now();
        let generation = shared.registry.generation();
        let key = PlanSignature::of_job(&job).cache_key(generation);

        // Fast path: answer recurring plans from cache, bypassing the
        // queue and all inference.
        if let Some(mut response) = shared.cache.get(key) {
            response.job_id = job.id;
            shared.finish(ServedVia::Cache, submitted);
            return Ok(Ticket {
                inner: TicketInner::Ready(ServedResponse {
                    response,
                    via: ServedVia::Cache,
                    generation,
                }),
            });
        }

        // Admission control: claim a queue slot; over the hard bound the
        // request is refused, over the watermark it is shed to the
        // analytic tier (served inline, never queued).
        let config = &shared.config;
        let depth = shared.depth.fetch_add(1, Ordering::SeqCst);
        if depth >= config.queue_capacity {
            shared.depth.fetch_sub(1, Ordering::SeqCst);
            shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
            serve_metrics().rejected.inc();
            tasq_obs::event(
                Level::Warn,
                "serve_rejected",
                &[("depth", FieldValue::U64(depth as u64))],
            );
            return Err(SubmitError::Overloaded { depth, capacity: config.queue_capacity });
        }
        if depth >= config.shed_watermark {
            shared.depth.fetch_sub(1, Ordering::SeqCst);
            let mut response = shared.analytic.score(&job);
            response.job_id = job.id;
            shared.finish(ServedVia::Shed, submitted);
            return Ok(Ticket {
                inner: TicketInner::Ready(ServedResponse {
                    response,
                    via: ServedVia::Shed,
                    generation,
                }),
            });
        }
        shared
            .counters
            .peak_queue_depth
            .fetch_max(depth as u64 + 1, Ordering::Relaxed);

        // Exactly one response ever travels per reply channel, so a bound
        // of one makes the reply path provably non-blocking while keeping
        // the allocation fixed-size.
        let (reply, rx) = mpsc::sync_channel(1);
        let seq = shared.counters.trace_seq.fetch_add(1, Ordering::Relaxed);
        if let Some(trace) = &config.trace {
            let actor = trace.register_actor();
            trace.record(actor, TraceOp::Write(RES_REQUEST_BASE | seq));
            trace.record(actor, TraceOp::Send { chan: CHAN_QUEUE, msg: seq });
        }
        let envelope = Envelope { job, key, seq, submitted, reply };
        if self.tx.send(envelope).is_err() {
            shared.depth.fetch_sub(1, Ordering::SeqCst);
            return Err(SubmitError::ShuttingDown);
        }
        Ok(Ticket {
            inner: TicketInner::Pending { rx, trace: config.trace.clone(), seq },
        })
    }

    /// Submit and wait: the synchronous convenience wrapper.
    pub fn score_blocking(&self, job: Job) -> Result<ServedResponse, SubmitError> {
        let ticket = self.submit(job)?;
        ticket.wait().ok_or(SubmitError::ShuttingDown)
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> ServerStatsSnapshot {
        let shared = &self.shared;
        let c = &shared.counters;
        ServerStatsSnapshot {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            model_scored: c.model_scored.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            batched_requests: c.batched_requests.load(Ordering::Relaxed),
            peak_queue_depth: c.peak_queue_depth.load(Ordering::Relaxed),
            generation: shared.registry.generation(),
            latency: shared.latency.snapshot(),
            cache: shared.cache.stats(),
        }
    }

    /// The registry this server scores against (hot-swaps through it take
    /// effect on the next batch).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// Stop accepting requests, drain the queue, and join the workers.
    pub fn shutdown(mut self) -> ServerStatsSnapshot {
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for handle in self.workers.drain(..) {
            if handle.join().is_err() {
                // A panicked worker is a bug elsewhere; shutdown still
                // completes so callers can read stats.
            }
        }
    }
}

impl Drop for ScoringServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Collect one micro-batch: block for the first request, then fill until
/// `max_batch` or `max_delay`. Returns `None` when the worker should exit.
fn collect_batch(
    shared: &Shared,
    rx: &Mutex<mpsc::Receiver<Envelope>>,
) -> Option<Vec<Envelope>> {
    let guard = rx.lock();
    let first = loop {
        match guard.recv_timeout(IDLE_POLL) {
            Ok(envelope) => break envelope,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return None;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return None,
        }
    };
    let mut batch = vec![first];
    let deadline = Instant::now() + shared.config.max_delay;
    while batch.len() < shared.config.max_batch.max(1) {
        let remaining = deadline.saturating_duration_since(Instant::now());
        match guard.recv_timeout(remaining) {
            Ok(envelope) => batch.push(envelope),
            Err(_) => break,
        }
    }
    Some(batch)
}

fn worker_loop(shared: &Shared, rx: &Mutex<mpsc::Receiver<Envelope>>) {
    let trace = shared.config.trace.clone();
    let trace_actor = trace.as_ref().map(EventTrace::register_actor);
    while let Some(batch) = collect_batch(shared, rx) {
        let _span = tasq_obs::span(
            Level::Debug,
            "serve_batch",
            &[("size", FieldValue::U64(batch.len() as u64))],
        );
        shared.depth.fetch_sub(batch.len(), Ordering::SeqCst);
        shared.counters.batches.fetch_add(1, Ordering::Relaxed);
        serve_metrics().batches.inc();
        shared
            .counters
            .batched_requests
            .fetch_add(batch.len() as u64, Ordering::Relaxed);

        // One registry snapshot per batch: a hot-swap mid-batch is
        // invisible, the next batch sees the new generation.
        let active = shared.registry.current();
        let mut scored_in_batch: HashMap<u64, ScoreResponse> = HashMap::new();
        for envelope in batch {
            if let (Some(trace), Some(actor)) = (&trace, trace_actor) {
                trace.record(actor, TraceOp::Recv { chan: CHAN_QUEUE, msg: envelope.seq });
                // Reading the request buffer is race-free only because the
                // queue edge orders it after the submitter's write.
                trace.record(actor, TraceOp::Read(RES_REQUEST_BASE | envelope.seq));
            }
            let mut response = match scored_in_batch.get(&envelope.key) {
                // Identical signatures inside one batch are scored once.
                Some(response) => response.clone(),
                None => {
                    let response = active.service().score(&envelope.job);
                    scored_in_batch.insert(envelope.key, response.clone());
                    shared.cache.insert(envelope.key, response.clone());
                    response
                }
            };
            response.job_id = envelope.job.id;
            shared.finish(ServedVia::Model, envelope.submitted);
            let served = ServedResponse {
                response,
                via: ServedVia::Model,
                generation: active.generation,
            };
            if let (Some(trace), Some(actor)) = (&trace, trace_actor) {
                trace.record(actor, TraceOp::Write(RES_RESPONSE_BASE | envelope.seq));
                let chan = CHAN_REPLY_BASE | envelope.seq;
                trace.record(actor, TraceOp::Send { chan, msg: envelope.seq });
            }
            // The requester may have dropped its ticket; that is fine.
            let _ = envelope.reply.send(served);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_sim::{replay_traffic, TrafficConfig, WorkloadConfig, WorkloadGenerator};
    use tasq::models::{NnTrainConfig, XgbTrainConfig};
    use tasq::pipeline::{
        JobRepository, ModelChoice, ModelStore, PipelineConfig, ScoringConfig, ServedTier,
        TasqPipeline,
    };

    fn jobs(n: usize, seed: u64) -> Vec<Job> {
        WorkloadGenerator::new(WorkloadConfig { num_jobs: n, seed, ..Default::default() })
            .generate()
    }

    fn registry(seed: u64) -> Arc<ModelRegistry> {
        let repo = JobRepository::new();
        repo.ingest(jobs(20, seed));
        let store = ModelStore::new();
        TasqPipeline::new(PipelineConfig {
            xgb: XgbTrainConfig { num_rounds: 15, ..Default::default() },
            nn: NnTrainConfig { epochs: 8, ..Default::default() },
            ..Default::default()
        })
        .train(&repo, &store)
        .expect("trains");
        Arc::new(ModelRegistry::deploy(&store, ModelChoice::Nn, ScoringConfig::default()).unwrap())
    }

    #[test]
    fn scores_a_workload_and_caches_repeats() {
        let server = ScoringServer::start(registry(61), ServeConfig::default());
        let job = jobs(1, 63).remove(0);

        let first = server.score_blocking(job.clone()).expect("scored");
        assert_eq!(first.via, ServedVia::Model);
        assert_eq!(first.response.job_id, job.id);
        assert_eq!(first.response.served_tier, ServedTier::Primary);

        let mut resubmission = job.clone();
        resubmission.id = 777;
        let second = server.score_blocking(resubmission).expect("scored");
        assert_eq!(second.via, ServedVia::Cache);
        assert_eq!(second.response.job_id, 777, "cached response re-addressed");
        assert_eq!(second.response.optimal_tokens, first.response.optimal_tokens);

        let stats = server.shutdown();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.model_scored, 1);
        assert_eq!(stats.completed, 2);
        assert!(stats.latency.count == 2);
    }

    #[test]
    fn batches_coalesce_under_load() {
        let server = ScoringServer::start(
            registry(65),
            ServeConfig {
                workers: 1,
                max_batch: 8,
                max_delay: Duration::from_millis(20),
                cache: CacheConfig { enabled: false, ..Default::default() },
                ..Default::default()
            },
        );
        let tickets: Vec<Ticket> = jobs(24, 67)
            .into_iter()
            .map(|j| server.submit(j).expect("admitted"))
            .collect();
        for ticket in tickets {
            assert!(ticket.wait().is_some());
        }
        let stats = server.shutdown();
        assert_eq!(stats.model_scored, 24);
        assert!(
            stats.mean_batch_size() > 1.5,
            "expected coalescing, mean batch size {}",
            stats.mean_batch_size()
        );
    }

    #[test]
    fn overload_rejects_once_the_queue_is_full() {
        // Shedding disabled (watermark == capacity): a burst into one
        // slow worker must fill the tiny queue and then be refused, and
        // the queue depth must never exceed its bound.
        let config = ServeConfig {
            workers: 1,
            max_batch: 2,
            max_delay: Duration::from_micros(100),
            queue_capacity: 8,
            shed_watermark: 8,
            cache: CacheConfig { enabled: false, ..Default::default() },
            ..Default::default()
        };
        let server = ScoringServer::start(registry(69), config);
        let mut tickets = Vec::new();
        let mut rejected = 0usize;
        for job in replay_traffic(
            &jobs(10, 71),
            &TrafficConfig { requests: 300, repeat_fraction: 0.0, seed: 5 },
        ) {
            match server.submit(job) {
                Ok(ticket) => tickets.push(ticket),
                Err(SubmitError::Overloaded { depth, capacity }) => {
                    assert!(depth >= capacity);
                    rejected += 1;
                }
                Err(SubmitError::ShuttingDown) => panic!("not shutting down"),
            }
        }
        for ticket in tickets {
            assert!(ticket.wait().is_some(), "admitted requests complete");
        }
        let stats = server.shutdown();
        assert!(rejected > 0, "burst should overflow the queue");
        assert_eq!(stats.rejected, rejected as u64);
        assert_eq!(stats.shed, 0);
        assert!(
            stats.peak_queue_depth <= 8,
            "queue bounded at capacity, peaked at {}",
            stats.peak_queue_depth
        );
        assert_eq!(stats.completed, stats.submitted - stats.rejected);
    }

    #[test]
    fn overload_sheds_to_the_analytic_tier_below_the_rejection_point() {
        // Watermark well under capacity: the same burst degrades to the
        // analytic tier instead of queueing, so nothing is rejected and
        // the queue never grows past the watermark.
        let config = ServeConfig {
            workers: 1,
            max_batch: 2,
            max_delay: Duration::from_micros(100),
            queue_capacity: 1024,
            shed_watermark: 4,
            cache: CacheConfig { enabled: false, ..Default::default() },
            ..Default::default()
        };
        let server = ScoringServer::start(registry(69), config);
        let tickets: Vec<Ticket> = replay_traffic(
            &jobs(10, 71),
            &TrafficConfig { requests: 300, repeat_fraction: 0.0, seed: 5 },
        )
        .into_iter()
        .map(|job| server.submit(job).expect("below capacity, never rejected"))
        .collect();
        let mut shed = 0usize;
        for ticket in tickets {
            let served = ticket.wait().expect("admitted requests complete");
            if served.via == ServedVia::Shed {
                shed += 1;
                assert_eq!(served.response.served_tier, ServedTier::Analytic);
            }
        }
        let stats = server.shutdown();
        assert!(shed > 0, "watermark should shed some requests");
        assert_eq!(stats.shed, shed as u64);
        assert_eq!(stats.rejected, 0);
        assert!(
            stats.peak_queue_depth <= 4,
            "shedding holds the queue at the watermark, peaked at {}",
            stats.peak_queue_depth
        );
        assert_eq!(stats.completed, stats.submitted);
    }

    #[test]
    fn hot_swap_under_traffic_invalidates_cached_generation() {
        let registry = registry(73);
        let server = ScoringServer::start(Arc::clone(&registry), ServeConfig::default());
        let job = jobs(1, 75).remove(0);
        assert_eq!(server.score_blocking(job.clone()).expect("ok").via, ServedVia::Model);
        assert_eq!(server.score_blocking(job.clone()).expect("ok").via, ServedVia::Cache);

        // Swap (same artifacts, new generation): the old cache entry is
        // keyed under generation 1 and must not serve generation 2.
        let store = {
            // Rebuild an equivalent store for the swap.
            let repo = JobRepository::new();
            repo.ingest(jobs(20, 73));
            let store = ModelStore::new();
            TasqPipeline::new(PipelineConfig {
                xgb: XgbTrainConfig { num_rounds: 15, ..Default::default() },
                nn: NnTrainConfig { epochs: 8, ..Default::default() },
                ..Default::default()
            })
            .train(&repo, &store)
            .expect("trains");
            store
        };
        registry
            .hot_swap(&store, ModelChoice::Nn, ScoringConfig::default(), &jobs(2, 77))
            .expect("swap");
        let after = server.score_blocking(job).expect("ok");
        assert_eq!(after.via, ServedVia::Model, "new generation misses the old cache key");
        assert_eq!(after.generation, 2);
    }

    #[test]
    fn cached_throughput_beats_uncached_by_5x_on_recurring_traffic() {
        // The acceptance benchmark in miniature: a repeat-heavy stream
        // (80% resubmissions; the fresh remainder cycles a finite daily
        // job population) served with and without the signature cache.
        let base = jobs(25, 79);
        let traffic = replay_traffic(
            &base,
            &TrafficConfig { requests: 1200, repeat_fraction: 0.8, seed: 7 },
        );
        let run = |enabled: bool| -> (Duration, ServerStatsSnapshot) {
            let server = ScoringServer::start(
                registry(79),
                ServeConfig {
                    workers: 1,
                    cache: CacheConfig { enabled, ..Default::default() },
                    ..Default::default()
                },
            );
            // Clone the stream outside the timed section: request
            // construction is the client's cost, not the server's.
            let stream: Vec<Job> = traffic.clone();
            let start = Instant::now();
            let mut window: std::collections::VecDeque<Ticket> = Default::default();
            for job in stream {
                if window.len() >= 64 {
                    if let Some(ticket) = window.pop_front() {
                        assert!(ticket.wait().is_some());
                    }
                }
                window.push_back(server.submit(job).expect("admitted"));
            }
            for ticket in window {
                assert!(ticket.wait().is_some());
            }
            (start.elapsed(), server.shutdown())
        };
        let (uncached_elapsed, uncached_stats) = run(false);
        let (cached_elapsed, cached_stats) = run(true);
        assert_eq!(uncached_stats.cache_hits, 0);
        assert!(
            cached_stats.cache.hit_rate() > 0.9,
            "repeat-heavy stream should mostly hit, rate {}",
            cached_stats.cache.hit_rate()
        );
        let speedup = uncached_elapsed.as_secs_f64() / cached_elapsed.as_secs_f64().max(1e-9);
        assert!(
            speedup >= 5.0,
            "signature cache should win >=5x on recurring traffic, got {speedup:.2}x \
             (uncached {uncached_elapsed:?}, cached {cached_elapsed:?})"
        );
    }

    #[test]
    fn shutdown_rejects_new_work_but_answers_admitted_work() {
        let server = ScoringServer::start(registry(81), ServeConfig::default());
        let tickets: Vec<Ticket> = jobs(6, 83)
            .into_iter()
            .map(|j| server.submit(j).expect("admitted"))
            .collect();
        let stats = server.shutdown();
        assert_eq!(stats.completed, 6, "queued work drains on shutdown");
        for ticket in tickets {
            assert!(ticket.wait().is_some());
        }
    }
}
