//! The concurrent scoring server.
//!
//! A bounded worker pool wraps a [`ModelRegistry`] deployment:
//!
//! 1. **Fast path** — `submit` hashes the job's plan signature and, on a
//!    cache hit, answers immediately on the caller's thread with no
//!    queueing and no model inference.
//! 2. **Batched path** — cache misses enter a bounded queue; workers
//!    coalesce them into micro-batches under a max-batch / max-delay
//!    policy, dedupe identical signatures within a batch, score against
//!    the current registry snapshot, fan results back out over per-request
//!    channels, and populate the cache.
//! 3. **Admission control** — when the queue passes the shed watermark
//!    the request is answered inline from the analytic Amdahl tier
//!    (cheap, model-free, clearly marked); at full capacity it is
//!    rejected with [`SubmitError::Overloaded`]. The queue can therefore
//!    never grow beyond its configured bound.
//! 4. **Supervision** — each worker slot runs under a supervisor that
//!    catches panics and respawns the worker. Requests in flight when a
//!    worker dies resolve to the typed [`RequestError::WorkerLost`] —
//!    never a hang. Per-request deadline budgets resolve overdue work to
//!    [`RequestError::DeadlineExceeded`], and a [`CircuitBreaker`] over
//!    the primary model tier trips onto the analytic fallback after
//!    consecutive primary failures, half-open-probing its way back.
//!
//! All coordination is std-only (threads + mpsc channels + atomics), in
//! keeping with the workspace's vendored offline dependencies.

use crate::cache::{CacheConfig, SignatureCache};
use crate::registry::ModelRegistry;
use crate::scaling::{AutoScaler, ScaleAction, ScalingConfig};
use crate::signature::PlanSignature;
use crate::stats::{LatencyHistogram, ServerStatsSnapshot, SlowRequest, SlowestTracker};
use parking_lot::Mutex;
use scope_sim::{EventTrace, Job, TraceOp};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, OnceLock};
use std::time::{Duration, Instant};
use tasq::pipeline::{ScoreResponse, ScoringService, ServedTier};
use tasq_obs::{Counter, FieldValue, Level, SloConfig, SloEngine, TraceContext};
use tasq_resil::{BreakerConfig, BreakerState, ChaosPlan, CircuitBreaker};

/// Always-on counters mirrored into the global metrics registry so the
/// Prometheus/JSON expositions see serving activity live, without waiting
/// for a stats snapshot. Relaxed atomic increments; never contended.
struct ServeMetrics {
    submitted: Counter,
    completed: Counter,
    cache_hits: Counter,
    /// Cache hits answered inline on a network shard's event-loop thread
    /// via [`ScoringServer::try_score_cached`] (a subset of `cache_hits`).
    fastpath_hits: Counter,
    model_scored: Counter,
    shed: Counter,
    rejected: Counter,
    batches: Counter,
    worker_respawns: Counter,
    deadline_timeouts: Counter,
    breaker_trips: Counter,
    /// Process-wide latency histogram; each server also keeps its own
    /// detached histogram for per-server snapshots.
    latency: tasq_obs::Histogram,
    /// Tail-latency attribution: each request's end-to-end time is
    /// decomposed into contiguous segments whose sums equal the
    /// end-to-end total, so `sum(segment sums) ≈ serve_latency_us_sum`
    /// is a checkable invariant. Traced requests leave exemplars.
    seg_fastpath_probe: tasq_obs::Histogram,
    seg_queue_wait: tasq_obs::Histogram,
    seg_batch_wait: tasq_obs::Histogram,
    seg_score_primary: tasq_obs::Histogram,
    seg_score_fallback: tasq_obs::Histogram,
    seg_score_analytic: tasq_obs::Histogram,
    seg_flush: tasq_obs::Histogram,
}

fn serve_metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = tasq_obs::Registry::global();
        ServeMetrics {
            submitted: r.counter("serve_submitted_total", "requests accepted by submit"),
            completed: r.counter("serve_completed_total", "requests answered on any path"),
            cache_hits: r
                .counter("serve_cache_hits_total", "requests answered from the signature cache"),
            fastpath_hits: r.counter(
                "serve_fastpath_hits_total",
                "cache hits answered inline on the serving event-loop thread",
            ),
            model_scored: r
                .counter("serve_model_scored_total", "requests scored by the worker pool"),
            shed: r.counter("serve_shed_total", "requests shed to the analytic tier"),
            rejected: r.counter("serve_rejected_total", "requests rejected as overloaded"),
            batches: r.counter("serve_batches_total", "micro-batches executed"),
            worker_respawns: r
                .counter("serve_worker_respawns", "panicked workers respawned by the supervisor"),
            deadline_timeouts: r
                .counter("serve_deadline_timeouts", "requests resolved as over their deadline"),
            breaker_trips: r
                .counter("serve_breaker_trips", "primary-tier circuit breaker open transitions"),
            latency: r
                .histogram("serve_latency_us", "end-to-end request latency in microseconds"),
            seg_fastpath_probe: r.histogram(
                "segment_fastpath_probe_us",
                "submit entry to admission decision (whole request for inline answers)",
            ),
            seg_queue_wait: r
                .histogram("segment_queue_wait_us", "enqueue to worker dequeue"),
            seg_batch_wait: r.histogram(
                "segment_batch_wait_us",
                "worker dequeue to this request's scoring turn",
            ),
            seg_score_primary: r
                .histogram("segment_score_primary_us", "scoring time, primary tier"),
            seg_score_fallback: r
                .histogram("segment_score_fallback_us", "scoring time, fallback tier"),
            seg_score_analytic: r
                .histogram("segment_score_analytic_us", "scoring time, analytic tier"),
            seg_flush: r
                .histogram("segment_flush_us", "score end to completion bookkeeping"),
        }
    })
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads scoring micro-batches.
    pub workers: usize,
    /// Maximum requests coalesced into one micro-batch.
    pub max_batch: usize,
    /// Maximum time a worker waits to fill a batch once it holds the
    /// first request.
    pub max_delay: Duration,
    /// Hard bound on queued (admitted but unscored) requests; beyond it
    /// `submit` returns [`SubmitError::Overloaded`].
    pub queue_capacity: usize,
    /// Queue depth at which requests shed to the analytic tier instead of
    /// queueing (set `>= queue_capacity` to disable shedding).
    pub shed_watermark: usize,
    /// Signature-cache settings.
    pub cache: CacheConfig,
    /// Optional synchronization-event trace. When set, every queued
    /// request's channel handoffs and request/response buffer accesses
    /// are appended to the shared log, which the `tasq-analyze`
    /// happens-before checker replays to prove the serving stack free of
    /// unsynchronized cross-thread accesses. `None` (the default) records
    /// nothing and costs nothing.
    pub trace: Option<EventTrace>,
    /// Default per-request deadline budget. A queued request whose budget
    /// has elapsed by the time a worker picks it up resolves to
    /// [`RequestError::DeadlineExceeded`] instead of being scored late.
    /// `None` (the default) disables deadline enforcement;
    /// [`ScoringServer::submit_with_deadline`] overrides per request.
    pub deadline: Option<Duration>,
    /// Circuit breaker over the primary model tier: after
    /// `failure_threshold` consecutive primary failures the breaker opens
    /// and batched requests are answered by the analytic tier until a
    /// half-open probe succeeds. Ticks are request sequence numbers, so
    /// behavior is deterministic for a deterministic request stream.
    pub breaker: BreakerConfig,
    /// Deterministic fault-injection plan for the chaos harness: planted
    /// worker panics, a primary-tier fault window, and deadline storms,
    /// all keyed by request sequence number. `None` (the default) injects
    /// nothing and costs one branch per request.
    pub chaos: Option<ChaosPlan>,
    /// Worker-pool autoscaling policy (min/max workers, queue-utilization
    /// thresholds, cooldown). Disabled by default; when enabled a scaler
    /// thread resizes the pool between [`ScoringServer::resize_workers`]
    /// bounds as load swings.
    pub scaling: ScalingConfig,
    /// Service-level objectives evaluated continuously over every
    /// request: latency quantile thresholds and availability, as
    /// multi-window error-budget burn rates. Always on (bounded rings,
    /// no per-request allocation); the burn rate feeds the autoscaler
    /// when [`ScalingConfig::burn_up_threshold`] is positive and is
    /// served at the network front-end's `/slo` endpoint.
    pub slo: SloConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_batch: 16,
            max_delay: Duration::from_micros(500),
            queue_capacity: 512,
            shed_watermark: 448,
            cache: CacheConfig::default(),
            trace: None,
            deadline: None,
            breaker: BreakerConfig::default(),
            chaos: None,
            scaling: ScalingConfig::default(),
            slo: SloConfig::default(),
        }
    }
}

/// Channel id of the request queue in the serving stack's synchronization
/// log. The id spaces here are disjoint from the executor's `sync_log`
/// convention; each request's reply channel and request/response buffers
/// are keyed by the envelope's sequence number below the base.
pub const CHAN_QUEUE: u64 = 6 << 32;
/// Channel id base of per-request reply channels in the trace.
pub const CHAN_REPLY_BASE: u64 = 7 << 32;
/// Resource id base of per-request job buffers in the trace.
pub const RES_REQUEST_BASE: u64 = 8 << 32;
/// Resource id base of per-request response buffers in the trace.
pub const RES_RESPONSE_BASE: u64 = 9 << 32;

/// Which serving path answered a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServedVia {
    /// Signature-cache hit; no inference ran.
    Cache,
    /// Scored by the worker pool against the active model.
    Model,
    /// Shed to the analytic tier under queue pressure.
    Shed,
}

/// A completed scoring request.
#[derive(Debug, Clone)]
pub struct ServedResponse {
    /// The scoring response (with this request's own job id).
    pub response: ScoreResponse,
    /// Which path produced it.
    pub via: ServedVia,
    /// Registry generation that answered.
    pub generation: u64,
}

/// Why a request was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; retry later or back off.
    Overloaded {
        /// Queue depth observed at rejection.
        depth: usize,
        /// The configured bound.
        capacity: usize,
    },
    /// The server is shutting down.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Overloaded { depth, capacity } => {
                write!(f, "overloaded: queue depth {depth} at capacity {capacity}")
            }
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an *admitted* request did not produce a response. Every admitted
/// request resolves to either a [`ServedResponse`] or one of these —
/// never a silent hang.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The worker scoring this request died (panicked or was torn down);
    /// the supervisor respawned the pool, but this request's work was
    /// lost. Safe to retry.
    WorkerLost,
    /// The request's deadline budget elapsed before a worker reached it.
    DeadlineExceeded {
        /// The budget that was exceeded.
        budget: Duration,
    },
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::WorkerLost => write!(f, "scoring worker lost; retry"),
            RequestError::DeadlineExceeded { budget } => {
                write!(f, "deadline budget {budget:?} exceeded before scoring")
            }
        }
    }
}

impl std::error::Error for RequestError {}

/// Handle to an in-flight (or already answered) request.
pub struct Ticket {
    inner: TicketInner,
}

enum TicketInner {
    Ready(ServedResponse),
    Pending {
        rx: mpsc::Receiver<Result<ServedResponse, RequestError>>,
        trace: Option<EventTrace>,
        seq: u64,
    },
}

impl Ticket {
    /// Wait for the response. `None` when the request resolved to a
    /// typed failure instead — use [`Ticket::outcome`] to see which.
    pub fn wait(self) -> Option<ServedResponse> {
        self.outcome().ok()
    }

    /// Wait for the typed resolution of this request: the response, or
    /// the reason no response was produced. Never hangs on a dead worker:
    /// a panicked worker's in-flight requests resolve to
    /// [`RequestError::WorkerLost`] (either replied by the unwinding
    /// batch guard or observed as reply-channel hangup).
    pub fn outcome(self) -> Result<ServedResponse, RequestError> {
        match self.inner {
            TicketInner::Ready(response) => Ok(response),
            TicketInner::Pending { rx, trace, seq } => {
                let outcome = rx.recv().unwrap_or(Err(RequestError::WorkerLost));
                // Only successful replies traced: the worker records the
                // matching Send/Write solely on the response path, and the
                // checker requires every Recv to pair with a Send.
                if outcome.is_ok() {
                    if let Some(trace) = &trace {
                        let actor = trace.register_actor();
                        trace
                            .record(actor, TraceOp::Recv { chan: CHAN_REPLY_BASE | seq, msg: seq });
                        trace.record(actor, TraceOp::Read(RES_RESPONSE_BASE | seq));
                    }
                }
                outcome
            }
        }
    }
}

struct Envelope {
    job: Job,
    key: u64,
    seq: u64,
    submitted: Instant,
    /// When the envelope entered the queue (end of the fastpath probe).
    enqueued: Instant,
    /// When a worker pulled it off its channel; stamped in
    /// [`collect_batch`], equal to `enqueued` until then.
    dequeued: Instant,
    /// Request trace identity, carried across the channel hop so the
    /// worker-side spans parent under the submitter's span instead of
    /// starting a fresh root.
    ctx: TraceContext,
    deadline: Option<Duration>,
    reply: mpsc::SyncSender<Result<ServedResponse, RequestError>>,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    cache_hits: AtomicU64,
    fastpath_hits: AtomicU64,
    model_scored: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    peak_queue_depth: AtomicU64,
    worker_lost: AtomicU64,
    deadline_timeouts: AtomicU64,
    worker_respawns: AtomicU64,
    breaker_trips: AtomicU64,
    breaker_recoveries: AtomicU64,
    /// Per-envelope sequence numbers keying trace channels/resources.
    trace_seq: AtomicU64,
}

struct Shared {
    registry: Arc<ModelRegistry>,
    cache: SignatureCache,
    /// Analytic-only scorer for the shed path (model-free, cheap).
    analytic: ScoringService,
    depth: AtomicUsize,
    counters: Counters,
    latency: LatencyHistogram,
    shutdown: AtomicBool,
    /// Drain mode: new submissions are refused but workers keep going.
    draining: AtomicBool,
    /// Primary-tier circuit breaker, ticked by request sequence number.
    breaker: Mutex<CircuitBreaker>,
    config: ServeConfig,
    /// Desired worker-pool size; surplus workers exit cooperatively at
    /// their next idle poll.
    target_workers: AtomicUsize,
    /// Workers currently alive (incremented at spawn, CAS-decremented by
    /// a worker electing itself to exit).
    live_workers: AtomicUsize,
    /// Monotonic worker slot numbering across resizes.
    next_slot: AtomicUsize,
    /// Send handles of every live worker's private request channel,
    /// keyed by worker slot. [`send_envelope`] round-robins admitted
    /// envelopes across them *under this lock*, and a retiring worker
    /// deregisters its entry under the same lock before sweeping its
    /// channel — that ordering is what makes cooperative scale-down
    /// unable to strand an admitted request.
    senders: Mutex<Vec<(usize, mpsc::SyncSender<Envelope>)>>,
    /// Round-robin cursor over `senders`.
    rr: AtomicUsize,
    /// Autoscaler scale-up actions applied.
    scale_ups: AtomicU64,
    /// Autoscaler scale-down actions applied.
    scale_downs: AtomicU64,
    /// Error-budget burn-rate engine fed by every completion/failure.
    slo: SloEngine,
    /// Fixed-slot worst-requests tracker behind `/debug/slowest`.
    slowest: SlowestTracker,
}

/// Stage timestamps for a request that went through the worker pool;
/// inline (cache/shed) answers have no stages — their whole life is the
/// fastpath probe.
struct StageClock {
    dequeued: Instant,
    score_start: Instant,
    score_end: Instant,
    tier: ServedTier,
}

/// Microseconds between two instants, saturating (clock steps between
/// threads can make a later stamp read earlier).
fn stage_us(from: Instant, to: Instant) -> u64 {
    to.saturating_duration_since(from).as_micros().min(u128::from(u64::MAX)) as u64
}

fn tier_label(tier: ServedTier) -> &'static str {
    match tier {
        ServedTier::Primary => "primary",
        ServedTier::Fallback => "fallback",
        ServedTier::Analytic => "analytic",
    }
}

/// Record `value` plainly, or with an exemplar when the request is
/// traced.
fn record_segment(histogram: &tasq_obs::Histogram, value: u64, ctx: TraceContext) {
    if ctx.is_active() {
        histogram.record_traced(value, ctx.trace_id);
    } else {
        histogram.record(value);
    }
}

impl Shared {
    /// Complete one request: latency + segment histograms (with trace
    /// exemplars), SLO accounting, and slowest-request retention. The
    /// segment chain is contiguous — probe → queue → batch → score →
    /// flush for pooled requests, probe-only for inline answers — so
    /// per-request segment sums equal the end-to-end total.
    fn finish_traced(
        &self,
        via: ServedVia,
        submitted: Instant,
        enqueued: Instant,
        ctx: TraceContext,
        stages: Option<StageClock>,
    ) {
        let done = Instant::now();
        let elapsed = done.saturating_duration_since(submitted);
        let total_us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        if ctx.is_active() {
            self.latency.record_traced(elapsed, ctx.trace_id);
        } else {
            self.latency.record(elapsed);
        }
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
        let metrics = serve_metrics();
        record_segment(&metrics.latency, total_us, ctx);
        metrics.completed.inc();
        match via {
            ServedVia::Cache => {
                metrics.cache_hits.inc();
                &self.counters.cache_hits
            }
            ServedVia::Model => {
                metrics.model_scored.inc();
                &self.counters.model_scored
            }
            ServedVia::Shed => {
                metrics.shed.inc();
                &self.counters.shed
            }
        }
        .fetch_add(1, Ordering::Relaxed);

        let now_us = tasq_obs::clock::now_micros();
        self.slo.record_latency(now_us, total_us);
        // A shed answer is valid but degraded: it spends availability
        // budget alongside rejects and lost workers.
        self.slo.record_outcome(now_us, via != ServedVia::Shed);

        let slow = match stages {
            None => {
                record_segment(&metrics.seg_fastpath_probe, total_us, ctx);
                SlowRequest {
                    trace_id: ctx.trace_id,
                    total_us,
                    via: via_label(via),
                    tier: "-",
                    fastpath_probe_us: total_us,
                    queue_wait_us: 0,
                    batch_wait_us: 0,
                    score_us: 0,
                    flush_us: 0,
                }
            }
            Some(st) => {
                let probe = stage_us(submitted, enqueued);
                let queue_wait = stage_us(enqueued, st.dequeued);
                let batch_wait = stage_us(st.dequeued, st.score_start);
                let score = stage_us(st.score_start, st.score_end);
                let flush = stage_us(st.score_end, done);
                record_segment(&metrics.seg_fastpath_probe, probe, ctx);
                record_segment(&metrics.seg_queue_wait, queue_wait, ctx);
                record_segment(&metrics.seg_batch_wait, batch_wait, ctx);
                let score_histogram = match st.tier {
                    ServedTier::Primary => &metrics.seg_score_primary,
                    ServedTier::Fallback => &metrics.seg_score_fallback,
                    ServedTier::Analytic => &metrics.seg_score_analytic,
                };
                record_segment(score_histogram, score, ctx);
                record_segment(&metrics.seg_flush, flush, ctx);
                SlowRequest {
                    trace_id: ctx.trace_id,
                    total_us,
                    via: via_label(via),
                    tier: tier_label(st.tier),
                    fastpath_probe_us: probe,
                    queue_wait_us: queue_wait,
                    batch_wait_us: batch_wait,
                    score_us: score,
                    flush_us: flush,
                }
            }
        };
        self.slowest.offer(slow);
    }

    /// An admitted request failed (reject, lost worker, deadline): burn
    /// availability budget without recording a completion latency.
    fn record_failure(&self) {
        self.slo.record_outcome(tasq_obs::clock::now_micros(), false);
    }
}

fn via_label(via: ServedVia) -> &'static str {
    match via {
        ServedVia::Cache => "cache",
        ServedVia::Model => "model",
        ServedVia::Shed => "shed",
    }
}

/// Sampling decision for a request entering the server: a context carried
/// in from the wire wins; otherwise mint a sampled one iff span
/// collection is on, so the off state pays nothing beyond this check.
fn resolve_context(ctx: TraceContext) -> TraceContext {
    if ctx.is_active() {
        ctx
    } else if tasq_obs::collect_enabled() {
        TraceContext::mint(true)
    } else {
        TraceContext::NONE
    }
}

/// The running server: spawn with [`ScoringServer::start`], submit jobs,
/// read [`ScoringServer::stats`], and drop (or [`ScoringServer::shutdown`])
/// to stop. Dropping joins the workers after draining the queue.
pub struct ScoringServer {
    shared: Arc<Shared>,
    /// Worker (and scaler) join handles; a shared mutex-backed vec so
    /// the autoscaler thread can push freshly spawned workers.
    workers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

/// How long an idle worker sleeps between shutdown checks.
const IDLE_POLL: Duration = Duration::from_millis(20);

impl ScoringServer {
    /// Start the worker pool against a registry deployment.
    pub fn start(registry: Arc<ModelRegistry>, config: ServeConfig) -> Self {
        let scoring_config = registry.current().service().config().clone();
        let shared = Arc::new(Shared {
            cache: SignatureCache::new(&config.cache),
            analytic: ScoringService::analytic(scoring_config),
            registry,
            depth: AtomicUsize::new(0),
            counters: Counters::default(),
            latency: LatencyHistogram::new(),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            breaker: Mutex::new(CircuitBreaker::new(config.breaker)),
            config: config.clone(),
            target_workers: AtomicUsize::new(config.workers.max(1)),
            live_workers: AtomicUsize::new(0),
            next_slot: AtomicUsize::new(0),
            senders: Mutex::new(Vec::new()),
            rr: AtomicUsize::new(0),
            scale_ups: AtomicU64::new(0),
            scale_downs: AtomicU64::new(0),
            slo: SloEngine::new(config.slo.clone()),
            slowest: SlowestTracker::new(),
        });
        let workers = Arc::new(Mutex::new(Vec::new()));
        resize_pool(&shared, &workers, config.workers.max(1));
        if config.scaling.auto_scaling {
            let scaler_shared = Arc::clone(&shared);
            let scaler_workers = Arc::clone(&workers);
            let handle = std::thread::spawn(move || {
                scaler_loop(&scaler_shared, &scaler_workers);
            });
            workers.lock().push(handle);
        }
        Self { shared, workers }
    }

    /// Submit one job for scoring. Returns a [`Ticket`] immediately; the
    /// ticket is pre-resolved on the cache and shed paths.
    pub fn submit(&self, job: Job) -> Result<Ticket, SubmitError> {
        self.submit_with_deadline(job, None)
    }

    /// Submit with an explicit per-request deadline budget, overriding
    /// [`ServeConfig::deadline`]. A queued request whose budget elapses
    /// before a worker reaches it resolves to
    /// [`RequestError::DeadlineExceeded`]. Cache hits and sheds answer
    /// inline and never time out.
    pub fn submit_with_deadline(
        &self,
        job: Job,
        deadline: Option<Duration>,
    ) -> Result<Ticket, SubmitError> {
        self.submit_traced(job, deadline, TraceContext::NONE)
    }

    /// Submit with an explicit trace context — the network front-end
    /// passes the context it pulled off the wire so the whole server-side
    /// life of the request joins the caller's trace. An inactive `ctx`
    /// mints a fresh sampled context when span collection is on and stays
    /// untraced otherwise, so unsampled requests pay only the context
    /// copy.
    pub fn submit_traced(
        &self,
        job: Job,
        deadline: Option<Duration>,
        ctx: TraceContext,
    ) -> Result<Ticket, SubmitError> {
        let shared = &self.shared;
        if shared.shutdown.load(Ordering::Relaxed) || shared.draining.load(Ordering::Relaxed) {
            return Err(SubmitError::ShuttingDown);
        }
        let ctx = resolve_context(ctx);
        let span_fields = [
            ("job", FieldValue::U64(job.id)),
            ("trace", FieldValue::TraceId(ctx.trace_id)),
        ];
        let _span = if ctx.sampled {
            tasq_obs::span_with_parent(Level::Debug, "serve_submit", ctx.span_id, &span_fields)
        } else {
            tasq_obs::span(Level::Debug, "serve_submit", &span_fields)
        };
        shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
        serve_metrics().submitted.inc();
        let submitted = Instant::now();
        let generation = shared.registry.generation();
        let key = PlanSignature::of_job(&job).cache_key(generation);

        // Fast path: answer recurring plans from cache, bypassing the
        // queue and all inference.
        if let Some(mut response) = shared.cache.get(key) {
            response.job_id = job.id;
            shared.finish_traced(ServedVia::Cache, submitted, submitted, ctx, None);
            return Ok(Ticket {
                inner: TicketInner::Ready(ServedResponse {
                    response,
                    via: ServedVia::Cache,
                    generation,
                }),
            });
        }

        // Admission control: claim a queue slot; over the hard bound the
        // request is refused, over the watermark it is shed to the
        // analytic tier (served inline, never queued).
        let config = &shared.config;
        let depth = shared.depth.fetch_add(1, Ordering::SeqCst);
        if depth >= config.queue_capacity {
            shared.depth.fetch_sub(1, Ordering::SeqCst);
            shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
            serve_metrics().rejected.inc();
            shared.record_failure();
            tasq_obs::event(
                Level::Warn,
                "serve_rejected",
                &[("depth", FieldValue::U64(depth as u64))],
            );
            return Err(SubmitError::Overloaded { depth, capacity: config.queue_capacity });
        }
        if depth >= config.shed_watermark {
            shared.depth.fetch_sub(1, Ordering::SeqCst);
            let mut response = shared.analytic.score(&job);
            response.job_id = job.id;
            shared.finish_traced(ServedVia::Shed, submitted, submitted, ctx, None);
            return Ok(Ticket {
                inner: TicketInner::Ready(ServedResponse {
                    response,
                    via: ServedVia::Shed,
                    generation,
                }),
            });
        }
        shared
            .counters
            .peak_queue_depth
            .fetch_max(depth as u64 + 1, Ordering::Relaxed);

        // Exactly one response ever travels per reply channel, so a bound
        // of one makes the reply path provably non-blocking while keeping
        // the allocation fixed-size.
        let (reply, rx) = mpsc::sync_channel(1);
        let seq = shared.counters.trace_seq.fetch_add(1, Ordering::Relaxed);
        if let Some(trace) = &config.trace {
            let actor = trace.register_actor();
            trace.record(actor, TraceOp::Write(RES_REQUEST_BASE | seq));
            trace.record(actor, TraceOp::Send { chan: CHAN_QUEUE, msg: seq });
        }
        let mut deadline = deadline.or(config.deadline);
        if let Some(plan) = &config.chaos {
            // Deadline storms hand the request an (often unmeetable)
            // budget; the worker resolves it as a typed timeout.
            if let Some(budget_us) = plan.storm_budget_us(seq) {
                deadline = Some(Duration::from_micros(budget_us));
            }
        }
        let enqueued = Instant::now();
        let envelope =
            Envelope { job, key, seq, submitted, enqueued, dequeued: enqueued, ctx, deadline, reply };
        if send_envelope(shared, envelope).is_err() {
            shared.depth.fetch_sub(1, Ordering::SeqCst);
            return Err(SubmitError::ShuttingDown);
        }
        Ok(Ticket {
            inner: TicketInner::Pending { rx, trace: config.trace.clone(), seq },
        })
    }

    /// Non-blocking cache probe: answer a signature-cache hit inline on
    /// the caller's thread — no queue slot claimed, no channel hop, no
    /// batcher wakeup — or return `None` without side effects on the
    /// admission state, so the caller can fall through to
    /// [`ScoringServer::submit_with_deadline`] unchanged. This is the
    /// network shard's fast path: a hit is rendered and flushed without
    /// ever leaving the event-loop thread, and shed/overload behavior is
    /// untouched because misses never touch the queue depth here.
    pub fn try_score_cached(&self, job: &Job) -> Option<ServedResponse> {
        self.try_score_cached_traced(job, TraceContext::NONE)
    }

    /// [`ScoringServer::try_score_cached`] with the request's wire trace
    /// context, so even inline fastpath answers land in the caller's
    /// trace and leave exemplars.
    pub fn try_score_cached_traced(
        &self,
        job: &Job,
        ctx: TraceContext,
    ) -> Option<ServedResponse> {
        let shared = &self.shared;
        if shared.shutdown.load(Ordering::Relaxed) || shared.draining.load(Ordering::Relaxed) {
            return None;
        }
        let generation = shared.registry.generation();
        let key = PlanSignature::of_job(job).cache_key(generation);
        let mut response = shared.cache.get(key)?;
        // Only a hit counts as a submission: misses are re-submitted in
        // full, and double-counting them would break the
        // `submitted == resolved` zero-silent-loss accounting.
        let ctx = resolve_context(ctx);
        let submitted = Instant::now();
        shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
        shared.counters.fastpath_hits.fetch_add(1, Ordering::Relaxed);
        let metrics = serve_metrics();
        metrics.submitted.inc();
        metrics.fastpath_hits.inc();
        response.job_id = job.id;
        shared.finish_traced(ServedVia::Cache, submitted, submitted, ctx, None);
        Some(ServedResponse { response, via: ServedVia::Cache, generation })
    }

    /// Submit and wait: the synchronous convenience wrapper.
    pub fn score_blocking(&self, job: Job) -> Result<ServedResponse, SubmitError> {
        let ticket = self.submit(job)?;
        ticket.wait().ok_or(SubmitError::ShuttingDown)
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> ServerStatsSnapshot {
        let shared = &self.shared;
        let c = &shared.counters;
        ServerStatsSnapshot {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            fastpath_hits: c.fastpath_hits.load(Ordering::Relaxed),
            model_scored: c.model_scored.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            batched_requests: c.batched_requests.load(Ordering::Relaxed),
            peak_queue_depth: c.peak_queue_depth.load(Ordering::Relaxed),
            worker_lost: c.worker_lost.load(Ordering::Relaxed),
            deadline_timeouts: c.deadline_timeouts.load(Ordering::Relaxed),
            worker_respawns: c.worker_respawns.load(Ordering::Relaxed),
            breaker_trips: c.breaker_trips.load(Ordering::Relaxed),
            breaker_recoveries: c.breaker_recoveries.load(Ordering::Relaxed),
            generation: shared.registry.generation(),
            latency: shared.latency.snapshot(),
            cache: shared.cache.stats(),
        }
    }

    /// Current state of the primary-tier circuit breaker.
    pub fn breaker_state(&self) -> BreakerState {
        self.shared.breaker.lock().state()
    }

    /// The registry this server scores against (hot-swaps through it take
    /// effect on the next batch).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// Stop accepting requests, drain the queue, and join the workers.
    pub fn shutdown(mut self) -> ServerStatsSnapshot {
        self.stop_and_join();
        self.stats()
    }

    /// Graceful drain: refuse new submissions (callers see
    /// [`SubmitError::ShuttingDown`]), wait until every admitted request
    /// has left the queue and been answered, then join the workers and
    /// return final stats. Unlike [`ScoringServer::shutdown`], the
    /// refusal starts *before* the workers are told to stop, so a load
    /// generator can stop the world without racing its own tail of
    /// submissions against worker teardown.
    pub fn drain(mut self) -> ServerStatsSnapshot {
        self.shared.draining.store(true, Ordering::SeqCst);
        while self.shared.depth.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Joining happens outside the lock (the autoscaler thread takes
        // it to push workers), and loops in case a resize raced the
        // shutdown flag and pushed a handle after the first sweep.
        loop {
            let batch: Vec<_> = self.workers.lock().drain(..).collect();
            if batch.is_empty() {
                return;
            }
            for handle in batch {
                if handle.join().is_err() {
                    // A panicked worker is a bug elsewhere; shutdown still
                    // completes so callers can read stats.
                }
            }
        }
    }

    /// Workers currently alive (the autoscaler's cooperative scale-down
    /// lands within one idle poll, so this may briefly exceed the
    /// target after a `Down` action).
    pub fn worker_count(&self) -> usize {
        self.shared.live_workers.load(Ordering::SeqCst)
    }

    /// Resize the worker pool to `target` (clamped to ≥ 1). Growth
    /// spawns supervised workers immediately; shrinkage is cooperative —
    /// surplus workers exit at their next idle poll without abandoning
    /// requests they already hold.
    pub fn resize_workers(&self, target: usize) {
        resize_pool(&self.shared, &self.workers, target);
    }

    /// `(scale_ups, scale_downs)` applied by the autoscaler thread.
    pub fn scaling_events(&self) -> (u64, u64) {
        (
            self.shared.scale_ups.load(Ordering::Relaxed),
            self.shared.scale_downs.load(Ordering::Relaxed),
        )
    }

    /// Current SLO state (objectives + multi-window burn rates) as the
    /// JSON document the network front-end serves at `/slo`.
    pub fn slo_json(&self) -> String {
        self.shared.slo.render_json(tasq_obs::clock::now_micros())
    }

    /// Worst fast-window burn rate across objectives right now.
    pub fn slo_burn(&self) -> f64 {
        self.shared.slo.max_fast_burn(tasq_obs::clock::now_micros())
    }

    /// The retained slowest requests with segment breakdowns, worst
    /// first (the `/debug/slowest` payload).
    pub fn slowest(&self) -> Vec<SlowRequest> {
        self.shared.slowest.snapshot()
    }

    /// JSON document for `/debug/slowest`.
    pub fn slowest_json(&self) -> String {
        self.shared.slowest.render_json()
    }
}

/// Per-worker request-channel bound. In the worst case every admitted
/// envelope round-robins onto one worker, so each private channel's bound
/// must exceed the admission bound on its own — that is what keeps the
/// lock-held send in [`send_envelope`] provably non-blocking: depth
/// accounting rejects before any channel can fill.
fn worker_channel_bound(config: &ServeConfig) -> usize {
    config.queue_capacity + config.max_batch.max(1) + 1
}

/// Set the pool's target size and spawn workers up to it. Serialized on
/// the handles lock so concurrent resizes cannot overshoot. Each new
/// worker gets a private bounded request channel; it owns the `Receiver`
/// outright (no shared `Mutex<Receiver>`), and its `SyncSender` is
/// registered under the worker's slot for [`send_envelope`] to route to.
fn resize_pool(
    shared: &Arc<Shared>,
    handles: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    target: usize,
) {
    let target = target.max(1);
    let mut guard = handles.lock();
    shared.target_workers.store(target, Ordering::SeqCst);
    while shared.live_workers.load(Ordering::SeqCst) < target {
        shared.live_workers.fetch_add(1, Ordering::SeqCst);
        let slot = shared.next_slot.fetch_add(1, Ordering::SeqCst);
        let (tx, rx) = mpsc::sync_channel::<Envelope>(worker_channel_bound(&shared.config));
        shared.senders.lock().push((slot, tx));
        let worker_shared = Arc::clone(shared);
        guard.push(std::thread::spawn(move || supervise_worker(&worker_shared, rx, slot)));
    }
}

/// Route one admitted envelope to a worker, round-robin over the live
/// send handles. The send happens *under* the senders lock so it is
/// ordered against worker retirement: an envelope either lands before
/// the worker deregisters (and is swept by that worker's post-retirement
/// drain) or sees the updated handle list. `SyncSender::send` cannot
/// block here — each channel's bound exceeds the admission bound (see
/// [`worker_channel_bound`]) — so the guard is held only for the enqueue
/// itself. Handles with a hung-up receiver (a worker torn down at
/// shutdown) are pruned in place and the envelope is re-routed; when no
/// handle is left the envelope is handed back for the caller to refuse.
fn send_envelope(shared: &Shared, envelope: Envelope) -> Result<(), ()> {
    let mut envelope = envelope;
    let mut senders = shared.senders.lock();
    while !senders.is_empty() {
        let i = shared.rr.fetch_add(1, Ordering::Relaxed) % senders.len();
        match senders[i].1.send(envelope) {
            Ok(()) => return Ok(()),
            Err(mpsc::SendError(returned)) => {
                envelope = returned;
                senders.remove(i);
            }
        }
    }
    Err(())
}

/// How often the autoscaler samples queue utilization.
const SCALER_POLL: Duration = Duration::from_millis(20);

/// The autoscaler thread: sample `depth / queue_capacity`, tick the pure
/// [`AutoScaler`], apply its decision through the dynamic pool.
fn scaler_loop(shared: &Arc<Shared>, handles: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>) {
    let mut scaler = AutoScaler::new(shared.config.scaling.clone());
    let epoch = Instant::now();
    while !shared.shutdown.load(Ordering::Relaxed) {
        std::thread::sleep(SCALER_POLL);
        let depth = shared.depth.load(Ordering::Relaxed);
        let utilization = depth as f64 / shared.config.queue_capacity.max(1) as f64;
        // Decide against the *target* (not live) count so a pending
        // cooperative scale-down isn't re-decided every poll.
        let current = shared.target_workers.load(Ordering::SeqCst);
        // The SLO burn rate is the leading scale-up signal: latency
        // violations burn budget before the queue visibly saturates.
        let now_us = tasq_obs::clock::now_micros();
        let burn = shared.slo.max_fast_burn(now_us);
        shared.slo.publish(tasq_obs::Registry::global(), now_us);
        match scaler.tick_with_burn(epoch.elapsed(), utilization, burn, current) {
            ScaleAction::Hold => {}
            ScaleAction::Up(n) => {
                resize_pool(shared, handles, n);
                shared.scale_ups.fetch_add(1, Ordering::Relaxed);
                tasq_obs::event(
                    Level::Info,
                    "serve_scale_up",
                    &[("workers", FieldValue::U64(n as u64))],
                );
            }
            ScaleAction::Down(n) => {
                shared.target_workers.store(n.max(1), Ordering::SeqCst);
                shared.scale_downs.fetch_add(1, Ordering::Relaxed);
                tasq_obs::event(
                    Level::Info,
                    "serve_scale_down",
                    &[("workers", FieldValue::U64(n as u64))],
                );
            }
        }
    }
}

impl Drop for ScoringServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Outcome of one [`collect_batch`] attempt.
enum Collected {
    /// A non-empty micro-batch to score.
    Work(Vec<Envelope>),
    /// The idle poll elapsed with nothing queued; re-check exit
    /// conditions and try again.
    Idle,
    /// Shutdown observed or the channel hung up; the worker should exit.
    Exit,
}

/// Collect one micro-batch from this worker's private channel: block for
/// the first request, then fill until `max_batch` or `max_delay`. The
/// worker owns its `Receiver` outright, so every blocking receive here
/// runs lock-free — no guard is held anywhere near a blocking call,
/// which is exactly what the lock-discipline pass verifies.
fn collect_batch(shared: &Shared, rx: &mpsc::Receiver<Envelope>) -> Collected {
    let mut first = match rx.recv_timeout(IDLE_POLL) {
        Ok(envelope) => envelope,
        Err(mpsc::RecvTimeoutError::Timeout) => {
            if shared.shutdown.load(Ordering::Relaxed) {
                return Collected::Exit;
            }
            return Collected::Idle;
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => return Collected::Exit,
    };
    first.dequeued = Instant::now();
    let mut batch = vec![first];
    let deadline = Instant::now() + shared.config.max_delay;
    while batch.len() < shared.config.max_batch.max(1) {
        let remaining = deadline.saturating_duration_since(Instant::now());
        match rx.recv_timeout(remaining) {
            Ok(mut envelope) => {
                envelope.dequeued = Instant::now();
                batch.push(envelope);
            }
            Err(_) => break,
        }
    }
    Collected::Work(batch)
}

/// Whether this worker should retire to honour a pending scale-down:
/// true iff the pool is over target and this worker won the CAS race to
/// be the one that leaves.
fn elect_to_exit(shared: &Shared) -> bool {
    loop {
        let live = shared.live_workers.load(Ordering::SeqCst);
        let target = shared.target_workers.load(Ordering::SeqCst);
        if live <= target.max(1) {
            return false;
        }
        if shared
            .live_workers
            .compare_exchange(live, live - 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            return true;
        }
    }
}

/// One worker slot: run [`worker_loop`] under a panic boundary and
/// respawn it (in place, same thread) after every panic until shutdown.
/// A panicking worker cannot hang its in-flight requests: the unwinding
/// [`BatchGuard`] resolves everything it still holds to
/// [`RequestError::WorkerLost`].
fn supervise_worker(shared: &Shared, rx: mpsc::Receiver<Envelope>, slot: usize) {
    loop {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            worker_loop(shared, &rx, slot)
        }));
        match outcome {
            // Clean exit: shutdown observed or the queue disconnected.
            Ok(()) => break,
            Err(_) => {
                shared.counters.worker_respawns.fetch_add(1, Ordering::Relaxed);
                serve_metrics().worker_respawns.inc();
                tasq_obs::event(
                    Level::Warn,
                    "serve_worker_respawn",
                    &[("slot", FieldValue::U64(slot as u64))],
                );
                if shared.shutdown.load(Ordering::Relaxed) {
                    break;
                }
            }
        }
    }
    // Final sweep: anything still sitting in this worker's channel when
    // it stops receiving (a shutdown race, or a panic after retirement)
    // resolves to the typed `WorkerLost` with its queue slot released —
    // never a silent hang, and `drain` cannot wait on a dead channel.
    while let Ok(envelope) = rx.try_recv() {
        shared.depth.fetch_sub(1, Ordering::SeqCst);
        shared.counters.worker_lost.fetch_add(1, Ordering::Relaxed);
        shared.record_failure();
        let _ = envelope.reply.send(Err(RequestError::WorkerLost));
    }
}

/// Holds the unanswered tail of a micro-batch. Envelopes are popped as
/// they are answered; if the worker unwinds mid-batch, `Drop` resolves
/// every remaining envelope — including the one being scored — to
/// [`RequestError::WorkerLost`], so admitted requests can never hang on
/// a dead worker.
struct BatchGuard<'a> {
    shared: &'a Shared,
    pending: VecDeque<Envelope>,
}

impl Drop for BatchGuard<'_> {
    fn drop(&mut self) {
        for envelope in self.pending.drain(..) {
            self.shared.counters.worker_lost.fetch_add(1, Ordering::Relaxed);
            self.shared.record_failure();
            let _ = envelope.reply.send(Err(RequestError::WorkerLost));
        }
    }
}

fn worker_loop(shared: &Shared, rx: &mpsc::Receiver<Envelope>, slot: usize) {
    let trace = shared.config.trace.clone();
    let trace_actor = trace.as_ref().map(EventTrace::register_actor);
    loop {
        // Cooperative scale-down: only a worker holding no request may
        // retire, and only between batches.
        if elect_to_exit(shared) {
            retire_worker(shared, rx, slot, &trace, trace_actor);
            return;
        }
        match collect_batch(shared, rx) {
            Collected::Work(batch) => process_batch(shared, batch, &trace, trace_actor),
            Collected::Idle => {}
            Collected::Exit => return,
        }
    }
}

/// Retire one worker to honour a scale-down: deregister its send handle
/// so [`send_envelope`] stops routing here, then sweep and *serve* every
/// envelope that landed in the channel before deregistration. The sweep
/// cannot miss one: sends happen under the senders lock, and this
/// deregistration takes the same lock, so by the time `retain` returns,
/// any envelope routed to this slot is already in the channel.
fn retire_worker(
    shared: &Shared,
    rx: &mpsc::Receiver<Envelope>,
    slot: usize,
    trace: &Option<EventTrace>,
    trace_actor: Option<u32>,
) {
    shared.senders.lock().retain(|entry| entry.0 != slot);
    let mut stragglers = Vec::new();
    while let Ok(envelope) = rx.try_recv() {
        stragglers.push(envelope);
        if stragglers.len() >= shared.config.max_batch.max(1) {
            process_batch(shared, std::mem::take(&mut stragglers), trace, trace_actor);
        }
    }
    if !stragglers.is_empty() {
        process_batch(shared, stragglers, trace, trace_actor);
    }
}

/// Score one collected micro-batch and reply to every envelope in it.
fn process_batch(
    shared: &Shared,
    batch: Vec<Envelope>,
    trace: &Option<EventTrace>,
    trace_actor: Option<u32>,
) {
    {
        // Parent the worker-side batch span from the first traced
        // envelope's carried context instead of opening a fresh root, so
        // the cross-thread channel hop does not sever the trace.
        let carried = batch.iter().find(|e| e.ctx.sampled).map(|e| e.ctx);
        let batch_fields = [
            ("size", FieldValue::U64(batch.len() as u64)),
            (
                "trace",
                FieldValue::TraceId(carried.map_or(0, |ctx| ctx.trace_id)),
            ),
        ];
        let _span = match carried {
            Some(ctx) => tasq_obs::span_with_parent(
                Level::Debug,
                "serve_batch",
                ctx.span_id,
                &batch_fields,
            ),
            None => tasq_obs::span(Level::Debug, "serve_batch", &batch_fields),
        };
        shared.depth.fetch_sub(batch.len(), Ordering::SeqCst);
        shared.counters.batches.fetch_add(1, Ordering::Relaxed);
        serve_metrics().batches.inc();
        shared
            .counters
            .batched_requests
            .fetch_add(batch.len() as u64, Ordering::Relaxed);

        // One registry snapshot per batch: a hot-swap mid-batch is
        // invisible, the next batch sees the new generation.
        let active = shared.registry.current();
        let mut scored_in_batch: HashMap<u64, ScoreResponse> = HashMap::new();
        let mut guard = BatchGuard { shared, pending: batch.into() };
        while let Some(envelope) = guard.pending.front() {
            let seq = envelope.seq;
            if shared.config.chaos.as_ref().is_some_and(|plan| plan.panics_at(seq)) {
                // lint: allow(no-panic) — deliberate chaos-harness fault; the supervisor respawns this worker
                panic!("chaos: planted worker panic at request {seq}");
            }
            if let (Some(trace), Some(actor)) = (&trace, trace_actor) {
                trace.record(actor, TraceOp::Recv { chan: CHAN_QUEUE, msg: seq });
                // Reading the request buffer is race-free only because the
                // queue edge orders it after the submitter's write.
                trace.record(actor, TraceOp::Read(RES_REQUEST_BASE | seq));
            }
            let score_start = Instant::now();
            let score_span = if envelope.ctx.sampled {
                Some(tasq_obs::span_with_parent(
                    Level::Debug,
                    "serve_score",
                    envelope.ctx.span_id,
                    &[
                        ("seq", FieldValue::U64(seq)),
                        ("trace", FieldValue::TraceId(envelope.ctx.trace_id)),
                    ],
                ))
            } else {
                None
            };
            let outcome = match envelope.deadline {
                Some(budget) if envelope.submitted.elapsed() >= budget => {
                    Err(RequestError::DeadlineExceeded { budget })
                }
                _ => Ok(score_envelope(shared, &active, &mut scored_in_batch, envelope)),
            };
            drop(score_span);
            let score_end = Instant::now();
            // The immutable borrow of `envelope` ends here; reclaim it to
            // reply and mark it answered (a panic above leaves it in the
            // guard, which resolves it to WorkerLost on unwind).
            let Some(envelope) = guard.pending.pop_front() else { break };
            match outcome {
                Ok(served) => {
                    shared.finish_traced(
                        ServedVia::Model,
                        envelope.submitted,
                        envelope.enqueued,
                        envelope.ctx,
                        Some(StageClock {
                            dequeued: envelope.dequeued,
                            score_start,
                            score_end,
                            tier: served.response.served_tier,
                        }),
                    );
                    if let (Some(trace), Some(actor)) = (&trace, trace_actor) {
                        trace.record(actor, TraceOp::Write(RES_RESPONSE_BASE | envelope.seq));
                        let chan = CHAN_REPLY_BASE | envelope.seq;
                        trace.record(actor, TraceOp::Send { chan, msg: envelope.seq });
                    }
                    // The requester may have dropped its ticket; fine.
                    let _ = envelope.reply.send(Ok(served));
                }
                Err(err) => {
                    shared.counters.deadline_timeouts.fetch_add(1, Ordering::Relaxed);
                    serve_metrics().deadline_timeouts.inc();
                    shared.record_failure();
                    tasq_obs::event(
                        Level::Warn,
                        "serve_deadline_timeout",
                        &[("seq", FieldValue::U64(envelope.seq))],
                    );
                    let _ = envelope.reply.send(Err(err));
                }
            }
        }
    }
}

/// Score one envelope through the circuit breaker: closed → primary
/// service (with in-batch dedup + cache fill); open → analytic tier.
/// Primary outcomes (including chaos-injected faults in the plan's fault
/// window) feed back into the breaker, ticked by request sequence.
fn score_envelope(
    shared: &Shared,
    active: &crate::registry::ActiveModel,
    scored_in_batch: &mut HashMap<u64, ScoreResponse>,
    envelope: &Envelope,
) -> ServedResponse {
    let seq = envelope.seq;
    let fault_injected = shared.config.chaos.as_ref().is_some_and(|plan| plan.nn_faulted(seq));
    let allowed = shared.breaker.lock().allow(seq);
    let (mut response, primary_attempted) = if !allowed {
        // Breaker open: the primary tier is skipped entirely and the
        // analytic rung of the degradation ladder answers.
        (shared.analytic.score(&envelope.job), false)
    } else if fault_injected {
        // The primary "failed" (chaos fault window); the request still
        // gets a valid analytic answer, and the breaker hears about it.
        (shared.analytic.score(&envelope.job), true)
    } else {
        let response = match scored_in_batch.get(&envelope.key) {
            // Identical signatures inside one batch are scored once.
            Some(response) => response.clone(),
            None => {
                let response = active.service().score(&envelope.job);
                if response.predicted_runtime_at_request.is_finite() {
                    scored_in_batch.insert(envelope.key, response.clone());
                    shared.cache.insert(envelope.key, response.clone());
                }
                response
            }
        };
        (response, true)
    };
    if primary_attempted {
        let success = !fault_injected && response.predicted_runtime_at_request.is_finite();
        let mut breaker = shared.breaker.lock();
        let (trips, recoveries) = (breaker.trips(), breaker.recoveries());
        breaker.record(seq, success);
        let tripped = breaker.trips() > trips;
        let recovered = breaker.recoveries() > recoveries;
        drop(breaker);
        if tripped {
            shared.counters.breaker_trips.fetch_add(1, Ordering::Relaxed);
            serve_metrics().breaker_trips.inc();
            tasq_obs::event(
                Level::Warn,
                "serve_breaker_open",
                &[("seq", FieldValue::U64(seq))],
            );
        }
        if recovered {
            shared.counters.breaker_recoveries.fetch_add(1, Ordering::Relaxed);
            tasq_obs::event(
                Level::Info,
                "serve_breaker_closed",
                &[("seq", FieldValue::U64(seq))],
            );
        }
    }
    response.job_id = envelope.job.id;
    ServedResponse { response, via: ServedVia::Model, generation: active.generation }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_sim::{replay_traffic, TrafficConfig, WorkloadConfig, WorkloadGenerator};
    use tasq::models::{NnTrainConfig, XgbTrainConfig};
    use tasq::pipeline::{
        JobRepository, ModelChoice, ModelStore, PipelineConfig, ScoringConfig, ServedTier,
        TasqPipeline,
    };

    fn jobs(n: usize, seed: u64) -> Vec<Job> {
        WorkloadGenerator::new(WorkloadConfig { num_jobs: n, seed, ..Default::default() })
            .generate()
    }

    fn registry(seed: u64) -> Arc<ModelRegistry> {
        let repo = JobRepository::new();
        repo.ingest(jobs(20, seed));
        let store = ModelStore::new();
        TasqPipeline::new(PipelineConfig {
            xgb: XgbTrainConfig { num_rounds: 15, ..Default::default() },
            nn: NnTrainConfig { epochs: 8, ..Default::default() },
            ..Default::default()
        })
        .train(&repo, &store)
        .expect("trains");
        Arc::new(ModelRegistry::deploy(&store, ModelChoice::Nn, ScoringConfig::default()).unwrap())
    }

    #[test]
    fn scores_a_workload_and_caches_repeats() {
        let server = ScoringServer::start(registry(61), ServeConfig::default());
        let job = jobs(1, 63).remove(0);

        let first = server.score_blocking(job.clone()).expect("scored");
        assert_eq!(first.via, ServedVia::Model);
        assert_eq!(first.response.job_id, job.id);
        assert_eq!(first.response.served_tier, ServedTier::Primary);

        let mut resubmission = job.clone();
        resubmission.id = 777;
        let second = server.score_blocking(resubmission).expect("scored");
        assert_eq!(second.via, ServedVia::Cache);
        assert_eq!(second.response.job_id, 777, "cached response re-addressed");
        assert_eq!(second.response.optimal_tokens, first.response.optimal_tokens);

        let stats = server.shutdown();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.model_scored, 1);
        assert_eq!(stats.completed, 2);
        assert!(stats.latency.count == 2);
    }

    #[test]
    fn try_score_cached_answers_inline_only_on_a_hit() {
        let server = ScoringServer::start(registry(201), ServeConfig::default());
        let job = jobs(1, 203).remove(0);
        assert!(
            server.try_score_cached(&job).is_none(),
            "cold cache: the probe misses and leaves the admission state untouched"
        );
        let first = server.score_blocking(job.clone()).expect("scored");
        assert_eq!(first.via, ServedVia::Model);

        let mut resubmission = job.clone();
        resubmission.id = 4242;
        let hit = server.try_score_cached(&resubmission).expect("warm cache answers inline");
        assert_eq!(hit.via, ServedVia::Cache);
        assert_eq!(hit.response.job_id, 4242, "cached response re-addressed");
        assert_eq!(hit.response.optimal_tokens, first.response.optimal_tokens);

        let stats = server.shutdown();
        assert_eq!(stats.fastpath_hits, 1);
        assert_eq!(stats.cache_hits, 1, "a fastpath hit is counted as a cache hit");
        assert_eq!(stats.submitted, 2, "the cold probe is not a submission");
        assert_eq!(stats.submitted, stats.resolved(), "zero silent loss");
    }

    #[test]
    fn batches_coalesce_under_load() {
        let server = ScoringServer::start(
            registry(65),
            ServeConfig {
                workers: 1,
                max_batch: 8,
                max_delay: Duration::from_millis(20),
                cache: CacheConfig { enabled: false, ..Default::default() },
                ..Default::default()
            },
        );
        let tickets: Vec<Ticket> = jobs(24, 67)
            .into_iter()
            .map(|j| server.submit(j).expect("admitted"))
            .collect();
        for ticket in tickets {
            assert!(ticket.wait().is_some());
        }
        let stats = server.shutdown();
        assert_eq!(stats.model_scored, 24);
        assert!(
            stats.mean_batch_size() > 1.5,
            "expected coalescing, mean batch size {}",
            stats.mean_batch_size()
        );
    }

    #[test]
    fn overload_rejects_once_the_queue_is_full() {
        // Shedding disabled (watermark == capacity): a burst into one
        // slow worker must fill the tiny queue and then be refused, and
        // the queue depth must never exceed its bound.
        let config = ServeConfig {
            workers: 1,
            max_batch: 2,
            max_delay: Duration::from_micros(100),
            queue_capacity: 8,
            shed_watermark: 8,
            cache: CacheConfig { enabled: false, ..Default::default() },
            ..Default::default()
        };
        let server = ScoringServer::start(registry(69), config);
        let mut tickets = Vec::new();
        let mut rejected = 0usize;
        for job in replay_traffic(
            &jobs(10, 71),
            &TrafficConfig { requests: 300, repeat_fraction: 0.0, seed: 5 },
        ) {
            match server.submit(job) {
                Ok(ticket) => tickets.push(ticket),
                Err(SubmitError::Overloaded { depth, capacity }) => {
                    assert!(depth >= capacity);
                    rejected += 1;
                }
                Err(SubmitError::ShuttingDown) => panic!("not shutting down"),
            }
        }
        for ticket in tickets {
            assert!(ticket.wait().is_some(), "admitted requests complete");
        }
        let stats = server.shutdown();
        assert!(rejected > 0, "burst should overflow the queue");
        assert_eq!(stats.rejected, rejected as u64);
        assert_eq!(stats.shed, 0);
        assert!(
            stats.peak_queue_depth <= 8,
            "queue bounded at capacity, peaked at {}",
            stats.peak_queue_depth
        );
        assert_eq!(stats.completed, stats.submitted - stats.rejected);
    }

    #[test]
    fn overload_sheds_to_the_analytic_tier_below_the_rejection_point() {
        // Watermark well under capacity: the same burst degrades to the
        // analytic tier instead of queueing, so nothing is rejected and
        // the queue never grows past the watermark.
        let config = ServeConfig {
            workers: 1,
            max_batch: 2,
            max_delay: Duration::from_micros(100),
            queue_capacity: 1024,
            shed_watermark: 4,
            cache: CacheConfig { enabled: false, ..Default::default() },
            ..Default::default()
        };
        let server = ScoringServer::start(registry(69), config);
        let tickets: Vec<Ticket> = replay_traffic(
            &jobs(10, 71),
            &TrafficConfig { requests: 300, repeat_fraction: 0.0, seed: 5 },
        )
        .into_iter()
        .map(|job| server.submit(job).expect("below capacity, never rejected"))
        .collect();
        let mut shed = 0usize;
        for ticket in tickets {
            let served = ticket.wait().expect("admitted requests complete");
            if served.via == ServedVia::Shed {
                shed += 1;
                assert_eq!(served.response.served_tier, ServedTier::Analytic);
            }
        }
        let stats = server.shutdown();
        assert!(shed > 0, "watermark should shed some requests");
        assert_eq!(stats.shed, shed as u64);
        assert_eq!(stats.rejected, 0);
        assert!(
            stats.peak_queue_depth <= 4,
            "shedding holds the queue at the watermark, peaked at {}",
            stats.peak_queue_depth
        );
        assert_eq!(stats.completed, stats.submitted);
    }

    #[test]
    fn hot_swap_under_traffic_invalidates_cached_generation() {
        let registry = registry(73);
        let server = ScoringServer::start(Arc::clone(&registry), ServeConfig::default());
        let job = jobs(1, 75).remove(0);
        assert_eq!(server.score_blocking(job.clone()).expect("ok").via, ServedVia::Model);
        assert_eq!(server.score_blocking(job.clone()).expect("ok").via, ServedVia::Cache);

        // Swap (same artifacts, new generation): the old cache entry is
        // keyed under generation 1 and must not serve generation 2.
        let store = {
            // Rebuild an equivalent store for the swap.
            let repo = JobRepository::new();
            repo.ingest(jobs(20, 73));
            let store = ModelStore::new();
            TasqPipeline::new(PipelineConfig {
                xgb: XgbTrainConfig { num_rounds: 15, ..Default::default() },
                nn: NnTrainConfig { epochs: 8, ..Default::default() },
                ..Default::default()
            })
            .train(&repo, &store)
            .expect("trains");
            store
        };
        registry
            .hot_swap(&store, ModelChoice::Nn, ScoringConfig::default(), &jobs(2, 77))
            .expect("swap");
        let after = server.score_blocking(job).expect("ok");
        assert_eq!(after.via, ServedVia::Model, "new generation misses the old cache key");
        assert_eq!(after.generation, 2);
    }

    #[test]
    fn cached_throughput_beats_uncached_by_5x_on_recurring_traffic() {
        // The acceptance benchmark in miniature: a repeat-heavy stream
        // (80% resubmissions; the fresh remainder cycles a finite daily
        // job population) served with and without the signature cache.
        let base = jobs(25, 79);
        let traffic = replay_traffic(
            &base,
            &TrafficConfig { requests: 1200, repeat_fraction: 0.8, seed: 7 },
        );
        let run = |enabled: bool| -> (Duration, ServerStatsSnapshot) {
            let server = ScoringServer::start(
                registry(79),
                ServeConfig {
                    workers: 1,
                    cache: CacheConfig { enabled, ..Default::default() },
                    ..Default::default()
                },
            );
            // Clone the stream outside the timed section: request
            // construction is the client's cost, not the server's.
            let stream: Vec<Job> = traffic.clone();
            let start = Instant::now();
            let mut window: std::collections::VecDeque<Ticket> = Default::default();
            for job in stream {
                if window.len() >= 64 {
                    if let Some(ticket) = window.pop_front() {
                        assert!(ticket.wait().is_some());
                    }
                }
                window.push_back(server.submit(job).expect("admitted"));
            }
            for ticket in window {
                assert!(ticket.wait().is_some());
            }
            (start.elapsed(), server.shutdown())
        };
        let (uncached_elapsed, uncached_stats) = run(false);
        let (cached_elapsed, cached_stats) = run(true);
        assert_eq!(uncached_stats.cache_hits, 0);
        assert!(
            cached_stats.cache.hit_rate() > 0.9,
            "repeat-heavy stream should mostly hit, rate {}",
            cached_stats.cache.hit_rate()
        );
        let speedup = uncached_elapsed.as_secs_f64() / cached_elapsed.as_secs_f64().max(1e-9);
        assert!(
            speedup >= 5.0,
            "signature cache should win >=5x on recurring traffic, got {speedup:.2}x \
             (uncached {uncached_elapsed:?}, cached {cached_elapsed:?})"
        );
    }

    #[test]
    fn shutdown_rejects_new_work_but_answers_admitted_work() {
        let server = ScoringServer::start(registry(81), ServeConfig::default());
        let tickets: Vec<Ticket> = jobs(6, 83)
            .into_iter()
            .map(|j| server.submit(j).expect("admitted"))
            .collect();
        let stats = server.shutdown();
        assert_eq!(stats.completed, 6, "queued work drains on shutdown");
        for ticket in tickets {
            assert!(ticket.wait().is_some());
        }
    }

    /// A chaos plan with only the given worker panics planted.
    fn panic_plan(seqs: Vec<u64>) -> ChaosPlan {
        ChaosPlan {
            preset: "test".into(),
            seed: 0,
            kill_after_checkpoints: None,
            torn_tail_bytes: None,
            worker_panics: seqs,
            nn_fault_window: None,
            deadline_storm: None,
        }
    }

    #[test]
    fn worker_panic_resolves_in_flight_requests_and_respawns() {
        let server = ScoringServer::start(
            registry(85),
            ServeConfig {
                workers: 1,
                cache: CacheConfig { enabled: false, ..Default::default() },
                chaos: Some(panic_plan(vec![2])),
                ..Default::default()
            },
        );
        // Serial submit/wait: each request is its own batch, sequence
        // numbers are 0,1,2,... and the planted panic hits seq 2.
        let mut outcomes = Vec::new();
        for job in jobs(6, 87) {
            let ticket = server.submit(job).expect("admitted");
            outcomes.push(ticket.outcome());
        }
        assert_eq!(outcomes.len(), 6, "no request hangs");
        assert!(
            matches!(outcomes[2], Err(RequestError::WorkerLost)),
            "in-flight request typed as lost: {:?}",
            outcomes[2].as_ref().err()
        );
        for (i, outcome) in outcomes.iter().enumerate() {
            if i != 2 {
                assert!(outcome.is_ok(), "request {i} served after respawn: {outcome:?}");
            }
        }
        let stats = server.shutdown();
        assert_eq!(stats.worker_respawns, 1, "supervisor respawned the panicked worker");
        assert_eq!(stats.worker_lost, 1);
        assert_eq!(stats.submitted, stats.resolved(), "zero silent loss");
    }

    #[test]
    fn expired_deadline_budget_is_a_typed_timeout() {
        let server = ScoringServer::start(
            registry(89),
            ServeConfig {
                workers: 1,
                cache: CacheConfig { enabled: false, ..Default::default() },
                ..Default::default()
            },
        );
        let mut batch = jobs(2, 91);
        let on_time = server.submit(batch.pop().unwrap()).expect("admitted");
        assert!(on_time.outcome().is_ok());
        let doomed = server
            .submit_with_deadline(batch.pop().unwrap(), Some(Duration::ZERO))
            .expect("admitted");
        assert!(matches!(
            doomed.outcome(),
            Err(RequestError::DeadlineExceeded { budget: Duration::ZERO })
        ));
        let stats = server.shutdown();
        assert_eq!(stats.deadline_timeouts, 1);
        assert_eq!(stats.submitted, stats.resolved(), "zero silent loss");
    }

    #[test]
    fn breaker_trips_on_fault_window_and_recovers_half_open() {
        let fault_plan = ChaosPlan {
            nn_fault_window: Some((0, 8)),
            ..panic_plan(vec![])
        };
        let server = ScoringServer::start(
            registry(93),
            ServeConfig {
                workers: 1,
                cache: CacheConfig { enabled: false, ..Default::default() },
                breaker: tasq_resil::BreakerConfig {
                    failure_threshold: 3,
                    cooldown_ticks: 4,
                    probe_successes: 2,
                },
                chaos: Some(fault_plan),
                ..Default::default()
            },
        );
        // Serial traffic across the fault window: seqs 0..8 fault the
        // primary tier; the breaker must open during the window and
        // half-open its way back to Closed on healthy traffic after it.
        let mut analytic_served = 0usize;
        for job in replay_traffic(
            &jobs(10, 95),
            &TrafficConfig { requests: 30, repeat_fraction: 0.0, seed: 11 },
        ) {
            let served = server.submit(job).expect("admitted").outcome().expect("answered");
            if served.response.served_tier == tasq::pipeline::ServedTier::Analytic {
                analytic_served += 1;
            }
        }
        assert_eq!(server.breaker_state(), tasq_resil::BreakerState::Closed);
        let stats = server.shutdown();
        assert!(stats.breaker_trips >= 1, "fault window must trip the breaker");
        assert!(stats.breaker_recoveries >= 1, "breaker must close again after the window");
        assert!(analytic_served >= 3, "open breaker serves the analytic rung");
        assert_eq!(stats.completed, 30, "every request answered despite the faults");
    }

    #[test]
    fn drain_answers_all_admitted_work_then_refuses() {
        let server = ScoringServer::start(registry(97), ServeConfig::default());
        let tickets: Vec<Ticket> = jobs(8, 99)
            .into_iter()
            .map(|j| server.submit(j).expect("admitted"))
            .collect();
        let stats = server.drain();
        assert_eq!(stats.completed, 8, "drain waits for every admitted request");
        assert_eq!(stats.submitted, stats.resolved());
        for ticket in tickets {
            assert!(ticket.outcome().is_ok());
        }
    }

    /// Spin until `server.worker_count()` reaches `expected` or ~2s pass.
    fn await_worker_count(server: &ScoringServer, expected: usize) {
        for _ in 0..200 {
            if server.worker_count() == expected {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!(
            "worker pool stuck at {} (wanted {expected})",
            server.worker_count()
        );
    }

    #[test]
    fn resize_workers_grows_and_shrinks_the_pool() {
        let server = ScoringServer::start(
            registry(141),
            ServeConfig { workers: 2, ..Default::default() },
        );
        assert_eq!(server.worker_count(), 2);

        server.resize_workers(5);
        assert_eq!(server.worker_count(), 5, "scale-up spawns immediately");

        server.resize_workers(1);
        // Scale-down is cooperative: surplus workers exit at their next
        // idle poll.
        await_worker_count(&server, 1);

        // The shrunken pool still serves.
        let job = jobs(1, 143).remove(0);
        let served = server.submit(job).expect("admitted").outcome().expect("answered");
        assert!(served.response.optimal_tokens > 0);

        // And a resized-up pool serves again too.
        server.resize_workers(3);
        assert_eq!(server.worker_count(), 3);
        let job = jobs(1, 144).remove(0);
        assert!(server.submit(job).expect("admitted").outcome().is_ok());
        let stats = server.drain();
        assert_eq!(stats.submitted, stats.resolved());
    }

    #[test]
    fn autoscaler_shrinks_an_idle_pool_to_min() {
        let server = ScoringServer::start(
            registry(151),
            ServeConfig {
                workers: 4,
                scaling: ScalingConfig {
                    auto_scaling: true,
                    min_workers: 1,
                    max_workers: 4,
                    scale_up_threshold: 0.75,
                    // An idle queue (utilization 0) is always below this,
                    // so the scaler steps the pool down once per cooldown.
                    scale_down_threshold: 0.25,
                    cooldown_secs: 0.05,
                    burn_up_threshold: 0.0,
                },
                ..Default::default()
            },
        );
        await_worker_count(&server, 1);
        let (ups, downs) = server.scaling_events();
        assert!(downs >= 3, "4 → 1 takes three downs, saw {downs}");
        assert_eq!(ups, 0, "an idle queue must never scale up");

        // The minimum pool still answers.
        let job = jobs(1, 153).remove(0);
        assert!(server.submit(job).expect("admitted").outcome().is_ok());
        let stats = server.drain();
        assert_eq!(stats.submitted, stats.resolved());
    }

    #[test]
    fn segment_chain_sums_to_end_to_end_per_request() {
        let server = ScoringServer::start(registry(171), ServeConfig::default());
        for job in replay_traffic(
            &jobs(8, 173),
            &TrafficConfig { requests: 40, repeat_fraction: 0.5, seed: 175 },
        ) {
            server.score_blocking(job).expect("scored");
        }
        let slowest = server.slowest();
        assert!(!slowest.is_empty(), "slowest tracker retains untraced requests too");
        for slow in &slowest {
            let seg_sum = slow.fastpath_probe_us
                + slow.queue_wait_us
                + slow.batch_wait_us
                + slow.score_us
                + slow.flush_us;
            // Each of the five segments truncates to whole µs, so the
            // contiguous chain undershoots the total by at most 5 µs and
            // never overshoots.
            assert!(
                slow.total_us >= seg_sum && slow.total_us - seg_sum <= 5,
                "segments must sum to the end-to-end total: {slow:?}"
            );
        }
        server.shutdown();
    }

    #[test]
    fn traced_submission_flows_into_slowest_and_slo() {
        let server = ScoringServer::start(registry(181), ServeConfig::default());
        let ctx = TraceContext::mint(true);
        let job = jobs(1, 183).remove(0);
        assert!(server.submit_traced(job, None, ctx).expect("admitted").outcome().is_ok());
        let slowest = server.slowest();
        assert!(
            slowest.iter().any(|s| s.trace_id == ctx.trace_id),
            "the carried trace id must survive to /debug/slowest: {slowest:?}"
        );
        let doc = server.slowest_json();
        assert!(
            doc.contains(&format!("{:032x}", ctx.trace_id)),
            "slowest json must render the trace id: {doc}"
        );
        let slo = server.slo_json();
        let parsed = tasq_obs::json::parse(&slo).expect("slo json parses");
        assert!(parsed.get("objectives").is_some(), "slo json lists objectives: {slo}");
        assert!(server.slo_burn().is_finite());
        server.shutdown();
    }
}
