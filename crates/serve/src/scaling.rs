//! Queue-utilization worker autoscaling.
//!
//! Mirrors the admission/scaling surface of production analytics
//! resource managers (min/max instances, utilization thresholds, a
//! cooldown between actions — see SNIPPETS.md Snippet 1): when queue
//! utilization (`depth / queue_capacity`) stays above the scale-up
//! threshold the pool grows by one worker, when it falls below the
//! scale-down threshold the pool shrinks by one, and after either action
//! the scaler holds for a cooldown so a bursty queue cannot thrash the
//! pool.
//!
//! The decision logic lives in the pure, tick-driven [`AutoScaler`] —
//! time is injected as a [`Duration`] since an arbitrary epoch, so
//! threshold/cooldown transitions are unit-testable without sleeping.
//! The [`crate::ScoringServer`] applies decisions through its dynamic
//! worker pool (`resize_workers`): scale-up spawns supervised workers
//! immediately; scale-down is cooperative — a surplus worker exits at
//! its next idle poll, never abandoning a request it already holds.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Worker-pool scaling policy (the Snippet-1 `ScalingConfiguration`
/// surface, translated to this server's vocabulary).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingConfig {
    /// Master switch; `false` (the default) keeps the pool fixed at
    /// [`crate::ServeConfig::workers`].
    pub auto_scaling: bool,
    /// Lower bound on pool size (≥ 1 is enforced).
    pub min_workers: usize,
    /// Upper bound on pool size.
    pub max_workers: usize,
    /// Queue utilization (`depth / queue_capacity`, in `[0, 1]`) at or
    /// above which the pool grows.
    pub scale_up_threshold: f64,
    /// Queue utilization at or below which the pool shrinks.
    pub scale_down_threshold: f64,
    /// Minimum seconds between scaling actions (fractional values work;
    /// kept as seconds rather than `Duration` so the config serializes
    /// with the workspace's vendored serde).
    pub cooldown_secs: f64,
    /// SLO fast-window burn rate at or above which the pool grows even
    /// when queue utilization is still below `scale_up_threshold` —
    /// latency-SLO violations lead queue saturation, so burning the
    /// error budget is an earlier scale-up signal. `0.0` disables the
    /// input (and keeps old configs byte-compatible).
    pub burn_up_threshold: f64,
}

impl ScalingConfig {
    /// The cooldown as a `Duration` (negative/NaN clamp to zero).
    pub fn cooldown(&self) -> Duration {
        if self.cooldown_secs.is_finite() && self.cooldown_secs > 0.0 {
            Duration::from_secs_f64(self.cooldown_secs)
        } else {
            Duration::ZERO
        }
    }
}

impl Default for ScalingConfig {
    fn default() -> Self {
        Self {
            auto_scaling: false,
            min_workers: 1,
            max_workers: 8,
            scale_up_threshold: 0.75,
            scale_down_threshold: 0.20,
            cooldown_secs: 5.0,
            burn_up_threshold: 0.0,
        }
    }
}

/// One scaling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleAction {
    /// Keep the current pool size.
    Hold,
    /// Grow the pool to this many workers.
    Up(usize),
    /// Shrink the pool to this many workers.
    Down(usize),
}

/// Pure tick-driven scaling decision engine.
pub struct AutoScaler {
    config: ScalingConfig,
    last_action_at: Option<Duration>,
}

impl AutoScaler {
    /// A scaler for `config` (which needn't have `auto_scaling` set —
    /// the flag gates the *server* loop, not the decision logic, so the
    /// engine stays testable in isolation).
    pub fn new(config: ScalingConfig) -> Self {
        Self { config, last_action_at: None }
    }

    /// The policy this scaler applies.
    pub fn config(&self) -> &ScalingConfig {
        &self.config
    }

    /// Decide at time `now` (monotonic, any epoch) given the current
    /// queue `utilization` in `[0, 1]` and `current` pool size. A
    /// returned `Up`/`Down` starts the cooldown clock; `Hold` does not.
    pub fn tick(&mut self, now: Duration, utilization: f64, current: usize) -> ScaleAction {
        self.tick_with_burn(now, utilization, 0.0, current)
    }

    /// [`AutoScaler::tick`] with the SLO fast-window burn rate as an
    /// additional scale-up input. A burn at or above
    /// [`ScalingConfig::burn_up_threshold`] (when that threshold is
    /// positive) triggers scale-up even while queue utilization is still
    /// comfortable; burn never triggers scale-*down* — recovery is left
    /// to the utilization signal, which is the one that proves capacity
    /// is actually idle.
    pub fn tick_with_burn(
        &mut self,
        now: Duration,
        utilization: f64,
        burn_rate: f64,
        current: usize,
    ) -> ScaleAction {
        let min = self.config.min_workers.max(1);
        let max = self.config.max_workers.max(min);
        if let Some(last) = self.last_action_at {
            if now.saturating_sub(last) < self.config.cooldown() {
                return ScaleAction::Hold;
            }
        }
        // Out-of-bounds pools step back toward the band even when the
        // utilization alone wouldn't trigger anything.
        if current < min {
            self.last_action_at = Some(now);
            return ScaleAction::Up(min);
        }
        if current > max {
            self.last_action_at = Some(now);
            return ScaleAction::Down(max);
        }
        let burn_hot = self.config.burn_up_threshold > 0.0
            && burn_rate.is_finite()
            && burn_rate >= self.config.burn_up_threshold;
        if (utilization >= self.config.scale_up_threshold || burn_hot) && current < max {
            self.last_action_at = Some(now);
            return ScaleAction::Up(current + 1);
        }
        // Burn rate vetoes scale-down: an SLO actively burning means the
        // pool is not surplus no matter what the queue depth says.
        if utilization <= self.config.scale_down_threshold && current > min && !burn_hot {
            self.last_action_at = Some(now);
            return ScaleAction::Down(current - 1);
        }
        ScaleAction::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ScalingConfig {
        ScalingConfig {
            auto_scaling: true,
            min_workers: 2,
            max_workers: 6,
            scale_up_threshold: 0.75,
            scale_down_threshold: 0.25,
            cooldown_secs: 5.0,
            burn_up_threshold: 0.0,
        }
    }

    fn at(secs: u64) -> Duration {
        Duration::from_secs(secs)
    }

    #[test]
    fn scales_up_at_threshold_and_respects_max() {
        let mut scaler = AutoScaler::new(config());
        assert_eq!(scaler.tick(at(0), 0.80, 2), ScaleAction::Up(3));
        // Cooldown elapsed, still hot: keep stepping up to the cap.
        assert_eq!(scaler.tick(at(10), 1.00, 3), ScaleAction::Up(4));
        assert_eq!(scaler.tick(at(20), 1.00, 6), ScaleAction::Hold);
    }

    #[test]
    fn scales_down_at_threshold_and_respects_min() {
        let mut scaler = AutoScaler::new(config());
        assert_eq!(scaler.tick(at(0), 0.10, 4), ScaleAction::Down(3));
        assert_eq!(scaler.tick(at(10), 0.0, 3), ScaleAction::Down(2));
        assert_eq!(scaler.tick(at(20), 0.0, 2), ScaleAction::Hold);
    }

    #[test]
    fn holds_in_the_dead_band() {
        let mut scaler = AutoScaler::new(config());
        assert_eq!(scaler.tick(at(0), 0.50, 4), ScaleAction::Hold);
        assert_eq!(scaler.tick(at(1), 0.74, 4), ScaleAction::Hold);
        assert_eq!(scaler.tick(at(2), 0.26, 4), ScaleAction::Hold);
    }

    #[test]
    fn cooldown_suppresses_consecutive_actions() {
        let mut scaler = AutoScaler::new(config());
        assert_eq!(scaler.tick(at(0), 0.90, 2), ScaleAction::Up(3));
        // Still hot, but inside the 5s cooldown: hold.
        assert_eq!(scaler.tick(at(1), 0.95, 3), ScaleAction::Hold);
        assert_eq!(scaler.tick(at(4), 0.95, 3), ScaleAction::Hold);
        // Cooldown expiry releases the next action.
        assert_eq!(scaler.tick(at(5), 0.95, 3), ScaleAction::Up(4));
        // A Hold decision must NOT restart the cooldown clock.
        assert_eq!(scaler.tick(at(6), 0.50, 4), ScaleAction::Hold);
        assert_eq!(scaler.tick(at(10), 0.95, 4), ScaleAction::Up(5));
    }

    #[test]
    fn up_down_transition_across_a_load_swing() {
        let mut scaler = AutoScaler::new(config());
        // Burst: up at t=0, cooldown gates t=3, up again at t=6.
        assert_eq!(scaler.tick(at(0), 0.90, 2), ScaleAction::Up(3));
        assert_eq!(scaler.tick(at(3), 0.90, 3), ScaleAction::Hold);
        assert_eq!(scaler.tick(at(6), 0.90, 3), ScaleAction::Up(4));
        // Load evaporates: down at t=12, then step back to min.
        assert_eq!(scaler.tick(at(12), 0.05, 4), ScaleAction::Down(3));
        assert_eq!(scaler.tick(at(18), 0.05, 3), ScaleAction::Down(2));
        assert_eq!(scaler.tick(at(24), 0.05, 2), ScaleAction::Hold);
    }

    #[test]
    fn out_of_band_pools_step_back_into_bounds() {
        let mut scaler = AutoScaler::new(config());
        assert_eq!(scaler.tick(at(0), 0.50, 1), ScaleAction::Up(2));
        assert_eq!(scaler.tick(at(10), 0.50, 9), ScaleAction::Down(6));
    }

    #[test]
    fn burn_rate_scales_up_before_queue_saturation() {
        let mut scaler = AutoScaler::new(ScalingConfig {
            burn_up_threshold: 2.0,
            ..config()
        });
        // Queue looks healthy (0.40 < 0.75) but the SLO is burning its
        // budget 3x: grow anyway.
        assert_eq!(scaler.tick_with_burn(at(0), 0.40, 3.0, 2), ScaleAction::Up(3));
        // Cooldown still applies to burn-driven actions.
        assert_eq!(scaler.tick_with_burn(at(1), 0.40, 5.0, 3), ScaleAction::Hold);
        // Below the burn threshold and in the utilization dead band: hold.
        assert_eq!(scaler.tick_with_burn(at(10), 0.40, 1.0, 3), ScaleAction::Hold);
    }

    #[test]
    fn burn_rate_vetoes_scale_down() {
        let mut scaler = AutoScaler::new(ScalingConfig {
            burn_up_threshold: 2.0,
            ..config()
        });
        // Idle queue would normally shrink the pool, but the SLO burn
        // says the capacity is not actually surplus. At max already, so
        // the burn can't grow it either: hold.
        assert_eq!(scaler.tick_with_burn(at(0), 0.05, 4.0, 6), ScaleAction::Hold);
        // Burn subsides: the utilization signal reclaims the workers.
        assert_eq!(scaler.tick_with_burn(at(10), 0.05, 0.1, 6), ScaleAction::Down(5));
    }

    #[test]
    fn zero_burn_threshold_disables_the_input() {
        let mut scaler = AutoScaler::new(config()); // burn_up_threshold: 0.0
        // Enormous burn, but the input is disabled: utilization rules.
        assert_eq!(scaler.tick_with_burn(at(0), 0.40, 100.0, 3), ScaleAction::Hold);
        assert_eq!(scaler.tick_with_burn(at(1), 0.10, 100.0, 3), ScaleAction::Down(2));
    }

    #[test]
    fn degenerate_bounds_are_clamped() {
        let mut scaler = AutoScaler::new(ScalingConfig {
            min_workers: 0,
            max_workers: 0,
            ..config()
        });
        // min clamps to 1, max clamps to min.
        assert_eq!(scaler.tick(at(0), 1.0, 1), ScaleAction::Hold);
        assert_eq!(scaler.tick(at(1), 0.0, 1), ScaleAction::Hold);
    }
}
