//! Serving statistics: lock-free latency histograms and counter snapshots.
//!
//! Latencies are recorded into power-of-two microsecond buckets with
//! atomic increments, so the hot path never takes a lock; percentiles are
//! derived from the bucket counts at snapshot time (resolution: one
//! bucket, i.e. at most 2x — the standard trade of HDR-style serving
//! histograms).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two buckets: bucket `i` holds latencies in
/// `[2^i, 2^(i+1))` microseconds, the last bucket absorbs the tail
/// (2^39 µs is ~6.4 days — nothing legitimate lands there).
const NUM_BUCKETS: usize = 40;

/// Lock-free log-bucketed latency histogram.
pub struct LatencyHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_us: AtomicU64::new(0),
        }
    }

    fn bucket_index(micros: u64) -> usize {
        // 1 µs (and anything faster) lands in bucket 0.
        (63 - micros.max(1).leading_zeros() as usize).min(NUM_BUCKETS - 1)
    }

    /// Record one observed latency.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.buckets[Self::bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(micros, Ordering::Relaxed);
    }

    /// Snapshot with derived percentiles.
    pub fn snapshot(&self) -> LatencySnapshot {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count: u64 = buckets.iter().sum();
        let total_us = self.total_us.load(Ordering::Relaxed);
        let percentile = |p: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((p * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    // Upper bound of the bucket: conservative (never
                    // under-reports a percentile).
                    return 1u64 << (i + 1);
                }
            }
            1u64 << NUM_BUCKETS
        };
        LatencySnapshot {
            count,
            mean_us: if count == 0 { 0.0 } else { total_us as f64 / count as f64 },
            p50_us: percentile(0.50),
            p95_us: percentile(0.95),
            p99_us: percentile(0.99),
        }
    }
}

/// Derived latency summary.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencySnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Arithmetic mean in microseconds (exact, not bucketed).
    pub mean_us: f64,
    /// Median upper bound in microseconds.
    pub p50_us: u64,
    /// 95th-percentile upper bound in microseconds.
    pub p95_us: u64,
    /// 99th-percentile upper bound in microseconds.
    pub p99_us: u64,
}

/// Point-in-time server statistics (see `ScoringServer::stats`).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServerStatsSnapshot {
    /// Requests accepted by `submit` (including cache hits and sheds).
    pub submitted: u64,
    /// Requests answered (any path).
    pub completed: u64,
    /// Requests answered from the signature cache.
    pub cache_hits: u64,
    /// Requests scored by the model worker pool.
    pub model_scored: u64,
    /// Requests shed to the analytic tier under queue pressure.
    pub shed: u64,
    /// Requests rejected with `Overloaded`.
    pub rejected: u64,
    /// Micro-batches executed by the worker pool.
    pub batches: u64,
    /// Requests carried by those batches (mean batch size =
    /// `batched_requests / batches`).
    pub batched_requests: u64,
    /// Highest queue depth ever observed.
    pub peak_queue_depth: u64,
    /// Model-registry generation at snapshot time.
    pub generation: u64,
    /// End-to-end latency summary.
    pub latency: LatencySnapshot,
    /// Signature-cache counters.
    pub cache: crate::cache::CacheStats,
}

impl ServerStatsSnapshot {
    /// Mean micro-batch size (0 when no batch ran).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_buckets_latencies() {
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(Duration::from_micros(10));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(5));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        // 10 µs lands in [8,16): p50 upper bound is 16.
        assert_eq!(snap.p50_us, 16);
        // p95 straddles into the 5 ms bucket [4096, 8192).
        assert_eq!(snap.p99_us, 8192);
        assert!(snap.p95_us <= snap.p99_us);
        assert!((snap.mean_us - (90.0 * 10.0 + 10.0 * 5000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_snapshots_zeros() {
        let snap = LatencyHistogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50_us, 0);
        assert_eq!(snap.p99_us, 0);
        assert_eq!(snap.mean_us, 0.0);
    }

    #[test]
    fn sub_microsecond_and_huge_latencies_stay_in_range() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(1));
        h.record(Duration::from_secs(60 * 60 * 24 * 30));
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert!(snap.p50_us >= 1);
    }

    #[test]
    fn percentiles_are_monotone_in_p() {
        let h = LatencyHistogram::new();
        for i in 0..1000u64 {
            h.record(Duration::from_micros(1 + i * 7));
        }
        let snap = h.snapshot();
        assert!(snap.p50_us <= snap.p95_us && snap.p95_us <= snap.p99_us);
    }

    #[test]
    fn mean_batch_size_divides_safely() {
        let mut snap = ServerStatsSnapshot::default();
        assert_eq!(snap.mean_batch_size(), 0.0);
        snap.batches = 4;
        snap.batched_requests = 10;
        assert!((snap.mean_batch_size() - 2.5).abs() < 1e-12);
    }
}
