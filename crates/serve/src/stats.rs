//! Serving statistics: lock-free latency histograms and counter snapshots.
//!
//! Latencies are recorded into the shared log-linear histogram from
//! [`tasq_obs::metrics`] — 4 linear sub-buckets per power-of-two octave —
//! with atomic increments, so the hot path never takes a lock.
//! Percentiles are derived at snapshot time with intra-bucket linear
//! interpolation, bounding the relative error per observation to one
//! quarter-octave (~12.5%) instead of the 2x a pure power-of-two
//! bucketing allows (which collapsed p50 and p95 into the same value on
//! realistic unimodal latency distributions).

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Lock-free log-linear latency histogram (microsecond resolution).
///
/// Thin wrapper over [`tasq_obs::Histogram`] that speaks [`Duration`] on
/// the way in and serving-style percentile snapshots on the way out. The
/// wrapped handle is shareable: construct with [`LatencyHistogram::from_handle`]
/// to record into a histogram that is also registered in the global
/// metrics [`tasq_obs::Registry`], so one `record` feeds both the server
/// snapshot and the Prometheus exposition.
pub struct LatencyHistogram {
    inner: tasq_obs::Histogram,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Empty, detached histogram.
    pub fn new() -> Self {
        Self { inner: tasq_obs::Histogram::new() }
    }

    /// Wrap an existing histogram handle (typically one obtained from the
    /// global metrics registry).
    pub fn from_handle(inner: tasq_obs::Histogram) -> Self {
        Self { inner }
    }

    /// Record one observed latency.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.inner.record(micros);
    }

    /// Record one observed latency attributed to a trace, retaining it
    /// as an exemplar when it lands in the histogram's slow tail.
    pub fn record_traced(&self, latency: Duration, trace_id: u128) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.inner.record_traced(micros, trace_id);
    }

    /// Snapshot with derived percentiles.
    pub fn snapshot(&self) -> LatencySnapshot {
        let count = self.inner.count();
        LatencySnapshot {
            count,
            mean_us: self.inner.mean(),
            p50_us: self.inner.quantile(0.50),
            p95_us: self.inner.quantile(0.95),
            p99_us: self.inner.quantile(0.99),
            p999_us: self.inner.quantile(0.999),
        }
    }
}

/// Derived latency summary.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencySnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Arithmetic mean in microseconds (exact, not bucketed).
    pub mean_us: f64,
    /// Median estimate in microseconds (intra-bucket interpolated).
    pub p50_us: f64,
    /// 95th-percentile estimate in microseconds.
    pub p95_us: f64,
    /// 99th-percentile estimate in microseconds.
    pub p99_us: f64,
    /// 99.9th-percentile estimate in microseconds (the tail the SLO
    /// burn-rate engine and exemplars exist to explain).
    pub p999_us: f64,
}

/// Point-in-time server statistics (see `ScoringServer::stats`).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServerStatsSnapshot {
    /// Requests accepted by `submit` (including cache hits and sheds).
    pub submitted: u64,
    /// Requests answered (any path).
    pub completed: u64,
    /// Requests answered from the signature cache.
    pub cache_hits: u64,
    /// Cache hits answered inline on a serving event-loop thread via
    /// `try_score_cached` (a subset of `cache_hits`).
    pub fastpath_hits: u64,
    /// Requests scored by the model worker pool.
    pub model_scored: u64,
    /// Requests shed to the analytic tier under queue pressure.
    pub shed: u64,
    /// Requests rejected with `Overloaded`.
    pub rejected: u64,
    /// Micro-batches executed by the worker pool.
    pub batches: u64,
    /// Requests carried by those batches (mean batch size =
    /// `batched_requests / batches`).
    pub batched_requests: u64,
    /// Highest queue depth ever observed.
    pub peak_queue_depth: u64,
    /// Admitted requests resolved as `WorkerLost` by an unwinding worker.
    pub worker_lost: u64,
    /// Admitted requests resolved as over their deadline budget.
    pub deadline_timeouts: u64,
    /// Panicked workers respawned by the supervisor.
    pub worker_respawns: u64,
    /// Primary-tier circuit-breaker open transitions.
    pub breaker_trips: u64,
    /// Circuit-breaker half-open → closed recoveries.
    pub breaker_recoveries: u64,
    /// Model-registry generation at snapshot time.
    pub generation: u64,
    /// End-to-end latency summary.
    pub latency: LatencySnapshot,
    /// Signature-cache counters.
    pub cache: crate::cache::CacheStats,
}

impl ServerStatsSnapshot {
    /// Submissions that resolved to *some* terminal outcome: a response
    /// (`completed`), an overload rejection, a typed `WorkerLost`, or a
    /// typed deadline timeout. The zero-silent-loss invariant the chaos
    /// harness enforces is `submitted == resolved()`.
    pub fn resolved(&self) -> u64 {
        self.completed + self.rejected + self.worker_lost + self.deadline_timeouts
    }

    /// Mean micro-batch size (0 when no batch ran).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// Publish every counter in this snapshot as a gauge in the global
    /// metrics registry, so the Prometheus/JSON expositions carry the
    /// serving state alongside the always-on counters. Gauges (not
    /// counters) because a snapshot is a point-in-time level, re-published
    /// wholesale on each call.
    pub fn publish(&self, registry: &tasq_obs::Registry) {
        let g = |name: &str, help: &str, value: f64| {
            registry.gauge(name, help).set(value);
        };
        g("serve_submitted", "requests accepted by submit", self.submitted as f64);
        g("serve_completed", "requests answered on any path", self.completed as f64);
        g("serve_cache_hits", "requests answered from the signature cache", self.cache_hits as f64);
        g(
            "serve_fastpath_hits",
            "cache hits answered inline on the serving event loop",
            self.fastpath_hits as f64,
        );
        g("serve_model_scored", "requests scored by the worker pool", self.model_scored as f64);
        g("serve_shed", "requests shed to the analytic tier", self.shed as f64);
        g("serve_rejected", "requests rejected as overloaded", self.rejected as f64);
        g("serve_batches", "micro-batches executed", self.batches as f64);
        g("serve_batched_requests", "requests carried by micro-batches", self.batched_requests as f64);
        g("serve_peak_queue_depth", "highest queue depth observed", self.peak_queue_depth as f64);
        g("serve_worker_lost", "requests resolved as WorkerLost", self.worker_lost as f64);
        g(
            "serve_deadline_timeouts_snapshot",
            "requests resolved as over deadline",
            self.deadline_timeouts as f64,
        );
        g(
            "serve_worker_respawns_snapshot",
            "panicked workers respawned",
            self.worker_respawns as f64,
        );
        g("serve_breaker_trips_snapshot", "breaker open transitions", self.breaker_trips as f64);
        g(
            "serve_breaker_recoveries",
            "breaker half-open to closed recoveries",
            self.breaker_recoveries as f64,
        );
        g("serve_model_generation", "model-registry generation", self.generation as f64);
        g("serve_cache_misses", "signature-cache misses", self.cache.misses as f64);
        g("serve_cache_evictions", "signature-cache evictions", self.cache.evictions as f64);
        g("serve_cache_insertions", "signature-cache insertions", self.cache.insertions as f64);
        g("serve_cache_entries", "signature-cache live entries", self.cache.entries as f64);
        g("serve_cache_hit_rate", "signature-cache hit rate", self.cache.hit_rate());
    }
}

/// Retained slots in a [`SlowestTracker`] — fixed so sustained load can
/// never grow the tracker's memory.
pub const SLOWEST_SLOTS: usize = 8;

/// One slow request retained for `/debug/slowest`: its trace identity
/// plus the per-segment breakdown that explains where the time went.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowRequest {
    /// Trace id (0 when the request was untraced).
    pub trace_id: u128,
    /// End-to-end latency in microseconds.
    pub total_us: u64,
    /// Which serving path answered (`"cache"`, `"model"`, `"shed"`).
    pub via: &'static str,
    /// Model tier that scored it (`"-"` for inline paths).
    pub tier: &'static str,
    /// Submit-entry → admission decision (the whole request, for inline
    /// cache/shed answers).
    pub fastpath_probe_us: u64,
    /// Enqueue → worker dequeue.
    pub queue_wait_us: u64,
    /// Dequeue → this request's scoring turn (batch fill + in-batch
    /// predecessors).
    pub batch_wait_us: u64,
    /// Scoring proper.
    pub score_us: u64,
    /// Score end → completion bookkeeping.
    pub flush_us: u64,
}

/// Fixed-slot top-N-by-latency tracker behind `/debug/slowest`.
///
/// Same retention discipline as the histogram exemplars: an atomic floor
/// makes the common case (request faster than everything retained) one
/// relaxed load with no lock, and the slot array never grows.
pub struct SlowestTracker {
    /// Smallest retained total; `u64::MAX` until the slots fill.
    floor: AtomicU64,
    slots: Mutex<[Option<SlowRequest>; SLOWEST_SLOTS]>,
}

impl Default for SlowestTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl SlowestTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self {
            floor: AtomicU64::new(u64::MAX),
            slots: Mutex::new(std::array::from_fn(|_| None)),
        }
    }

    /// Offer one completed request; retained iff it beats the slowest-N
    /// floor. Requests faster than the floor cost one relaxed load.
    pub fn offer(&self, request: SlowRequest) {
        let floor = self.floor.load(Ordering::Relaxed);
        if floor != u64::MAX && request.total_us <= floor {
            return;
        }
        let mut slots = self.slots.lock();
        if let Some(slot) = slots.iter_mut().find(|s| s.is_none()) {
            *slot = Some(request);
            return;
        }
        let Some(min_index) = (0..slots.len())
            .min_by_key(|&i| slots[i].as_ref().map_or(0, |s| s.total_us))
        else {
            return;
        };
        let min_total = slots[min_index].as_ref().map_or(0, |s| s.total_us);
        if request.total_us > min_total {
            slots[min_index] = Some(request);
        }
        let new_floor = slots
            .iter()
            .flatten()
            .map(|s| s.total_us)
            .min()
            .unwrap_or(u64::MAX);
        self.floor.store(new_floor, Ordering::Relaxed);
    }

    /// Retained requests, slowest first.
    pub fn snapshot(&self) -> Vec<SlowRequest> {
        let mut out: Vec<SlowRequest> = self.slots.lock().iter().flatten().cloned().collect();
        out.sort_by_key(|s| std::cmp::Reverse(s.total_us));
        out
    }

    /// Hand-rolled JSON for the `/debug/slowest` endpoint.
    pub fn render_json(&self) -> String {
        let entries: Vec<String> = self
            .snapshot()
            .into_iter()
            .map(|s| {
                format!(
                    "{{\"trace_id\":\"{:032x}\",\"total_us\":{},\"via\":\"{}\",\"tier\":\"{}\",\
                     \"segments\":{{\"fastpath_probe_us\":{},\"queue_wait_us\":{},\
                     \"batch_wait_us\":{},\"score_us\":{},\"flush_us\":{}}}}}",
                    s.trace_id,
                    s.total_us,
                    s.via,
                    s.tier,
                    s.fastpath_probe_us,
                    s.queue_wait_us,
                    s.batch_wait_us,
                    s.score_us,
                    s.flush_us
                )
            })
            .collect();
        format!("{{\"slowest\":[{}]}}", entries.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_buckets_latencies() {
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(Duration::from_micros(10));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(5));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        // 10 µs lands in the [10, 12) sub-bucket; interpolation keeps the
        // median near the true value instead of reporting the octave top.
        assert!((10.0..12.0).contains(&snap.p50_us), "p50 {}", snap.p50_us);
        // 5 ms lands in [4096, 5120): p99 interpolates inside it.
        assert!((4096.0..5120.0).contains(&snap.p99_us), "p99 {}", snap.p99_us);
        assert!(snap.p95_us <= snap.p99_us);
        // The bimodal split is resolved: p95 sits in the slow mode, far
        // from the 10 µs median (the old power-of-two buckets collapsed
        // these within one octave).
        assert!(snap.p95_us - snap.p50_us > 4000.0);
        assert!((snap.mean_us - (90.0 * 10.0 + 10.0 * 5000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_snapshots_zeros() {
        let snap = LatencyHistogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50_us, 0.0);
        assert_eq!(snap.p99_us, 0.0);
        assert_eq!(snap.mean_us, 0.0);
    }

    #[test]
    fn sub_microsecond_and_huge_latencies_stay_in_range() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(1));
        h.record(Duration::from_secs(60 * 60 * 24 * 30));
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert!(snap.p99_us >= snap.p50_us);
        assert!(snap.p99_us.is_finite());
    }

    #[test]
    fn percentiles_are_monotone_in_p() {
        let h = LatencyHistogram::new();
        for i in 0..1000u64 {
            h.record(Duration::from_micros(1 + i * 7));
        }
        let snap = h.snapshot();
        assert!(snap.p50_us <= snap.p95_us && snap.p95_us <= snap.p99_us);
        assert!(snap.p99_us <= snap.p999_us, "p999 {} < p99 {}", snap.p999_us, snap.p99_us);
        // Interpolation may overshoot the true max (6994) up to the top
        // occupied bucket's upper edge.
        assert!(snap.p999_us <= 7168.0, "p999 {} out of range", snap.p999_us);
        // Uniform over [1, 6994]: interpolated percentiles track the true
        // quantiles within one quarter-octave.
        assert!((snap.p50_us / 3497.0 - 1.0).abs() < 0.15, "p50 {}", snap.p50_us);
        assert!((snap.p95_us / 6644.0 - 1.0).abs() < 0.15, "p95 {}", snap.p95_us);
    }

    #[test]
    fn registry_handle_feeds_exposition_and_snapshot() {
        let registry = tasq_obs::Registry::new();
        let h = LatencyHistogram::from_handle(
            registry.histogram("serve_latency_us", "end-to-end latency"),
        );
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(200));
        assert_eq!(h.snapshot().count, 2);
        let text = registry.render_prometheus();
        assert!(text.contains("serve_latency_us_count 2"));
        assert!(text.contains("serve_latency_us_sum 300"));
    }

    #[test]
    fn snapshot_publish_writes_gauges() {
        let registry = tasq_obs::Registry::new();
        let snap = ServerStatsSnapshot {
            submitted: 10,
            completed: 9,
            cache_hits: 3,
            shed: 1,
            ..Default::default()
        };
        snap.publish(&registry);
        let text = registry.render_prometheus();
        assert!(text.contains("serve_submitted 10"));
        assert!(text.contains("serve_completed 9"));
        assert!(text.contains("serve_cache_hits 3"));
        assert!(text.contains("serve_shed 1"));
    }

    fn slow(total_us: u64, trace_id: u128) -> SlowRequest {
        SlowRequest {
            trace_id,
            total_us,
            via: "model",
            tier: "primary",
            fastpath_probe_us: 1,
            queue_wait_us: 2,
            batch_wait_us: 3,
            score_us: total_us.saturating_sub(7),
            flush_us: 1,
        }
    }

    #[test]
    fn slowest_tracker_keeps_the_worst_n_and_stays_bounded() {
        let tracker = SlowestTracker::new();
        for i in 0..10_000u64 {
            tracker.offer(slow(i, u128::from(i) + 1));
        }
        let snap = tracker.snapshot();
        assert_eq!(snap.len(), SLOWEST_SLOTS, "retention is slot-bounded");
        assert_eq!(snap[0].total_us, 9_999, "worst request retained");
        for pair in snap.windows(2) {
            assert!(pair[0].total_us >= pair[1].total_us, "sorted slowest-first");
        }
        assert!(
            snap.iter().all(|s| s.total_us >= 10_000 - SLOWEST_SLOTS as u64),
            "only the global worst survive"
        );
    }

    #[test]
    fn slowest_json_carries_trace_ids_and_segments() {
        let tracker = SlowestTracker::new();
        tracker.offer(slow(5000, 0xabcdef01));
        let json = tracker.render_json();
        assert!(json.contains("\"trace_id\":\"000000000000000000000000abcdef01\""), "{json}");
        assert!(json.contains("\"total_us\":5000"), "{json}");
        assert!(json.contains("\"queue_wait_us\":2"), "{json}");
        let parsed = tasq_obs::json::parse(&json).expect("slowest json parses");
        drop(parsed);
    }

    #[test]
    fn mean_batch_size_divides_safely() {
        let mut snap = ServerStatsSnapshot::default();
        assert_eq!(snap.mean_batch_size(), 0.0);
        snap.batches = 4;
        snap.batched_requests = 10;
        assert!((snap.mean_batch_size() - 2.5).abs() < 1e-12);
    }
}
