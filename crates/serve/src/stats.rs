//! Serving statistics: lock-free latency histograms and counter snapshots.
//!
//! Latencies are recorded into the shared log-linear histogram from
//! [`tasq_obs::metrics`] — 4 linear sub-buckets per power-of-two octave —
//! with atomic increments, so the hot path never takes a lock.
//! Percentiles are derived at snapshot time with intra-bucket linear
//! interpolation, bounding the relative error per observation to one
//! quarter-octave (~12.5%) instead of the 2x a pure power-of-two
//! bucketing allows (which collapsed p50 and p95 into the same value on
//! realistic unimodal latency distributions).

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Lock-free log-linear latency histogram (microsecond resolution).
///
/// Thin wrapper over [`tasq_obs::Histogram`] that speaks [`Duration`] on
/// the way in and serving-style percentile snapshots on the way out. The
/// wrapped handle is shareable: construct with [`LatencyHistogram::from_handle`]
/// to record into a histogram that is also registered in the global
/// metrics [`tasq_obs::Registry`], so one `record` feeds both the server
/// snapshot and the Prometheus exposition.
pub struct LatencyHistogram {
    inner: tasq_obs::Histogram,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Empty, detached histogram.
    pub fn new() -> Self {
        Self { inner: tasq_obs::Histogram::new() }
    }

    /// Wrap an existing histogram handle (typically one obtained from the
    /// global metrics registry).
    pub fn from_handle(inner: tasq_obs::Histogram) -> Self {
        Self { inner }
    }

    /// Record one observed latency.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.inner.record(micros);
    }

    /// Snapshot with derived percentiles.
    pub fn snapshot(&self) -> LatencySnapshot {
        let count = self.inner.count();
        LatencySnapshot {
            count,
            mean_us: self.inner.mean(),
            p50_us: self.inner.quantile(0.50),
            p95_us: self.inner.quantile(0.95),
            p99_us: self.inner.quantile(0.99),
        }
    }
}

/// Derived latency summary.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencySnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Arithmetic mean in microseconds (exact, not bucketed).
    pub mean_us: f64,
    /// Median estimate in microseconds (intra-bucket interpolated).
    pub p50_us: f64,
    /// 95th-percentile estimate in microseconds.
    pub p95_us: f64,
    /// 99th-percentile estimate in microseconds.
    pub p99_us: f64,
}

/// Point-in-time server statistics (see `ScoringServer::stats`).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServerStatsSnapshot {
    /// Requests accepted by `submit` (including cache hits and sheds).
    pub submitted: u64,
    /// Requests answered (any path).
    pub completed: u64,
    /// Requests answered from the signature cache.
    pub cache_hits: u64,
    /// Cache hits answered inline on a serving event-loop thread via
    /// `try_score_cached` (a subset of `cache_hits`).
    pub fastpath_hits: u64,
    /// Requests scored by the model worker pool.
    pub model_scored: u64,
    /// Requests shed to the analytic tier under queue pressure.
    pub shed: u64,
    /// Requests rejected with `Overloaded`.
    pub rejected: u64,
    /// Micro-batches executed by the worker pool.
    pub batches: u64,
    /// Requests carried by those batches (mean batch size =
    /// `batched_requests / batches`).
    pub batched_requests: u64,
    /// Highest queue depth ever observed.
    pub peak_queue_depth: u64,
    /// Admitted requests resolved as `WorkerLost` by an unwinding worker.
    pub worker_lost: u64,
    /// Admitted requests resolved as over their deadline budget.
    pub deadline_timeouts: u64,
    /// Panicked workers respawned by the supervisor.
    pub worker_respawns: u64,
    /// Primary-tier circuit-breaker open transitions.
    pub breaker_trips: u64,
    /// Circuit-breaker half-open → closed recoveries.
    pub breaker_recoveries: u64,
    /// Model-registry generation at snapshot time.
    pub generation: u64,
    /// End-to-end latency summary.
    pub latency: LatencySnapshot,
    /// Signature-cache counters.
    pub cache: crate::cache::CacheStats,
}

impl ServerStatsSnapshot {
    /// Submissions that resolved to *some* terminal outcome: a response
    /// (`completed`), an overload rejection, a typed `WorkerLost`, or a
    /// typed deadline timeout. The zero-silent-loss invariant the chaos
    /// harness enforces is `submitted == resolved()`.
    pub fn resolved(&self) -> u64 {
        self.completed + self.rejected + self.worker_lost + self.deadline_timeouts
    }

    /// Mean micro-batch size (0 when no batch ran).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// Publish every counter in this snapshot as a gauge in the global
    /// metrics registry, so the Prometheus/JSON expositions carry the
    /// serving state alongside the always-on counters. Gauges (not
    /// counters) because a snapshot is a point-in-time level, re-published
    /// wholesale on each call.
    pub fn publish(&self, registry: &tasq_obs::Registry) {
        let g = |name: &str, help: &str, value: f64| {
            registry.gauge(name, help).set(value);
        };
        g("serve_submitted", "requests accepted by submit", self.submitted as f64);
        g("serve_completed", "requests answered on any path", self.completed as f64);
        g("serve_cache_hits", "requests answered from the signature cache", self.cache_hits as f64);
        g(
            "serve_fastpath_hits",
            "cache hits answered inline on the serving event loop",
            self.fastpath_hits as f64,
        );
        g("serve_model_scored", "requests scored by the worker pool", self.model_scored as f64);
        g("serve_shed", "requests shed to the analytic tier", self.shed as f64);
        g("serve_rejected", "requests rejected as overloaded", self.rejected as f64);
        g("serve_batches", "micro-batches executed", self.batches as f64);
        g("serve_batched_requests", "requests carried by micro-batches", self.batched_requests as f64);
        g("serve_peak_queue_depth", "highest queue depth observed", self.peak_queue_depth as f64);
        g("serve_worker_lost", "requests resolved as WorkerLost", self.worker_lost as f64);
        g(
            "serve_deadline_timeouts_snapshot",
            "requests resolved as over deadline",
            self.deadline_timeouts as f64,
        );
        g(
            "serve_worker_respawns_snapshot",
            "panicked workers respawned",
            self.worker_respawns as f64,
        );
        g("serve_breaker_trips_snapshot", "breaker open transitions", self.breaker_trips as f64);
        g(
            "serve_breaker_recoveries",
            "breaker half-open to closed recoveries",
            self.breaker_recoveries as f64,
        );
        g("serve_model_generation", "model-registry generation", self.generation as f64);
        g("serve_cache_misses", "signature-cache misses", self.cache.misses as f64);
        g("serve_cache_evictions", "signature-cache evictions", self.cache.evictions as f64);
        g("serve_cache_insertions", "signature-cache insertions", self.cache.insertions as f64);
        g("serve_cache_entries", "signature-cache live entries", self.cache.entries as f64);
        g("serve_cache_hit_rate", "signature-cache hit rate", self.cache.hit_rate());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_buckets_latencies() {
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(Duration::from_micros(10));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(5));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        // 10 µs lands in the [10, 12) sub-bucket; interpolation keeps the
        // median near the true value instead of reporting the octave top.
        assert!((10.0..12.0).contains(&snap.p50_us), "p50 {}", snap.p50_us);
        // 5 ms lands in [4096, 5120): p99 interpolates inside it.
        assert!((4096.0..5120.0).contains(&snap.p99_us), "p99 {}", snap.p99_us);
        assert!(snap.p95_us <= snap.p99_us);
        // The bimodal split is resolved: p95 sits in the slow mode, far
        // from the 10 µs median (the old power-of-two buckets collapsed
        // these within one octave).
        assert!(snap.p95_us - snap.p50_us > 4000.0);
        assert!((snap.mean_us - (90.0 * 10.0 + 10.0 * 5000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_snapshots_zeros() {
        let snap = LatencyHistogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50_us, 0.0);
        assert_eq!(snap.p99_us, 0.0);
        assert_eq!(snap.mean_us, 0.0);
    }

    #[test]
    fn sub_microsecond_and_huge_latencies_stay_in_range() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(1));
        h.record(Duration::from_secs(60 * 60 * 24 * 30));
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert!(snap.p99_us >= snap.p50_us);
        assert!(snap.p99_us.is_finite());
    }

    #[test]
    fn percentiles_are_monotone_in_p() {
        let h = LatencyHistogram::new();
        for i in 0..1000u64 {
            h.record(Duration::from_micros(1 + i * 7));
        }
        let snap = h.snapshot();
        assert!(snap.p50_us <= snap.p95_us && snap.p95_us <= snap.p99_us);
        // Uniform over [1, 6994]: interpolated percentiles track the true
        // quantiles within one quarter-octave.
        assert!((snap.p50_us / 3497.0 - 1.0).abs() < 0.15, "p50 {}", snap.p50_us);
        assert!((snap.p95_us / 6644.0 - 1.0).abs() < 0.15, "p95 {}", snap.p95_us);
    }

    #[test]
    fn registry_handle_feeds_exposition_and_snapshot() {
        let registry = tasq_obs::Registry::new();
        let h = LatencyHistogram::from_handle(
            registry.histogram("serve_latency_us", "end-to-end latency"),
        );
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(200));
        assert_eq!(h.snapshot().count, 2);
        let text = registry.render_prometheus();
        assert!(text.contains("serve_latency_us_count 2"));
        assert!(text.contains("serve_latency_us_sum 300"));
    }

    #[test]
    fn snapshot_publish_writes_gauges() {
        let registry = tasq_obs::Registry::new();
        let snap = ServerStatsSnapshot {
            submitted: 10,
            completed: 9,
            cache_hits: 3,
            shed: 1,
            ..Default::default()
        };
        snap.publish(&registry);
        let text = registry.render_prometheus();
        assert!(text.contains("serve_submitted 10"));
        assert!(text.contains("serve_completed 9"));
        assert!(text.contains("serve_cache_hits 3"));
        assert!(text.contains("serve_shed 1"));
    }

    #[test]
    fn mean_batch_size_divides_safely() {
        let mut snap = ServerStatsSnapshot::default();
        assert_eq!(snap.mean_batch_size(), 0.0);
        snap.batches = 4;
        snap.batched_requests = 10;
        assert!((snap.mean_batch_size() - 2.5).abs() < 1e-12);
    }
}
