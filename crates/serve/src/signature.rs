//! Deterministic plan signatures.
//!
//! The serving cache is keyed by a 64-bit hash (FNV-seeded, splitmix-style
//! word mixing) over exactly the
//! compile-time information the featurizer reads from a submitted job:
//! every operator's categorical identity (operator + partitioning one-hot
//! indices), its discrete features, the bit patterns of its continuous
//! estimates, the DAG edge list, the requested token count, and the job's
//! execution seed (which fixes stage extraction). Two submissions hash
//! identically **iff** the scoring service would featurize them
//! identically — so recurring jobs resubmitted on the same inputs are
//! exact signature matches while any drift in cardinalities, costs, plan
//! shape, or requested allocation produces a different key.
//!
//! The job `id` is deliberately excluded: it names the request, not the
//! plan, and the cache patches it back into cached responses.

use scope_sim::plan::JobPlan;
use scope_sim::Job;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// A deterministic 64-bit signature of a featurized operator DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanSignature(pub u64);

/// Streaming hasher over the plan's feature-relevant words. Each u64 is
/// folded in with a full splitmix64 finalizer round, which avalanches
/// well enough for shard selection while staying a handful of multiplies
/// per word — this sits on the serving fast path, where a byte-at-a-time
/// hash would dominate cache-hit latency.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(FNV_OFFSET)
    }

    fn write_u64(&mut self, value: u64) {
        let mut x = self.0 ^ value.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = x ^ (x >> 31);
    }

    fn write_f64(&mut self, value: f64) {
        // Bit pattern, with -0.0 folded into +0.0 so numerically equal
        // plans cannot diverge on the sign of zero.
        // lint: allow(float-eq) — exact-bit canonicalization of signed zero.
        let canonical = if value == 0.0 { 0.0f64 } else { value };
        self.write_u64(canonical.to_bits());
    }
}

impl PlanSignature {
    /// Signature of a submitted job (plan + requested tokens + seed).
    pub fn of_job(job: &Job) -> Self {
        let mut fnv = Fnv::new();
        hash_plan(&mut fnv, &job.plan);
        fnv.write_u64(job.requested_tokens as u64);
        fnv.write_u64(job.seed);
        Self(fnv.0)
    }

    /// Signature of a bare plan (no request context); useful for
    /// plan-level dedup in analysis tooling.
    pub fn of_plan(plan: &JobPlan) -> Self {
        let mut fnv = Fnv::new();
        hash_plan(&mut fnv, plan);
        Self(fnv.0)
    }

    /// Mix a model-registry generation into the signature, producing the
    /// cache key. Entries cached under an old generation become
    /// unreachable the moment a hot-swap lands, without any coordinated
    /// invalidation: they simply age out of the LRU.
    pub fn cache_key(self, generation: u64) -> u64 {
        let mut fnv = Fnv::new();
        fnv.write_u64(self.0);
        fnv.write_u64(generation);
        fnv.0
    }
}

fn hash_plan(fnv: &mut Fnv, plan: &JobPlan) {
    fnv.write_u64(plan.operators.len() as u64);
    for node in &plan.operators {
        fnv.write_u64(node.op.one_hot_index() as u64);
        fnv.write_u64(node.partitioning.one_hot_index() as u64);
        fnv.write_u64(node.num_partitions as u64);
        fnv.write_u64(node.num_partitioning_columns as u64);
        fnv.write_u64(node.num_sort_columns as u64);
        fnv.write_f64(node.est_output_cardinality);
        fnv.write_f64(node.est_leaf_input_cardinality);
        fnv.write_f64(node.est_children_input_cardinality);
        fnv.write_f64(node.avg_row_length);
        fnv.write_f64(node.est_subtree_cost);
        fnv.write_f64(node.est_exclusive_cost);
        fnv.write_f64(node.est_total_cost);
    }
    fnv.write_u64(plan.edges.len() as u64);
    for &(child, parent) in &plan.edges {
        fnv.write_u64(child as u64);
        fnv.write_u64(parent as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_sim::{WorkloadConfig, WorkloadGenerator};

    fn jobs(n: usize, seed: u64) -> Vec<Job> {
        WorkloadGenerator::new(WorkloadConfig { num_jobs: n, seed, ..Default::default() })
            .generate()
    }

    #[test]
    fn identical_resubmissions_share_a_signature() {
        let job = jobs(1, 21).remove(0);
        let mut resubmitted = job.clone();
        resubmitted.id = 999_999;
        assert_eq!(PlanSignature::of_job(&job), PlanSignature::of_job(&resubmitted));
    }

    #[test]
    fn distinct_jobs_get_distinct_signatures() {
        let population = jobs(60, 23);
        let mut signatures: Vec<u64> =
            population.iter().map(|j| PlanSignature::of_job(j).0).collect();
        signatures.sort_unstable();
        signatures.dedup();
        assert_eq!(signatures.len(), 60, "no collisions across a workload");
    }

    #[test]
    fn request_context_is_part_of_the_signature() {
        let job = jobs(1, 25).remove(0);
        let mut more_tokens = job.clone();
        more_tokens.requested_tokens += 1;
        assert_ne!(PlanSignature::of_job(&job), PlanSignature::of_job(&more_tokens));
        let mut other_seed = job.clone();
        other_seed.seed ^= 1;
        assert_ne!(PlanSignature::of_job(&job), PlanSignature::of_job(&other_seed));
    }

    #[test]
    fn plan_drift_changes_the_signature() {
        let job = jobs(1, 27).remove(0);
        let mut drifted = job.clone();
        drifted.plan.operators[0].est_output_cardinality *= 1.5;
        assert_ne!(PlanSignature::of_job(&job), PlanSignature::of_job(&drifted));
    }

    #[test]
    fn generation_changes_the_cache_key_but_not_the_signature() {
        let signature = PlanSignature::of_job(&jobs(1, 29).remove(0));
        assert_ne!(signature.cache_key(1), signature.cache_key(2));
        assert_eq!(signature.cache_key(3), signature.cache_key(3));
    }

    #[test]
    fn negative_zero_folds_into_zero() {
        let job = jobs(1, 31).remove(0);
        let mut signed = job.clone();
        signed.plan.operators[0].est_subtree_cost = -0.0;
        let mut unsigned = job.clone();
        unsigned.plan.operators[0].est_subtree_cost = 0.0;
        assert_eq!(PlanSignature::of_job(&signed), PlanSignature::of_job(&unsigned));
    }
}
