//! Sharded LRU cache of scoring responses, keyed by plan signature.
//!
//! Recurring jobs dominate production serving traffic, so answering a
//! resubmitted plan from cache — skipping stage extraction, featurization
//! and model inference entirely — is the single highest-leverage serving
//! optimization. The cache is sharded to keep lock contention off the hot
//! path: a key selects a shard, and each shard is an exact LRU (hash map
//! plus a recency index ordered by a per-shard monotone tick counter).
//! Hit / miss / eviction / insertion counters are lock-free atomics.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use tasq::pipeline::ScoreResponse;

/// Cache sizing and switches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Master switch; a disabled cache misses every lookup and stores
    /// nothing (the baseline configuration for benchmarking).
    pub enabled: bool,
    /// Total entry capacity across all shards.
    pub capacity: usize,
    /// Number of independent shards (clamped to at least 1).
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self { enabled: true, capacity: 4096, shards: 8 }
    }
}

/// Counter snapshot for monitoring and the bench report.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that fell through to the model path.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Shard {
    /// key -> (recency tick, cached response).
    entries: HashMap<u64, (u64, ScoreResponse)>,
    /// recency tick -> key, oldest first.
    recency: BTreeMap<u64, u64>,
    tick: u64,
}

impl Shard {
    fn touch(&mut self, key: u64) {
        let old_tick = match self.entries.get(&key) {
            Some(&(tick, _)) => tick,
            None => return,
        };
        self.recency.remove(&old_tick);
        self.tick += 1;
        let now = self.tick;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.0 = now;
        }
        self.recency.insert(now, key);
    }
}

/// The sharded signature-keyed response cache.
pub struct SignatureCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    enabled: bool,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
}

impl SignatureCache {
    /// Build from a config; capacity is split evenly across shards with a
    /// floor of one entry per shard.
    pub fn new(config: &CacheConfig) -> Self {
        let shards = config.shards.max(1);
        let per_shard_capacity = (config.capacity / shards).max(1);
        Self {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        recency: BTreeMap::new(),
                        tick: 0,
                    })
                })
                .collect(),
            per_shard_capacity,
            enabled: config.enabled,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
        }
    }

    /// Whether lookups can ever hit.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    /// Look up a cached response, refreshing its recency on hit.
    pub fn get(&self, key: u64) -> Option<ScoreResponse> {
        if !self.enabled {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut shard = self.shard(key).lock();
        let found = shard.entries.get(&key).map(|(_, response)| response.clone());
        match found {
            Some(response) => {
                shard.touch(key);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(response)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a response, evicting the shard's least-recently-used entry
    /// when the shard is full. A no-op when the cache is disabled.
    pub fn insert(&self, key: u64, response: ScoreResponse) {
        if !self.enabled {
            return;
        }
        let mut shard = self.shard(key).lock();
        if let Some((old_tick, _)) = shard.entries.get(&key).map(|(t, _)| (*t, ())) {
            // Overwrite in place, refreshing recency.
            shard.recency.remove(&old_tick);
        } else if shard.entries.len() >= self.per_shard_capacity {
            if let Some((&oldest_tick, &oldest_key)) = shard.recency.iter().next() {
                shard.recency.remove(&oldest_tick);
                shard.entries.remove(&oldest_key);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.tick += 1;
        let now = shard.tick;
        shard.entries.insert(key, (now, response));
        shard.recency.insert(now, key);
        drop(shard);
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Current counter values and residency.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().entries.len()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasq::pipeline::{AllocationDecision, ServedTier};

    fn response(job_id: u64) -> ScoreResponse {
        ScoreResponse {
            job_id,
            predicted_runtime_at_request: 10.0 + job_id as f64,
            optimal_tokens: 8,
            decision: AllocationDecision::Automatic { tokens: 8 },
            served_tier: ServedTier::Primary,
        }
    }

    #[test]
    fn hit_after_insert_and_counters() {
        let cache = SignatureCache::new(&CacheConfig { capacity: 16, shards: 2, enabled: true });
        assert!(cache.get(1).is_none());
        cache.insert(1, response(1));
        let hit = cache.get(1).expect("hit");
        assert_eq!(hit.job_id, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = SignatureCache::new(&CacheConfig { capacity: 2, shards: 1, enabled: true });
        cache.insert(10, response(10));
        cache.insert(20, response(20));
        // Touch 10 so 20 becomes the LRU victim.
        assert!(cache.get(10).is_some());
        cache.insert(30, response(30));
        assert!(cache.get(20).is_none(), "LRU entry evicted");
        assert!(cache.get(10).is_some());
        assert!(cache.get(30).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn overwrite_refreshes_without_eviction() {
        let cache = SignatureCache::new(&CacheConfig { capacity: 2, shards: 1, enabled: true });
        cache.insert(1, response(1));
        cache.insert(1, response(100));
        assert_eq!(cache.get(1).expect("hit").job_id, 100);
        let stats = cache.stats();
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let cache = SignatureCache::new(&CacheConfig { capacity: 16, shards: 2, enabled: false });
        cache.insert(1, response(1));
        assert!(cache.get(1).is_none());
        let stats = cache.stats();
        assert_eq!(stats.insertions, 0);
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn shards_partition_the_key_space() {
        let cache = SignatureCache::new(&CacheConfig { capacity: 64, shards: 8, enabled: true });
        for key in 0..64u64 {
            cache.insert(key, response(key));
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 64);
        assert_eq!(stats.evictions, 0);
        for key in 0..64u64 {
            assert_eq!(cache.get(key).expect("resident").job_id, key);
        }
    }

    #[test]
    fn concurrent_access_keeps_counters_consistent() {
        let cache = std::sync::Arc::new(SignatureCache::new(&CacheConfig {
            capacity: 128,
            shards: 4,
            enabled: true,
        }));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = std::sync::Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..200u64 {
                        let key = (t * 50 + i) % 100;
                        if cache.get(key).is_none() {
                            cache.insert(key, response(key));
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 800);
        assert!(stats.entries <= 128);
    }
}
