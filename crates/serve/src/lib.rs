//! `tasq-serve`: an embeddable concurrent scoring server for TASQ.
//!
//! The training pipeline (`tasq::pipeline`) produces versioned model
//! artifacts; this crate turns them into a production-shaped serving
//! stack, mirroring how TASQ runs inside a job-submission service:
//!
//! - [`signature`] — deterministic 64-bit plan signatures, so recurring
//!   jobs (the dominant production traffic) are recognizable on arrival.
//! - [`cache`] — a sharded exact-LRU response cache keyed by signature,
//!   with hit/miss/eviction counters.
//! - [`registry`] — an atomically hot-swappable model deployment with
//!   probe validation and rollback-by-not-swapping.
//! - [`server`] — the worker pool itself: micro-batching under a
//!   max-batch/max-delay policy, bounded-queue admission control with
//!   shed-to-analytic-tier degradation, and lock-free latency stats
//!   ([`stats`]).
//!
//! - [`scaling`] — queue-utilization worker autoscaling (min/max pool
//!   bounds, up/down thresholds, cooldown) applied through the server's
//!   dynamic worker pool.
//!
//! Everything is std-threads + channels + atomics over the workspace's
//! vendored dependencies; there is no async runtime and no network
//! surface *in this crate* — the server embeds into a host process
//! (the `tasq` CLI `serve` / `loadgen` subcommands), and `tasq-net`
//! puts it on a socket.

#![warn(missing_docs)]

pub mod cache;
pub mod registry;
pub mod scaling;
pub mod server;
pub mod signature;
pub mod stats;

pub use cache::{CacheConfig, CacheStats, SignatureCache};
pub use scaling::{AutoScaler, ScaleAction, ScalingConfig};
pub use registry::{
    ActiveModel, DurableDeployError, ManifestRecord, ModelRegistry, SwapError,
};
pub use server::{
    RequestError, ScoringServer, ServeConfig, ServedResponse, ServedVia, SubmitError, Ticket,
};
pub use signature::PlanSignature;
pub use stats::{
    LatencyHistogram, LatencySnapshot, ServerStatsSnapshot, SlowRequest, SlowestTracker,
    SLOWEST_SLOTS,
};
