//! Workspace facade re-exporting the TASQ crates.
//!
//! This crate exists so that the repository-level `examples/` and `tests/`
//! can exercise the full public API of the workspace from one place.

#![warn(missing_docs)]
pub use arepas;
pub use scope_sim;
pub use tasq;
pub use tasq_ml;
